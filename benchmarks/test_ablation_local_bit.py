"""Ablation: Alewife's one-bit pointer for the local node (Section 3.1).

The paper reports the local bit improves performance "by only about 2%";
its main benefit is that a node can never overflow its own hardware
directory.  We measure both effects: performance stays within a few
percent either way, and disabling the bit makes home-node accesses
consume (and overflow) hardware pointers.
"""

from repro.core.spec import ProtocolSpec
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.evolve import Evolve
from repro.analysis.report import format_table

from conftest import run_once


def run_pair():
    out = {}
    for local_bit in (True, False):
        spec = ProtocolSpec.parse("DirnH5SNB").with_updates(
            local_bit=local_bit)
        machine = Machine(
            MachineParams(n_nodes=64, victim_cache_enabled=True),
            protocol=spec)
        stats = machine.run(Evolve())
        out[local_bit] = (stats.run_cycles, stats.total_traps)
    return out


def test_ablation_local_bit(benchmark, show):
    results = run_once(benchmark, run_pair)
    show(format_table(
        ["Local bit", "Run cycles", "Traps"],
        [("on" if k else "off", *v) for k, v in results.items()],
        title="Ablation: one-bit local pointer (EVOLVE, 64 nodes, H5)",
    ))
    with_bit, without_bit = results[True], results[False]
    # Performance effect is small (paper: about 2%).
    assert abs(with_bit[0] - without_bit[0]) / without_bit[0] < 0.15
    # Without the bit, local accesses occupy pointers, so overflow traps
    # can only grow.
    assert without_bit[1] >= with_bit[1]
