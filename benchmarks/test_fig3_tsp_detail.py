"""Figure 3: TSP detailed 64-node performance analysis.

Three configurations per protocol: the base run (instruction/data
thrashing in the combined direct-mapped cache), *perfect ifetch* (the
simulator option that removes instructions from the memory system), and
victim caching (Alewife's hardware fix).

Paper claims:
- in the base run, DirnH5SNB performs about 3x worse than full map
  because two globally-shared blocks thrash against hot code lines;
- with perfect ifetch, every protocol except the software-only
  directory performs close to full map;
- victim caching recovers nearly all of the loss (and improves the
  full-map run itself by ~16%);
- the software-only directory with victim caching achieves a large
  fraction of full map ("almost 70%" in the paper).
"""

from repro.analysis.experiments import fig3_tsp_detail
from repro.analysis.report import format_table

from conftest import run_once

PROTOCOLS = ("DirnH0SNB,ACK", "DirnH1SNB,ACK", "DirnH2SNB",
             "DirnH5SNB", "DirnHNBS-")


def test_fig3_tsp_detail(benchmark, show):
    results = run_once(benchmark, fig3_tsp_detail, protocols=PROTOCOLS)

    configs = list(results)
    rows = []
    for protocol in PROTOCOLS:
        rows.append([protocol] + [results[c][protocol] for c in configs])
    show(format_table(["Protocol"] + configs, rows,
                      title="Figure 3: TSP speedups on 64 nodes"))

    base = results["base"]
    perfect = results["perfect ifetch"]
    victim = results["victim cache"]
    full = "DirnHNBS-"

    # Thrashing hits the software-extended protocols hard: H5 is at
    # least 2x worse than full map in the base configuration.
    assert base[full] / base["DirnH5SNB"] > 2.0

    # Perfect instruction fetching restores H5 to near full map.
    assert perfect["DirnH5SNB"] / perfect[full] > 0.8
    # And so does the victim cache.
    assert victim["DirnH5SNB"] / victim[full] > 0.8

    # The victim cache also helps the full-map run itself (the paper
    # reports a 16% gain; ours is smaller but positive).
    assert victim[full] >= base[full]

    # The software-only directory stays the slowest configuration but
    # becomes usable with victim caching.
    assert victim["DirnH0SNB,ACK"] / victim[full] > 0.3
    for config in (perfect, victim):
        others = [config[p] for p in PROTOCOLS if p != "DirnH0SNB,ACK"]
        assert config["DirnH0SNB,ACK"] <= min(others) * 1.01
    # In the thrashed base run H0 and H1,ACK are both crushed; their
    # exact order is noise, but both sit far below everything else.
    assert base["DirnH0SNB,ACK"] <= base["DirnH2SNB"] * 0.8

    # Pointer ordering in the base (thrashed) configuration.
    assert base[full] >= base["DirnH5SNB"] >= base["DirnH1SNB,ACK"] * 0.95
