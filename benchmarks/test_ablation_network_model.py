"""Ablation: NWO's network fidelity (endpoint queues only) vs link-level
switch contention.

NWO "models communication contention at the CMMU network transmit and
receive queues, but does not model contention within the network
switches" (Section 3.2).  This ablation runs the same workloads under
both network models to quantify what that simplification costs: at the
traffic levels of these applications the difference is small, which
supports the paper's methodology.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.water import Water
from repro.workloads.worker import WorkerBenchmark

from conftest import run_once


def compare():
    out = {}
    for model in ("queues", "links"):
        machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB",
                          network_model=model)
        stats = machine.run(WorkerBenchmark(worker_set_size=8,
                                            iterations=3))
        out[("worker", model)] = stats.run_cycles
    for model in ("queues", "links"):
        machine = Machine(
            MachineParams(n_nodes=64, victim_cache_enabled=True),
            protocol="DirnH5SNB", network_model=model)
        stats = machine.run(Water())
        out[("water", model)] = stats.run_cycles
    return out


def test_ablation_network_model(benchmark, show):
    results = run_once(benchmark, compare)
    rows = []
    for workload in ("worker", "water"):
        queues = results[(workload, "queues")]
        links = results[(workload, "links")]
        rows.append((workload, queues, links,
                     f"{(links - queues) / queues:+.1%}"))
    show(format_table(
        ["Workload", "NWO model (queues)", "Link contention", "Delta"],
        rows, title="Ablation: network model fidelity",
    ))
    for workload in ("worker", "water"):
        queues = results[(workload, "queues")]
        links = results[(workload, "links")]
        # Switch contention slows things (weakly) ...
        assert links >= queues * 0.98
        # ... but by little: NWO's simplification is sound here.
        assert links <= queues * 1.25
