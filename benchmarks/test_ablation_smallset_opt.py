"""Ablation: the small-worker-set memory-usage optimization (Section 5).

The 0/1-pointer protocols store worker sets of four or fewer in a small
inline structure instead of the full hash/free-list machinery, which the
paper says "improves the run-time performance of all three protocols for
worker set sizes of 4 or less" (and explains why DirnH1SNB,LACK can edge
out DirnH1SNB at size 4).
"""

from repro.analysis.report import format_table
from repro.core.spec import ProtocolSpec
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.worker import WorkerBenchmark

from conftest import run_once


def compare():
    out = {}
    for size in (2, 4, 8):
        for enabled in (True, False):
            spec = ProtocolSpec.parse("DirnH1SNB,LACK").with_updates(
                smallset_opt=enabled)
            machine = Machine(MachineParams(n_nodes=16), protocol=spec)
            stats = machine.run(
                WorkerBenchmark(worker_set_size=size, iterations=3))
            out[(size, enabled)] = stats.run_cycles
    return out


def test_ablation_smallset_optimization(benchmark, show):
    results = run_once(benchmark, compare)
    show(format_table(
        ["Worker set", "Optimized", "Run cycles"],
        [(size, "on" if enabled else "off", cycles)
         for (size, enabled), cycles in results.items()],
        title="Ablation: small-set memory-usage optimization "
              "(WORKER, DirnH1SNB,LACK)",
    ))
    # Sets of <= 4 run measurably faster with the optimization.
    for size in (2, 4):
        assert results[(size, True)] < results[(size, False)]

    # Above the threshold the optimization still helps a little (the
    # *early* requests of each sharing epoch see a small set), but its
    # relative benefit shrinks compared to an all-small workload.
    def gain(size):
        return 1.0 - results[(size, True)] / results[(size, False)]

    assert gain(4) > gain(8)
    assert gain(8) < 0.25
