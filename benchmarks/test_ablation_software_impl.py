"""Ablation: flexible (C) vs optimized (assembly) protocol software
(Section 4).

The hand-tuned implementation roughly halves handler latency (Tables 1
and 2).  This ablation measures how much of that factor survives at the
application level, where handler time is only part of the run time.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.evolve import Evolve
from repro.workloads.worker import WorkerBenchmark

from conftest import run_once


def compare():
    out = {}
    for software in ("flexible", "optimized"):
        machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB",
                          software=software)
        stats = machine.run(WorkerBenchmark(worker_set_size=12,
                                            iterations=3))
        out[("worker", software)] = (stats.run_cycles,
                                     stats.total("handler_cycles"))
    for software in ("flexible", "optimized"):
        machine = Machine(
            MachineParams(n_nodes=64, victim_cache_enabled=True),
            protocol="DirnH5SNB", software=software)
        stats = machine.run(Evolve())
        out[("evolve", software)] = (stats.run_cycles,
                                     stats.total("handler_cycles"))
    return out


def test_ablation_software_implementation(benchmark, show):
    results = run_once(benchmark, compare)
    show(format_table(
        ["Workload", "Software", "Run cycles", "Handler cycles"],
        [(wl, sw, *v) for (wl, sw), v in results.items()],
        title="Ablation: flexible (C) vs optimized (assembly) handlers",
    ))

    # Handler occupancy drops by roughly the Table 1 factor of two.
    for workload in ("worker", "evolve"):
        flex = results[(workload, "flexible")]
        opt = results[(workload, "optimized")]
        assert 1.5 <= flex[1] / opt[1] <= 3.0
        # Run time improves, but by less than the handler factor (the
        # network and user code are untouched).
        assert opt[0] < flex[0]
        assert flex[0] / opt[0] < flex[1] / opt[1] + 0.5

    # On the WORKER stress test most of the time *is* handler time, so
    # the end-to-end win is substantial.
    worker_gain = (results[("worker", "flexible")][0]
                   / results[("worker", "optimized")][0])
    assert worker_gain > 1.25
