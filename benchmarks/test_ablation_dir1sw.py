"""Ablation: Dir1H1SB,LACK (Dir1SW) vs DirnH1SNB,LACK (Section 2.5).

The two protocols differ in one design decision: Dir1SW records only one
explicit pointer and *broadcasts* invalidations when more copies exist,
while the LimitLESS one-pointer protocol extends the directory in
software.  Consequences the paper states: Dir1SW never traps on read
requests, but must broadcast on writes to multi-copy blocks.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.worker import WorkerBenchmark

from conftest import run_once


def compare():
    out = {}
    for protocol in ("Dir1H1SB,LACK", "DirnH1SNB,LACK"):
        for size in (2, 6):
            machine = Machine(MachineParams(n_nodes=16), protocol=protocol)
            stats = machine.run(
                WorkerBenchmark(worker_set_size=size, iterations=3))
            out[(protocol, size)] = {
                "cycles": stats.run_cycles,
                "read_traps": stats.traps_by_kind().get("read_overflow", 0),
                "sw_invs": stats.total("invalidations_sw"),
            }
    return out


def test_ablation_dir1sw_vs_limitless1(benchmark, show):
    results = run_once(benchmark, compare)
    show(format_table(
        ["Protocol", "Worker set", "Run cycles", "Read traps", "SW invs"],
        [(p, s, v["cycles"], v["read_traps"], v["sw_invs"])
         for (p, s), v in results.items()],
        title="Ablation: Dir1SW broadcast vs LimitLESS-1 extension",
    ))

    for size in (2, 6):
        dir1sw = results[("Dir1H1SB,LACK", size)]
        limitless = results[("DirnH1SNB,LACK", size)]
        # Dir1SW never traps on reads; LimitLESS-1 does.
        assert dir1sw["read_traps"] == 0
        assert limitless["read_traps"] > 0
        # Dir1SW broadcasts: 15 software invalidations per overflowed
        # write vs the exact worker set for LimitLESS.
        assert dir1sw["sw_invs"] > limitless["sw_invs"]

    # With small worker sets the broadcast is waste; with the exact-set
    # cost of WORKER the extension protocol sends only what is needed.
    d2 = results[("Dir1H1SB,LACK", 2)]["sw_invs"]
    l2 = results[("DirnH1SNB,LACK", 2)]["sw_invs"]
    assert d2 >= 4 * l2
