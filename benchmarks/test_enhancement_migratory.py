"""Enhancement (Section 7): dynamic detection of migratory data.

The paper points to hardware proposals (Cox & Fowler; Stenstrom et al.)
that adapt to migratory sharing and notes that "protocol extension
software could perform similar optimizations".  Our implementation
detects the read-then-upgrade migration pattern at the home and answers
subsequent reads of migratory blocks with exclusive copies, eliminating
the upgrade transaction.  MP3D's space cells — the classic migratory
structure — are the natural beneficiary.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.mp3d import MP3D

from conftest import run_once


def compare():
    out = {}
    for detect in (False, True):
        machine = Machine(
            MachineParams(n_nodes=64, victim_cache_enabled=True),
            protocol="DirnH5SNB", migratory_detection=detect)
        stats = machine.run(MP3D())
        requests = (stats.messages_by_kind().get("rreq", 0)
                    + stats.messages_by_kind().get("wreq", 0))
        out[detect] = (stats.run_cycles, stats.speedup, requests)
    return out


def test_enhancement_migratory_detection(benchmark, show):
    results = run_once(benchmark, compare)
    show(format_table(
        ["Migratory detection", "Run cycles", "Speedup", "Requests"],
        [("off" if not k else "on", *v) for k, v in results.items()],
        title="Section 7 enhancement: migratory detection (MP3D, H5)",
    ))
    off, on = results[False], results[True]
    # Detection converts read+upgrade pairs into single transactions.
    assert on[2] < off[2]
    # And the application gets measurably faster.
    assert on[0] < off[0] * 0.95
