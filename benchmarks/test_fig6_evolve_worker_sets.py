"""Figure 6: histogram of worker-set sizes for EVOLVE on 64 nodes.

The paper's histogram (logarithmic vertical axis) falls from almost
10,000 one-node worker sets to 25 sets of size 64 — a near-linear decay
on the log scale with a bump at full-machine sharing.  Our scaled run
reproduces the shape: hundreds of one-node sets, a long decaying tail,
and a cluster of sets shared by every node.
"""

from repro.analysis.experiments import fig6_evolve_worker_sets
from repro.analysis.report import format_histogram
from repro.analysis.workersets import (
    decay_slope,
    hardware_coverage,
    histogram_summary,
)

from conftest import run_once


def test_fig6_evolve_worker_sets(benchmark, show):
    histogram = run_once(benchmark, fig6_evolve_worker_sets)
    show(format_histogram(
        histogram,
        title="Figure 6: EVOLVE worker-set sizes (64 nodes, log bars)"))

    summary = histogram_summary(histogram)
    show(str(summary))

    # Shape claims from the paper:
    # one-node worker sets dominate ...
    assert histogram[1] == max(histogram.values())
    assert histogram[1] > 100
    # ... there is a significant number of nontrivial worker sets ...
    assert summary["large_sets"] > 30
    # ... including full-machine sharing ...
    assert max(histogram) == 64
    # ... and the counts decay with size (log-linear-ish negative slope).
    assert decay_slope(histogram) < -0.005

    # The software-extension premise (Section 5): most worker sets are
    # small enough for a five-pointer hardware directory.
    assert hardware_coverage(histogram, 5) > 0.5
    # But enough large ones exist that EVOLVE stresses it (Figure 4d).
    assert hardware_coverage(histogram, 5) < 0.95
