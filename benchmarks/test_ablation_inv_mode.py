"""Ablation (Section 7): sequential vs parallel invalidation procedures.

The paper's enhancement section reports that protocol extension software
can improve performance for widely-shared data "by dynamically selecting
sequential or parallel invalidation procedures".  We compare the three
modes on write traffic to widely-shared blocks: sequential chains one
invalidation per acknowledgement trap, parallel blasts all of them from
a single handler, and dynamic picks per worker set.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.water import Water
from repro.workloads.worker import WorkerBenchmark

from conftest import run_once

MODES = ("sequential", "parallel", "dynamic")


def compare():
    out = {}
    for mode in MODES:
        machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB",
                          invalidation_mode=mode)
        stats = machine.run(WorkerBenchmark(worker_set_size=12,
                                            iterations=3))
        out[("worker-12", mode)] = (stats.run_cycles, stats.total_traps)
    for mode in MODES:
        machine = Machine(
            MachineParams(n_nodes=64, victim_cache_enabled=True),
            protocol="DirnH5SNB", invalidation_mode=mode)
        stats = machine.run(Water())
        out[("water", mode)] = (stats.run_cycles, stats.total_traps)
    return out


def test_ablation_invalidation_mode(benchmark, show):
    results = run_once(benchmark, compare)
    show(format_table(
        ["Workload", "Mode", "Run cycles", "Traps"],
        [(wl, mode, *v) for (wl, mode), v in results.items()],
        title="Ablation: invalidation procedure selection",
    ))
    for workload in ("worker-12", "water"):
        seq = results[(workload, "sequential")]
        par = results[(workload, "parallel")]
        dyn = results[(workload, "dynamic")]
        # Parallel invalidation wins for widely-shared data...
        assert par[0] < seq[0]
        # ...sequential pays one trap per acknowledgement...
        assert seq[1] > par[1]
        # ...and the dynamic policy matches parallel on these wide sets.
        assert dyn[0] <= par[0] * 1.02
