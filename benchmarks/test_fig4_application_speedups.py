"""Figure 4: speedups of the six applications on 64 nodes, across the
hardware-pointer spectrum (victim caching enabled).

Paper claims:
- DirnH5SNB achieves between 71% and 100% of full-map performance on
  every application;
- AQ performs equally well on every protocol with at least one hardware
  pointer, and the software-only directory is "respectable" on it;
- SMGRID separates the protocols (more widely shared data);
- EVOLVE is the hardest application for DirnH5SNB;
- MP3D's software-only run reaches only a small fraction of full map
  (the paper reports 11%);
- WATER gives good speedups for every software-extended protocol.
"""

from repro.analysis.experiments import (
    FIGURE4_PROTOCOLS,
    fig4_application_speedups,
    relative_performance,
)
from repro.analysis.report import format_table

from conftest import run_once


def test_fig4_application_speedups(benchmark, show):
    speedups = run_once(benchmark, fig4_application_speedups)

    rows = []
    for app, column in speedups.items():
        rows.append([app.upper()] + [column[p] for p in FIGURE4_PROTOCOLS])
    show(format_table(["App"] + list(FIGURE4_PROTOCOLS), rows,
                      title="Figure 4: speedups on 64 nodes"))

    rel = {app: relative_performance(column)
           for app, column in speedups.items()}
    rel_rows = [[app.upper()]
                + [f"{rel[app][p] * 100:.0f}%" for p in FIGURE4_PROTOCOLS]
                for app in speedups]
    show(format_table(["App"] + list(FIGURE4_PROTOCOLS), rel_rows,
                      title="Relative to full map"))

    h5 = {app: rel[app]["DirnH5SNB"] for app in rel}
    h0 = {app: rel[app]["DirnH0SNB,ACK"] for app in rel}

    # The headline claim, with scaled-problem slack: H5 lands in a band
    # comparable to the paper's 71%-100% on every application.
    for app, fraction in h5.items():
        assert fraction > 0.55, (app, fraction)
        assert fraction <= 1.05, (app, fraction)

    # AQ: every protocol with >= 1 pointer is equivalent; H0 respectable.
    for protocol in FIGURE4_PROTOCOLS:
        if protocol != "DirnH0SNB,ACK":
            assert rel["aq"][protocol] > 0.95
    assert h0["aq"] > 0.6

    # EVOLVE challenges the software-extended directory hardest (it
    # ties with MP3D within noise in our scaled runs).
    assert h5["evolve"] <= min(h5.values()) * 1.05

    # MP3D's software-only run collapses (paper: 11% of full map).
    assert h0["mp3d"] < 0.25

    # WATER: good speedups across the whole software-extended spectrum.
    for protocol in FIGURE4_PROTOCOLS:
        assert rel["water"][protocol] > 0.45

    # Monotonic-ish pointer ordering for every application: the full map
    # is never beaten, and H0 is never the best software option.
    for app in speedups:
        column = rel[app]
        assert max(column.values()) <= column["DirnHNBS-"] * 1.02
        assert column["DirnH0SNB,ACK"] <= column["DirnH5SNB"] * 1.02
