"""Engine hot-path microbenchmarks (PR: parallel runner + hot path).

Unlike the table/figure benchmarks, these measure wall-clock throughput
of the event loop itself, so they use real pytest-benchmark rounds
rather than ``run_once``.  Three shapes:

- **drain**: pop + dispatch over a pre-scheduled heap — isolates the
  ``Simulator.run`` fast path (no ``until``, no ``max_events``, no
  probe);
- **chain**: each event schedules the next — the steady-state
  schedule/pop/dispatch cycle;
- **probed drain**: same as drain but with an observer probe installed,
  exercising the slow path the fast path branches around;
- **worker end-to-end**: a full 16-node ``WORKER`` run with no
  observers attached — the protocol-engine hot path (table dispatch,
  directory backend, network, caches) measured as wall-clock per
  simulated machine, the gate for refactors of ``repro/core/`` —
  parametrized over both protocol dispatch modes (the exec-compiled
  specialized code and the interpreted reference engine), so the A/B
  of ``repro/core/protocol/compile.py`` stays measurable under
  pytest-benchmark's rounds.

Record before/after numbers in ``docs/performance.md`` when touching
``Simulator.run``, the ``__slots__`` message/payload classes, or the
coherence engine dispatch.
"""

import pytest

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.sim.engine import Simulator
from repro.workloads.worker import WorkerBenchmark

N_EVENTS = 50_000


def _drain(probe=None):
    sim = Simulator()
    if probe is not None:
        sim.probe = probe
    noop = lambda: None  # noqa: E731
    for t in range(N_EVENTS):
        sim.at(t, noop)
    sim.run()
    return sim.now


def _chain():
    sim = Simulator()
    remaining = [N_EVENTS]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.after(1, tick)

    sim.at(0, tick)
    sim.run()
    return sim.now


def test_engine_drain(benchmark):
    """Fast-path throughput: pop + dispatch of pre-scheduled events."""
    assert benchmark(_drain) == N_EVENTS - 1


def test_engine_chain(benchmark):
    """Steady-state throughput: schedule + pop + dispatch per event."""
    assert benchmark(_chain) == N_EVENTS - 1


def test_engine_drain_with_probe(benchmark):
    """Slow-path throughput with an observer probe installed."""
    seen = []
    result = benchmark(_drain, probe=lambda t: seen.append(t))
    assert result == N_EVENTS - 1
    assert seen  # the probe really ran


def _worker_end_to_end(dispatch):
    machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB",
                      dispatch=dispatch)
    stats = machine.run(WorkerBenchmark(worker_set_size=8, iterations=2))
    return stats.run_cycles


@pytest.mark.parametrize("dispatch", ["compiled", "interpreted"])
def test_worker_end_to_end(benchmark, dispatch):
    """Whole-machine throughput: 16-node WORKER through the coherence
    engine with no observers attached, under each dispatch mode.  The
    deterministic cycle count doubles as a correctness anchor for the
    timing being benchmarked — and must not depend on the mode."""
    assert benchmark(_worker_end_to_end, dispatch) == 24_812
