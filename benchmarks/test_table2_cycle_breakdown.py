"""Table 2: per-activity cycle breakdown of median read/write handlers
(8 readers, 1 writer per block).

Paper totals: C read 480, asm read 193, C write 737, asm write 384.
"""

from repro.analysis.experiments import table2_breakdowns
from repro.analysis.report import format_table
from repro.core.software.costmodel import TABLE2_ACTIVITIES

from conftest import run_once

PAPER_TOTALS = {
    ("read", "flexible"): 480,
    ("read", "optimized"): 193,
    ("write", "flexible"): 737,
    ("write", "optimized"): 384,
}

PAPER_ROWS = {
    # activity -> (C read, asm read, C write, asm write); None = N/A
    "trap dispatch": (11, 11, 9, 11),
    "system message dispatch": (14, 15, 14, 15),
    "protocol-specific dispatch": (10, None, 10, None),
    "decode and modify hardware directory": (22, 17, 52, 40),
    "save state for function calls": (24, None, 17, None),
    "memory management": (60, 65, 28, 11),
    "hash table administration": (80, None, 74, None),
    "store pointers into extended directory": (235, 74, 99, 45),
    "invalidation lookup and transmit": (None, None, 419, 251),
    "support for non-Alewife protocols": (10, None, 6, None),
    "trap return": (14, 11, 9, 11),
}


def test_table2_cycle_breakdown(benchmark, show):
    breakdowns = run_once(benchmark, table2_breakdowns)

    columns = [("read", "flexible"), ("read", "optimized"),
               ("write", "flexible"), ("write", "optimized")]
    rows = []
    for activity in TABLE2_ACTIVITIES:
        row = [activity]
        for key in columns:
            value = breakdowns.get(key, {}).get(activity)
            row.append("N/A" if value is None else value)
        rows.append(row)
    rows.append(["total (median latency)"]
                + [sum(breakdowns.get(key, {}).values()) for key in columns])
    show(format_table(
        ["Activity", "C Read", "Asm Read", "C Write", "Asm Write"],
        rows, title="Table 2: median handler cycle breakdown",
    ))

    # The medians reproduce the paper's breakdown exactly by design.
    for key, total in PAPER_TOTALS.items():
        assert sum(breakdowns[key].values()) == total
    for activity, paper in PAPER_ROWS.items():
        for key, expected in zip(columns, paper):
            measured = breakdowns[key].get(activity)
            if expected is None:
                assert measured is None
            else:
                assert measured == expected, (activity, key)
