"""Table 3: application characteristics.

The paper's applications run at full problem sizes on Alewife hardware;
ours are scaled for a pure-Python simulator, so the *sequential time*
column is proportionally smaller.  The shape claims: every application
has a nontrivial sequential time, and (paper Section 6) each application
except MP3D achieves more than 50% processor utilization on 64 nodes
with the full-map directory.
"""

from repro.analysis.experiments import (
    APPLICATIONS,
    run_one,
    table3_applications,
)
from repro.analysis.report import format_table

from conftest import run_once


def test_table3_applications(benchmark, show):
    rows = run_once(benchmark, table3_applications)
    show(format_table(
        ["Name", "Language", "Size", "Sequential (ms @ 33MHz)"],
        [(r.name.upper(), r.language, r.size,
          r.sequential_seconds * 1e3) for r in rows],
        title="Table 3: application characteristics",
    ))
    assert {r.name for r in rows} == set(APPLICATIONS)
    for row in rows:
        assert row.sequential_seconds > 0


def test_utilization_above_half_for_non_mp3d(benchmark, show):
    def measure():
        out = {}
        for name, factory in APPLICATIONS.items():
            stats = run_one(factory(), "DirnHNBS-", n_nodes=64)
            out[name] = stats.processor_utilization
        return out

    utilization = run_once(benchmark, measure)
    show(format_table(
        ["Application", "Full-map utilization"],
        sorted(utilization.items()),
        title="Processor utilization on 64 nodes (full map)",
    ))
    # The paper sizes each problem (except MP3D) for >50% utilization;
    # our scaled problems aim for the same regime, with slack.
    for name, value in utilization.items():
        if name != "mp3d":
            assert value > 0.25, (name, value)
