"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper.  They run
the experiment exactly once per benchmark (the simulator is deterministic
— repetition adds nothing) and print the regenerated artifact.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def show():
    """Print through pytest's capture so regenerated artifacts appear."""
    import sys

    def _show(text: str) -> None:
        sys.stderr.write("\n" + text + "\n")

    return _show
