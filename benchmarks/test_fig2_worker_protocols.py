"""Figure 2: WORKER run time relative to full map vs worker-set size.

Paper claims (16 nodes):
- more hardware pointers -> better performance;
- DirnH5SNB equals full map while worker sets fit in the pointers;
- DirnH0SNB,ACK is significantly worse than everything else;
- DirnH1SNB,ACK is significantly worse than the one-pointer protocols
  that count acknowledgements in hardware;
- DirnH1SNB tracks DirnH2SNB closely (it needs the same storage).
"""

from repro.analysis.experiments import fig2_worker_ratios
from repro.analysis.report import format_series_plot, format_table

from conftest import run_once

SIZES = (1, 2, 4, 8, 12, 16)
PROTOCOLS = (
    "DirnH0SNB,ACK",
    "DirnH1SNB,ACK",
    "DirnH1SNB,LACK",
    "DirnH1SNB",
    "DirnH2SNB",
    "DirnH3SNB",
    "DirnH4SNB",
    "DirnH5SNB",
)


def test_fig2_worker_set_curves(benchmark, show):
    curves = run_once(benchmark, fig2_worker_ratios,
                      sizes=SIZES, protocols=PROTOCOLS)

    headers = ["Protocol"] + [f"ws={s}" for s in SIZES]
    rows = []
    for protocol in PROTOCOLS:
        ratios = dict(curves[protocol])
        rows.append([protocol] + [ratios[s] for s in SIZES])
    show(format_table(
        headers, rows,
        title="Figure 2: run time relative to full map (16 nodes)",
    ))
    show(format_series_plot(
        {p: [(float(s), r) for s, r in curves[p]] for p in PROTOCOLS},
        title="Figure 2 (plotted): ratio vs worker-set size",
    ))

    def ratio(protocol, size):
        return dict(curves[protocol])[size]

    # Full-map normalisation: every ratio >= ~1.
    for protocol in PROTOCOLS:
        for size in SIZES:
            assert ratio(protocol, size) > 0.9

    # H5 equals full map while the worker sets fit in hardware.
    for size in (1, 2, 4):
        assert ratio("DirnH5SNB", size) < 1.1
    # ... and drops once they do not.
    assert ratio("DirnH5SNB", 16) > 1.2

    # The software-only directory is the worst curve at every size.
    for size in SIZES:
        others = [ratio(p, size) for p in PROTOCOLS if p != "DirnH0SNB,ACK"]
        assert ratio("DirnH0SNB,ACK", size) >= max(others) * 0.99

    # Section 2.4's ordering of the one-pointer variants: trapping on
    # every acknowledgement is worst, hardware counting is best, and
    # LACK sits in between.
    for size in (8, 12, 16):
        assert (ratio("DirnH1SNB,ACK", size)
                >= ratio("DirnH1SNB,LACK", size)
                >= ratio("DirnH1SNB", size))
        assert (ratio("DirnH1SNB,ACK", size)
                > 1.05 * ratio("DirnH1SNB", size))

    # DirnH1SNB performs close to DirnH2SNB (same directory storage).
    for size in (8, 16):
        assert ratio("DirnH1SNB", size) < 1.6 * ratio("DirnH2SNB", size)

    # Pointers help: the 4/5-pointer protocols beat every one-pointer
    # variant at every nontrivial size.
    for size in (8, 12, 16):
        for big in ("DirnH4SNB", "DirnH5SNB"):
            assert ratio(big, size) <= ratio("DirnH1SNB", size)
            assert ratio(big, size) <= ratio("DirnH2SNB", size) * 1.05
