"""Enhancement (Section 7): profile, detect, and optimize read-only data.

The paper proposes running enhanced protocol software in a profiling
mode to detect widely-shared read-only data and optimising the
production application.  We measure the payoff on EVOLVE — the paper's
hardest application for the software-extended directory — by annotating
its (profiled) read-only blocks with the broadcast protocol, whose reads
never trap.
"""

from repro.analysis.profiling import (
    AccessProfiler,
    apply_read_only_protocol,
    read_only_blocks,
)
from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.evolve import Evolve

from conftest import run_once


def make_machine():
    return Machine(MachineParams(n_nodes=64, victim_cache_enabled=True),
                   protocol="DirnH5SNB")


def workflow():
    profiling = make_machine()
    profiling.profiler = AccessProfiler()
    profiling.run(Evolve())
    candidates = read_only_blocks(profiling.profiler, min_readers=6)

    production = make_machine()
    configured = apply_read_only_protocol(production, candidates)
    optimized = production.run(Evolve())

    baseline = make_machine().run(Evolve())
    full_map = Machine(
        MachineParams(n_nodes=64, victim_cache_enabled=True),
        protocol="DirnHNBS-").run(Evolve())
    return {
        "configured_blocks": configured,
        "baseline": baseline,
        "optimized": optimized,
        "full_map": full_map,
    }


def test_enhancement_read_only_annotation(benchmark, show):
    results = run_once(benchmark, workflow)
    baseline = results["baseline"]
    optimized = results["optimized"]
    full_map = results["full_map"]
    show(format_table(
        ["Configuration", "Cycles", "Traps", "Speedup"],
        [
            ("H5 baseline", baseline.run_cycles, baseline.total_traps,
             baseline.speedup),
            (f"H5 + {results['configured_blocks']} annotated blocks",
             optimized.run_cycles, optimized.total_traps,
             optimized.speedup),
            ("full map", full_map.run_cycles, full_map.total_traps,
             full_map.speedup),
        ],
        title="Section 7 enhancement: read-only annotation on EVOLVE",
    ))
    # The annotation eliminates the read-overflow traps entirely (the
    # fitness table is the trap source) ...
    assert optimized.total_traps < baseline.total_traps * 0.2
    # ... and recovers most of the gap to full map.
    gap_before = full_map.speedup - baseline.speedup
    gap_after = full_map.speedup - optimized.speedup
    assert gap_after < 0.4 * gap_before
    assert optimized.run_cycles < baseline.run_cycles
