"""Ablation: victim-cache size sweep (Sections 6 and 8).

Alewife adds a few victim buffers (from the transaction store) to its
direct-mapped cache.  The paper's conclusion: "adding extra associativity
to the processor side ... can dramatically decrease the effects of
thrashing".  We sweep the buffer count on the thrashing TSP run: even one
buffer recovers most of the loss, and returns diminish quickly.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.tsp import TSP

from conftest import run_once

SIZES = (0, 1, 2, 6, 16)


def sweep():
    out = {}
    for entries in SIZES:
        params = MachineParams(
            n_nodes=64,
            victim_cache_enabled=entries > 0,
            victim_cache_entries=max(entries, 1),
        )
        machine = Machine(params, protocol="DirnH5SNB")
        stats = machine.run(TSP())
        out[entries] = (stats.speedup, stats.total("victim_hits"),
                        stats.total_traps)
    return out


def test_ablation_victim_cache_size(benchmark, show):
    results = run_once(benchmark, sweep)
    show(format_table(
        ["Victim entries", "Speedup", "Victim hits", "Traps"],
        [(k, *v) for k, v in results.items()],
        title="Ablation: victim cache size (thrashing TSP, 64 nodes, H5)",
    ))
    speedup = {k: v[0] for k, v in results.items()}
    # Any victim buffer at all recovers a large fraction of the loss...
    assert speedup[1] > 1.5 * speedup[0]
    # ...and a few buffers get nearly everything; returns diminish.
    assert speedup[6] > speedup[1]
    assert speedup[16] < speedup[6] * 1.2
    # The mechanism is conflict absorption: victim hits appear as soon as
    # buffers exist.
    assert results[0][1] == 0
    assert results[1][1] > 0
    # And the software protocol benefits through fewer overflow traps.
    assert results[6][2] < results[0][2]
