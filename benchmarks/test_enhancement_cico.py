"""Enhancement (Sections 2.5 and 7): CICO program annotations.

Wood et al.'s cooperative-shared-memory protocols "allow the programmer
or compiler to insert Check-In/Check-Out (CICO) directives into programs
to minimize the number of software traps", and the paper cites their
result that "given appropriate annotations, a large class of
applications can perform well on Dir1H1SB,LACK".  This benchmark
reproduces that comparison on WORKER: annotated readers check their
blocks back in before the write phase, so the broadcast protocol's
directory stays exact and the writes never trap.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.worker import WorkerBenchmark

from conftest import run_once

PROTOCOLS = ("Dir1H1SB,LACK", "DirnH1SNB,LACK", "DirnH5SNB")


def compare():
    out = {}
    for protocol in PROTOCOLS:
        for cico in (False, True):
            machine = Machine(MachineParams(n_nodes=16), protocol=protocol)
            stats = machine.run(WorkerBenchmark(worker_set_size=8,
                                                iterations=3, cico=cico))
            out[(protocol, cico)] = (stats.run_cycles, stats.total_traps,
                                     stats.total("invalidations_sw"))
    return out


def test_enhancement_cico_annotations(benchmark, show):
    results = run_once(benchmark, compare)
    rows = [(protocol, "yes" if cico else "no", *values)
            for (protocol, cico), values in results.items()]
    show(format_table(
        ["Protocol", "CICO", "Run cycles", "Traps", "SW invalidations"],
        rows,
        title="Section 7 enhancement: CICO annotations (WORKER ws=8)",
    ))

    # Annotations make Dir1SW trap-free (Wood et al.'s headline).
    dir1sw_plain = results[("Dir1H1SB,LACK", False)]
    dir1sw_cico = results[("Dir1H1SB,LACK", True)]
    assert dir1sw_cico[1] == 0
    assert dir1sw_cico[2] == 0
    assert dir1sw_cico[0] < dir1sw_plain[0] * 0.75

    # Annotated Dir1SW becomes competitive with (or beats) the unannotated
    # five-pointer LimitLESS system — the cost/performance argument for
    # cooperative shared memory.
    h5_plain = results[("DirnH5SNB", False)]
    assert dir1sw_cico[0] <= h5_plain[0]

    # Annotations help the LimitLESS protocols too, just less profoundly
    # (their software already avoids broadcasts).
    for protocol in ("DirnH1SNB,LACK", "DirnH5SNB"):
        assert (results[(protocol, True)][0]
                <= results[(protocol, False)][0] * 1.02)
