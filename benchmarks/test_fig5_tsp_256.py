"""Figure 5: TSP on a 256-node machine (victim caching enabled).

The paper reports speedups of 142 for full map and 134 for five
pointers — the software-extended system within 6% of full map even at
256 nodes, with the gap attributed to the start-up transient of
distributing data to 256 nodes.  Our scaled problem keeps the shape:
five pointers close to full map, the one-pointer and software-only
protocols ordered below it.
"""

from repro.analysis.experiments import fig5_tsp_256, relative_performance
from repro.analysis.report import format_bar_chart

from conftest import run_once

PROTOCOLS = ("DirnH0SNB,ACK", "DirnH1SNB,ACK", "DirnH2SNB",
             "DirnH5SNB", "DirnHNBS-")


def test_fig5_tsp_256(benchmark, show):
    speedups = run_once(benchmark, fig5_tsp_256, protocols=PROTOCOLS)
    show(format_bar_chart(list(speedups), list(speedups.values()),
                          title="Figure 5: TSP on 256 nodes (speedup)"))

    rel = relative_performance(speedups)
    # Five pointers stay close to full map at 256 nodes (paper: 94%).
    assert rel["DirnH5SNB"] > 0.8
    # Ordering across the spectrum.
    assert (speedups["DirnHNBS-"] >= speedups["DirnH5SNB"]
            >= speedups["DirnH2SNB"] * 0.95)
    assert speedups["DirnH0SNB,ACK"] == min(speedups.values())
    # 256 nodes on the same problem should not beat the paper's point
    # that speedups remain "remarkable": full map still scales.
    assert speedups["DirnHNBS-"] > 10
