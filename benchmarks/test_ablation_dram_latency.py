"""Ablation: DRAM latency vs the software-extension penalty.

The paper's conclusion (Section 8) is that beyond a single pointer and
an acknowledgement counter, "factors such as the cost and mapping of
each node's DRAM will dominate performance considerations".  This
ablation sweeps the memory access latency: as DRAM slows, every
protocol pays more per miss, but the *fixed* software handler cost
becomes relatively smaller — the software-extended system converges
toward full-map behaviour, which is exactly why DRAM, not directory
width, ends up dominating the design.
"""

from repro.analysis.report import format_table
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.worker import WorkerBenchmark

from conftest import run_once

MEM_LATENCIES = (5, 10, 40, 120)


def sweep():
    out = {}
    for mem in MEM_LATENCIES:
        for protocol in ("DirnH5SNB", "DirnHNBS-"):
            params = MachineParams(n_nodes=16, mem_latency=mem)
            machine = Machine(params, protocol=protocol)
            stats = machine.run(WorkerBenchmark(worker_set_size=8,
                                                iterations=3))
            out[(mem, protocol)] = stats.run_cycles
    return out


def test_ablation_dram_latency(benchmark, show):
    results = run_once(benchmark, sweep)
    rows = []
    for mem in MEM_LATENCIES:
        h5 = results[(mem, "DirnH5SNB")]
        full = results[(mem, "DirnHNBS-")]
        rows.append((mem, full, h5, f"{h5 / full:.2f}x"))
    show(format_table(
        ["DRAM latency (cycles)", "Full-map cycles", "H5 cycles",
         "H5 / full map"],
        rows, title="Ablation: DRAM latency (WORKER ws=8, 16 nodes)",
    ))

    def ratio(mem):
        return results[(mem, "DirnH5SNB")] / results[(mem, "DirnHNBS-")]

    # Slower DRAM shrinks the *relative* software-extension penalty —
    # the handler cost is fixed while every protocol's miss cost grows.
    assert ratio(120) < ratio(5)
    assert ratio(40) <= ratio(5)
    # But the software system never beats full map on this stress test.
    for mem in MEM_LATENCIES:
        assert ratio(mem) > 1.0
