"""Table 1: average software-extension latencies, C vs assembly.

Paper values (execution cycles, DirnH5SNB on 16 nodes):

    readers | C read | asm read | C write | asm write
          8 |    436 |      162 |     726 |       375
         12 |    397 |      141 |     714 |       393
         16 |    386 |      138 |     797 |       420
"""

from repro.analysis.experiments import table1_handler_latencies
from repro.analysis.report import format_table

from conftest import run_once

PAPER = {
    8: (436, 162, 726, 375),
    12: (397, 141, 714, 393),
    16: (386, 138, 797, 420),
}


def test_table1_handler_latencies(benchmark, show):
    rows = run_once(benchmark, table1_handler_latencies,
                    readers=(8, 12, 16))
    table = format_table(
        ["Readers/Block", "C Read", "Asm Read", "C Write", "Asm Write"],
        [(r.readers, r.c_read, r.asm_read, r.c_write, r.asm_write)
         for r in rows],
        title="Table 1: mean software handler latencies (cycles)",
    )
    show(table)

    for row in rows:
        paper = PAPER[row.readers]
        # Within tolerance of the paper's measurements.  Known deviation:
        # the paper's read latencies decline slightly with more readers
        # (436 -> 386) because its measured request mix varies; our read
        # handler always empties exactly five pointers, so the model
        # holds them constant at the 8-reader median.
        assert abs(row.c_read - paper[0]) / paper[0] < 0.40
        assert abs(row.asm_read - paper[1]) / paper[1] < 0.40
        assert abs(row.c_write - paper[2]) / paper[2] < 0.20
        assert abs(row.asm_write - paper[3]) / paper[3] < 0.20
        # ...and the headline claim: hand-tuned assembly roughly halves
        # handler latency (Section 4.2).
        assert 1.6 <= row.c_read / row.asm_read <= 3.0
        assert 1.5 <= row.c_write / row.asm_write <= 2.5
    # Write latency grows with the number of readers to invalidate.
    assert rows[-1].c_write > rows[0].c_write
    assert rows[-1].asm_write > rows[0].asm_write
