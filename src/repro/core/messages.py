"""Coherence protocol message vocabulary.

These are the inter-node messages synthesised by the CMMU (and, after a
directory overflow, by the protocol extension software).  Header-only
messages carry ``header_flits``; data-bearing messages additionally carry
``data_flits`` (one cache block).
"""

from __future__ import annotations

from typing import Optional

from repro.common.types import BlockId, NodeId

# Requests (cache -> home)
RREQ = "rreq"  # read (shared) request
WREQ = "wreq"  # write (exclusive) request / upgrade
EVICT_WB = "evict_wb"  # write-back of an evicted dirty block (data)
RELINQ = "relinq"  # CICO check-in of a clean copy: drop my pointer

# Replies (home -> cache)
RDATA = "rdata"  # read data grant (data)
WDATA = "wdata"  # write data grant, exclusive (data)
BUSY = "busy"  # transaction in progress; retry later

# Coherence traffic (home -> cache, cache -> home)
INV = "inv"  # invalidate a shared copy
ACK = "ack"  # acknowledgement of an invalidation
FETCH_RD = "fetch_rd"  # downgrade owner to read-only, return data
FETCH_INV = "fetch_inv"  # invalidate owner, return data
FETCH_DATA = "fetch_data"  # owner's data response to a fetch (data)

# Barrier traffic (combining tree; not part of the coherence protocol)
BAR_UP = "bar_up"
BAR_DOWN = "bar_down"

DATA_BEARING = frozenset({RDATA, WDATA, EVICT_WB, FETCH_DATA})
REQUESTS = frozenset({RREQ, WREQ})


class ProtoPayload:
    """Payload of a coherence message.

    ``requester`` identifies the node the home node is acting for; for
    request messages it equals the message source.

    ``txn`` is observability metadata only: the transaction id of the
    data miss this message serves (or ``None``), carried so tracing can
    attribute fabric traffic to the miss that caused it.  The protocol
    never branches on it.

    Allocated once per coherence message (a hot path), so it is a
    ``__slots__`` holder instead of a dataclass — no per-instance
    ``__dict__``, cheaper construction.
    """

    __slots__ = ("block", "requester", "txn")

    def __init__(self, block: BlockId,
                 requester: Optional[NodeId] = None,
                 txn: Optional[int] = None) -> None:
        self.block = block
        self.requester = requester
        self.txn = txn

    def __repr__(self) -> str:
        return (f"ProtoPayload(block={self.block!r}, "
                f"requester={self.requester!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProtoPayload):
            return NotImplemented
        return (self.block == other.block
                and self.requester == other.requester)


def message_size(kind: str, header_flits: int, data_flits: int) -> int:
    """Size of a message of ``kind`` in flits."""
    if kind in DATA_BEARING:
        return header_flits + data_flits
    return header_flits
