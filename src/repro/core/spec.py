"""Protocol notation and specification (paper Section 2.5).

The paper introduces the notation ``Dir_i H_X S_Y,A`` for the spectrum of
software-extended protocols:

- ``i`` — total explicit pointers recorded (hardware + software); ``n``
  means the directory is extended in software to the full node count.
- ``X`` — pointers implemented in hardware (or ``NB`` when all ``i``
  pointers are in hardware and no software extension exists).
- ``Y`` — ``NB`` if the hardware/software combination never broadcasts,
  ``B`` if software broadcasts when more than ``i`` copies exist, ``-``
  if there is no software at all (full map).
- ``A`` — ``ACK`` if software traps on *every* acknowledgement, ``LACK``
  if it traps only on the *last* acknowledgement, absent if hardware
  keeps the count.

Examples from the paper::

    DirnHNBS-        full-map (DASH-style), no software
    DirnH5SNB        LimitLESS with five hardware pointers (Alewife boot default)
    DirnH1SNB,ACK    one-pointer, software counts every ack
    DirnH1SNB,LACK   one-pointer, hardware counts, trap on last ack
    DirnH1SNB        one-pointer, hardware counts and replies (2 physical ptrs)
    DirnH0SNB,ACK    software-only directory
    Dir1H1SB,LACK    Dir1SW (Wood et al.): one pointer total, software broadcast
"""

from __future__ import annotations

import dataclasses
import enum
import re
from typing import ClassVar, Dict, Optional, Tuple

from repro.common.errors import ProtocolSpecError


class AckMode(enum.Enum):
    """Who processes invalidation acknowledgements after an overflow."""

    HARDWARE = "hardware"  # hardware counts and completes
    LAST_SOFTWARE = "lack"  # hardware counts, software trap on the last
    SOFTWARE = "ack"  # software trap on every acknowledgement


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """A point in the software-extended protocol spectrum.

    Attributes
    ----------
    hw_pointers:
        Directory pointers implemented in hardware (0..5 in Alewife).
        Ignored when ``full_map`` is set.
    full_map:
        ``DirnHNBS-``: one pointer per node, entirely in hardware.
    sw_extension:
        Software extends the directory to ``n`` pointers on overflow
        (the ``Dirn...`` protocols).  ``False`` with ``sw_broadcast``
        gives the ``Dir1...B`` broadcast protocols.
    sw_broadcast:
        On a write to an overflowed block, software broadcasts
        invalidations to every node instead of walking recorded pointers.
    ack_mode:
        Acknowledgement handling after a software-directed invalidation.
    local_bit:
        Alewife's one-bit pointer for the home node (Section 3.1); it
        prevents the local node from overflowing its own directory.
    smallset_opt:
        Memory-usage optimization for worker sets of four or fewer
        (Section 5); implemented by the 0/1-pointer protocols.
    """

    hw_pointers: int = 5
    full_map: bool = False
    sw_extension: bool = True
    sw_broadcast: bool = False
    ack_mode: AckMode = AckMode.HARDWARE
    local_bit: bool = True
    smallset_opt: bool = False

    def __post_init__(self) -> None:
        if self.full_map:
            if self.sw_broadcast or self.ack_mode is not AckMode.HARDWARE:
                raise ProtocolSpecError("full-map takes no software options")
            return
        if self.hw_pointers < 0:
            raise ProtocolSpecError("hw_pointers must be >= 0")
        if self.sw_broadcast and self.sw_extension:
            raise ProtocolSpecError(
                "broadcast (Y=B) and software pointer extension (Dirn) "
                "are mutually exclusive"
            )
        if not self.sw_extension and not self.sw_broadcast:
            raise ProtocolSpecError(
                "a non-full-map protocol needs software extension or "
                "software broadcast"
            )
        if self.hw_pointers == 0:
            if self.ack_mode is not AckMode.SOFTWARE:
                raise ProtocolSpecError(
                    "the software-only directory counts every ack in "
                    "software (DirnH0SNB,ACK)"
                )
            if self.local_bit:
                raise ProtocolSpecError(
                    "the software-only directory has no hardware pointers, "
                    "including the local bit (it uses a remote-access bit "
                    "instead)"
                )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def needs_software(self) -> bool:
        return not self.full_map

    @property
    def is_software_only(self) -> bool:
        return not self.full_map and self.hw_pointers == 0

    @property
    def traps_on_read_overflow(self) -> bool:
        """Dirn protocols trap when a read overflows the hardware
        pointers; Dir1...B protocols do not (Section 2.5)."""
        return self.sw_extension and not self.full_map

    @property
    def name(self) -> str:
        """Canonical notation string (``Dir_i H_X S_Y,A`` flattened)."""
        if self.full_map:
            return "DirnHNBS-"
        i = "n" if self.sw_extension else str(self.hw_pointers)
        y = "B" if self.sw_broadcast else "NB"
        suffix = {
            AckMode.HARDWARE: "",
            AckMode.LAST_SOFTWARE: ",LACK",
            AckMode.SOFTWARE: ",ACK",
        }[self.ack_mode]
        return f"Dir{i}H{self.hw_pointers}S{y}{suffix}"

    def __str__(self) -> str:
        return self.name

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    _PATTERN: ClassVar[re.Pattern] = re.compile(
        r"^Dir(?P<i>n|\d+)H(?P<x>NB|\d+)S(?P<y>NB|B|-)"
        r"(?:,(?P<a>ACK|LACK))?$",
        re.IGNORECASE,
    )

    _ALIASES: ClassVar[Dict[str, str]] = {
        "full-map": "DirnHNBS-",
        "fullmap": "DirnHNBS-",
        "full": "DirnHNBS-",
        "software-only": "DirnH0SNB,ACK",
        "limitless1": "DirnH1SNB",
        "limitless2": "DirnH2SNB",
        "limitless4": "DirnH4SNB",
        "limitless5": "DirnH5SNB",
        "dir1sw": "Dir1H1SB,LACK",
    }

    @classmethod
    def parse(cls, text: str) -> "ProtocolSpec":
        """Parse a notation string (or friendly alias) into a spec."""
        raw = text.strip()
        canonical = cls._ALIASES.get(raw.lower(), raw)
        normalized = canonical.replace(" ", "").replace("_", "")
        match = cls._PATTERN.match(normalized)
        if match is None:
            raise ProtocolSpecError(f"cannot parse protocol {text!r}")
        i = match.group("i").lower()
        x = match.group("x").upper()
        y = match.group("y").upper()
        a = (match.group("a") or "").upper()

        if x == "NB":
            if y != "-" or a:
                raise ProtocolSpecError(
                    f"{text!r}: H=NB (full-map) cannot take software options"
                )
            return cls(full_map=True, hw_pointers=0, sw_extension=False,
                       sw_broadcast=False, local_bit=True)

        hw = int(x)
        ack = {
            "": AckMode.HARDWARE,
            "ACK": AckMode.SOFTWARE,
            "LACK": AckMode.LAST_SOFTWARE,
        }[a]
        sw_extension = i == "n"
        sw_broadcast = y == "B"
        if not sw_extension:
            if int(i) != hw:
                raise ProtocolSpecError(
                    f"{text!r}: without software extension the explicit "
                    f"pointer count must equal the hardware pointer count"
                )
            if not sw_broadcast:
                raise ProtocolSpecError(
                    f"{text!r}: Dir{i} with S=NB would simply be a limited "
                    f"directory with no software; use B or Dirn"
                )
        local_bit = hw > 0
        smallset = hw <= 1 and sw_extension
        return cls(
            hw_pointers=hw,
            full_map=False,
            sw_extension=sw_extension,
            sw_broadcast=sw_broadcast,
            ack_mode=ack,
            local_bit=local_bit,
            smallset_opt=smallset,
        )

    def with_updates(self, **changes: object) -> "ProtocolSpec":
        return dataclasses.replace(self, **changes)


#: Protocols the Alewife hardware itself supports (Section 3.1), for
#: reference and for tests that distinguish machine-supported protocols
#: from simulator-only ones (the one-pointer variants run only in NWO).
ALEWIFE_SUPPORTED: Tuple[str, ...] = (
    "DirnH0SNB,ACK",
    "DirnH2SNB",
    "DirnH3SNB",
    "DirnH4SNB",
    "DirnH5SNB",
)

#: The spectrum evaluated throughout the paper's figures.
PAPER_SPECTRUM: Tuple[str, ...] = (
    "DirnH0SNB,ACK",
    "DirnH1SNB,ACK",
    "DirnH1SNB,LACK",
    "DirnH1SNB",
    "DirnH2SNB",
    "DirnH3SNB",
    "DirnH4SNB",
    "DirnH5SNB",
    "DirnHNBS-",
)


def spec_of(protocol: "ProtocolSpec | str") -> ProtocolSpec:
    """Coerce a protocol argument (spec or notation string) to a spec."""
    if isinstance(protocol, ProtocolSpec):
        return protocol
    return ProtocolSpec.parse(protocol)


def hardware_pointer_label(spec: ProtocolSpec, n_nodes: Optional[int] = None) -> str:
    """Label used on the x-axis of Figure 4 ('number of hardware pointers')."""
    if spec.full_map:
        return str(n_nodes) if n_nodes is not None else "n"
    return str(spec.hw_pointers)
