"""Cache-side (processor-side) protocol controller.

The controller sits between the processor and the network: it services
loads, stores and instruction fetches against the local cache, issues
read/write requests to home nodes on misses (one outstanding transaction,
matching Sparcle's blocking-load behaviour), retries after BUSY replies
with deterministic backoff, and answers coherence traffic (invalidations
and fetches) from home directories.

Instruction fetches to the node's private code region never involve the
directory: a miss is filled straight from local memory.  Code shares the
combined direct-mapped cache with data, which is exactly what makes the
instruction/data thrashing of the TSP case study (Section 6) possible.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Optional

from repro.common.errors import ProtocolStateError
from repro.common.types import AccessType, CacheState
from repro.cache.cache import DirectMappedCache, Eviction
from repro.core import messages as msg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.node import Node
    from repro.network.fabric import Message

#: Extra cycles charged when a hit is satisfied by a victim-cache swap.
VICTIM_HIT_PENALTY = 2


@dataclasses.dataclass
class Outstanding:
    """The single in-flight memory transaction of a blocking processor."""

    block: int
    access: AccessType
    done: Callable[[], None]
    retries: int = 0
    #: Transaction id for tracing; retries re-use it so the whole retry
    #: storm of one miss stays attributable to that miss.
    txn: Optional[int] = None


class CacheController:
    """Processor-side cache + protocol engine for one node."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        params = node.machine.params
        victim = (params.victim_cache_entries
                  if params.victim_cache_enabled else 0)
        self.cache = DirectMappedCache(params.cache_sets, victim)
        self.block_shift = params.block_shift
        self.outstanding: Optional[Outstanding] = None
        self._ifetch_pending = False

    # ------------------------------------------------------------------
    # Processor interface
    # ------------------------------------------------------------------

    def try_hit(self, access: AccessType, block: int) -> Optional[int]:
        """Attempt a cache hit; returns the hit latency or None on miss."""
        stats = self.node.stats
        state, from_victim = self.cache.lookup(block)
        satisfied = (state.writable if access is AccessType.WRITE
                     else state.readable)
        if satisfied:
            stats.cache_hits += 1
            if from_victim:
                stats.victim_hits += 1
                return (self.node.machine.params.cache_hit_latency
                        + VICTIM_HIT_PENALTY)
            return self.node.machine.params.cache_hit_latency
        stats.cache_misses += 1
        return None

    def start_miss(self, access: AccessType, block: int,
                   done: Callable[[], None],
                   txn: Optional[int] = None) -> None:
        """Begin a data miss; ``done`` fires when the line is filled."""
        if self.outstanding is not None:
            raise ProtocolStateError(
                f"node {self.node.id} already has an outstanding miss"
            )
        self.outstanding = Outstanding(block, access, done, txn=txn)
        self._send_request()

    def check_in(self, block: int) -> None:
        """CICO check-in (Section 2/7 annotations): relinquish any cached
        copy so the directory's pointer is freed.  Dirty copies write
        back; clean copies notify the home to drop the pointer."""
        state = self.cache.invalidate(block)
        home = self.node.machine.params.home_of_block(block)
        if state is CacheState.READ_WRITE:
            self.node.stats.dirty_evictions += 1
            self.node.send_protocol(msg.EVICT_WB, home, block)
        elif state is CacheState.READ_ONLY:
            self.node.send_protocol(msg.RELINQ, home, block)

    def start_ifetch_miss(self, block: int, done: Callable[[], None]) -> None:
        """Fill an instruction line from local memory (no coherence)."""
        if self._ifetch_pending:
            raise ProtocolStateError("overlapping instruction fetches")
        self._ifetch_pending = True

        def fill() -> None:
            self._ifetch_pending = False
            self._fill(block, CacheState.READ_ONLY)
            done()

        self.node.machine.sim.after(self.node.machine.params.mem_latency,
                                    fill)

    def _send_request(self) -> None:
        assert self.outstanding is not None
        out = self.outstanding
        kind = msg.WREQ if out.access is AccessType.WRITE else msg.RREQ
        home = self.node.machine.params.home_of_block(out.block)
        self.node.send_protocol(kind, home, out.block, txn=out.txn)

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def handle(self, message: "Message") -> None:
        block = message.payload.block
        kind = message.kind
        if kind == msg.RDATA:
            self._on_data(block, CacheState.READ_ONLY)
        elif kind == msg.WDATA:
            self._on_data(block, CacheState.READ_WRITE)
        elif kind == msg.BUSY:
            self._on_busy(block)
        elif kind == msg.INV:
            self._on_inv(message.src, block)
        elif kind == msg.FETCH_RD:
            self._on_fetch(message.src, block, invalidate=False)
        elif kind == msg.FETCH_INV:
            self._on_fetch(message.src, block, invalidate=True)
        else:
            raise ProtocolStateError(f"cache received {message.kind}")

    def _on_data(self, block: int, state: CacheState) -> None:
        out = self.outstanding
        if out is None or out.block != block:
            # A stale grant (e.g. the home answered both the original
            # request and a retry).  Filling could clobber newer state.
            return
        if (out.access is AccessType.WRITE
                and state is not CacheState.READ_WRITE):
            return  # a stale read grant cannot satisfy a write miss
        # A read miss accepts either grant: homes answer reads to
        # migratory blocks with exclusive data (Section 7).
        self.outstanding = None
        self._fill(block, state)
        out.done()

    def _fill(self, block: int, state: CacheState) -> None:
        for eviction in self.cache.fill(block, state):
            self._write_back(eviction)

    def _write_back(self, eviction: Eviction) -> None:
        self.node.stats.evictions += 1
        if not eviction.dirty:
            return  # clean lines are dropped silently (no notification)
        self.node.stats.dirty_evictions += 1
        home = self.node.machine.params.home_of_block(eviction.block)
        self.node.send_protocol(msg.EVICT_WB, home, eviction.block)

    def _on_busy(self, block: int) -> None:
        out = self.outstanding
        if out is None or out.block != block:
            return  # stale busy for a transaction that already completed
        out.retries += 1
        self.node.stats.retries += 1
        params = self.node.machine.params
        # Deterministic per-node jitter breaks the lockstep resonance of
        # many nodes retrying a contended home in phase.
        jitter = (self.node.id * 7 + out.retries * 3) % 17
        backoff = (params.retry_backoff_base
                   + params.retry_backoff_step * min(out.retries, 16)
                   + jitter)
        self.node.machine.sim.after(backoff, self._retry(out))

    def _retry(self, out: Outstanding) -> Callable[[], None]:
        def resend() -> None:
            if self.outstanding is out:
                self._send_request()
        return resend

    def _on_inv(self, home: int, block: int) -> None:
        state = self.cache.invalidate(block)
        if state is CacheState.READ_WRITE:
            raise ProtocolStateError(
                f"node {self.node.id} received INV for a dirty block {block}"
            )
        self.node.send_protocol(msg.ACK, home, block)

    def _on_fetch(self, home: int, block: int, invalidate: bool) -> None:
        if invalidate:
            state = self.cache.invalidate(block)
        else:
            state = self.cache.downgrade(block)
        if state is CacheState.READ_WRITE:
            self.node.send_protocol(msg.FETCH_DATA, home, block)
        elif state is CacheState.INVALID:
            # We evicted the dirty line; the write-back racing this fetch
            # is already in flight and the home will treat it as the
            # response.
            pass
        else:
            raise ProtocolStateError(
                f"node {self.node.id}: fetch for block {block} found "
                f"state {state}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state_of(self, block: int) -> CacheState:
        return self.cache.probe(block)
