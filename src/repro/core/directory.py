"""Hardware directory entries.

Each block of shared memory has a directory entry at its home node.  For
the software-extended protocols the entry holds a small, fixed number of
pointers (0-5 in Alewife) plus the special one-bit pointer for the local
node, an acknowledgement counter, and bookkeeping for transient states.
The full-map protocol uses an unbounded pointer set (conceptually one bit
per node).

Entries are created lazily: an absent entry means ``DirState.ABSENT``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

from repro.common.errors import ProtocolStateError
from repro.common.types import DirState, NodeId


@dataclasses.dataclass
class DirectoryEntry:
    """Home-side hardware state for one memory block."""

    capacity: int  # hardware pointers available (ignored for full map)
    block: int = 0
    full_map: bool = False
    home: NodeId = 0
    use_local_bit: bool = True
    #: on overflow, software broadcasts instead of extending (Dir1...B);
    #: per-entry because Alewife reconfigures protocols block-by-block
    sw_broadcast: bool = False

    state: DirState = DirState.ABSENT
    pointers: List[NodeId] = dataclasses.field(default_factory=list)
    local_bit: bool = False
    #: remote-access bit of the software-only directory (Section 2.3)
    remote_bit: bool = False
    #: set when the software directory extension holds pointers for this
    #: block (writes must then be handled in software)
    extended: bool = False
    #: copies granted without recording (broadcast protocols); counted in
    #: the otherwise-idle acknowledgement counter so CICO check-ins can
    #: restore exactness and clear the broadcast flag
    untracked: int = 0
    #: outstanding invalidation acknowledgements (hardware counter)
    ack_count: int = 0
    #: requester being served by an in-flight transaction
    pending_requester: Optional[NodeId] = None
    #: owner a FETCH was sent to (transient states only)
    pending_owner: Optional[NodeId] = None
    #: the in-flight fetch serves a read request
    pending_is_read: bool = False
    #: the in-flight fetch invalidates the owner (vs. downgrading it)
    fetch_is_inv: bool = False
    #: a software handler for this block is queued or running; new
    #: requests receive BUSY until it completes
    sw_pending: bool = False
    #: the in-flight write transaction was directed by software (routes
    #: acknowledgements to the right handler)
    sw_write: bool = False
    #: remaining targets of a *sequential* software invalidation
    #: (Section 7's dynamic invalidation-procedure selection)
    seq_targets: Optional[List[NodeId]] = None
    #: migratory-data detection (Section 7, after Cox/Fowler and
    #: Stenstrom et al.): the block follows a read-modify-write
    #: migration pattern, so reads are granted exclusively
    migratory: bool = False
    migratory_evidence: int = 0
    migratory_conflicts: int = 0
    last_writer: Optional[NodeId] = None

    # ------------------------------------------------------------------
    # Pointer management
    # ------------------------------------------------------------------

    def has_pointer(self, node: NodeId) -> bool:
        if self.use_local_bit and node == self.home and self.local_bit:
            return True
        return node in self.pointers

    def can_record(self, node: NodeId) -> bool:
        """Would recording ``node`` succeed without an overflow?"""
        if self.has_pointer(node):
            return True
        if self.use_local_bit and node == self.home:
            return True
        return self.full_map or len(self.pointers) < self.capacity

    def record(self, node: NodeId) -> None:
        """Record a pointer to ``node``; raises on overflow."""
        if self.has_pointer(node):
            return
        if self.use_local_bit and node == self.home:
            self.local_bit = True
            return
        if not self.full_map and len(self.pointers) >= self.capacity:
            raise ProtocolStateError(
                f"hardware directory overflow recording node {node} "
                f"(capacity {self.capacity})"
            )
        self.pointers.append(node)

    def drop(self, node: NodeId) -> None:
        """Remove any pointer to ``node``."""
        if self.use_local_bit and node == self.home:
            self.local_bit = False
        while node in self.pointers:
            self.pointers.remove(node)

    def take_all_pointers(self) -> List[NodeId]:
        """Empty the hardware pointer array (the read-overflow handler's
        action); the local bit stays in hardware."""
        taken = list(self.pointers)
        self.pointers.clear()
        return taken

    def sharer_set(self) -> Set[NodeId]:
        """All nodes the *hardware* currently points at."""
        sharers = set(self.pointers)
        if self.use_local_bit and self.local_bit:
            sharers.add(self.home)
        return sharers

    @property
    def owner(self) -> NodeId:
        """Owner of a READ_WRITE block."""
        if self.state is not DirState.READ_WRITE:
            raise ProtocolStateError(f"no owner in state {self.state}")
        if self.use_local_bit and self.local_bit:
            return self.home
        if len(self.pointers) != 1:
            raise ProtocolStateError(
                f"READ_WRITE entry with {len(self.pointers)} pointers"
            )
        return self.pointers[0]

    # ------------------------------------------------------------------
    # Transitions used by the home controller
    # ------------------------------------------------------------------

    def reset_to_exclusive(self, owner: NodeId) -> None:
        """Collapse the entry to a single exclusive owner."""
        self.pointers.clear()
        self.local_bit = False
        self.extended = False
        self.state = DirState.READ_WRITE
        if self.use_local_bit and owner == self.home:
            self.local_bit = True
        else:
            self.pointers.append(owner)
        self.ack_count = 0
        self.pending_requester = None
        self.sw_write = False
        self.seq_targets = None
        self.untracked = 0

    def reset_to_absent(self) -> None:
        self.pointers.clear()
        self.local_bit = False
        self.extended = False
        self.state = DirState.ABSENT
        self.ack_count = 0
        self.pending_requester = None
        self.sw_write = False
        self.seq_targets = None
        self.untracked = 0

    @property
    def idle(self) -> bool:
        """No transaction or software handling in flight."""
        return not self.state.transient and not self.sw_pending
