"""Continuous, transition-level protocol invariant checking.

The barrier checker in :mod:`repro.analysis.verify` validates machine
state at quiescent points; this module promotes it to a *continuous*
checker that rides the :mod:`repro.obs` probes — every fired protocol
transition and every fabric message is checked as it happens, so a
protocol bug surfaces at the offending cycle instead of the next
barrier.  Because it is an observer, it is zero-cost when detached and
provably perturbation-free when attached (observers read state only).

Checked invariants:

- **transition claims** — the table row's declared ``next_state`` label
  matches the entry's actual post-state;
- **busy-state exclusivity** — a request arriving mid-transaction can
  only be answered by a BUSY rule, never mutate the transaction;
- **directory well-formedness** — no duplicated pointers, pointer count
  within hardware capacity, exactly one tracked node in ``READ_WRITE``,
  transient states carry their pending requester, acknowledgement
  counters never negative; an extended or broadcast-flagged entry is
  accounted for (no pointers lost on overflow or trap);
- **no lost readers** — whenever a hardware entry settles in
  ``READ_ONLY``, every node actually holding a readable copy is named
  by a hardware pointer or the software extension record (the converse
  — stale pointers to clean-evicted copies — is legal);
- **ack conservation** — every ACK on the fabric matches an earlier
  INV for the same block, and none are outstanding at the end;
- **single-writer** — a WDATA grant never leaves another node holding
  a readable copy, an RDATA grant never coexists with a writable copy
  (modulo the software-only directory's in-flight home-copy flush,
  which the protocol intentionally allows);
- **final sweep** — :func:`repro.analysis.verify.coherence_violations`
  over the quiesced machine at :meth:`InvariantChecker.finish`.

Attach with :meth:`InvariantChecker.attach`, or from the CLI with
``repro run --check-invariants`` / ``repro experiments
--check-invariants``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.types import CacheState, DirState
from repro.core import messages as msg
from repro.core.directory import DirectoryEntry
from repro.core.protocol.table import allowed_after
from repro.core.software.extdir import SoftwareDirEntry
from repro.obs.events import MessageSent, TransitionApplied

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

__all__ = ["InvariantChecker", "InvariantViolation"]

#: Rules allowed to answer a request that arrived mid-transaction.
_BUSY_RULES = frozenset({"read_busy", "reply_busy", "busy_trap"})


class InvariantViolation(AssertionError):
    """Raised by a strict checker at the first violated invariant."""


class InvariantChecker:
    """Continuous protocol-invariant checker over the event bus.

    Subscribe with :meth:`attach`; collected violations accumulate in
    :attr:`violations` (``strict=True`` raises
    :class:`InvariantViolation` at the first one instead).  Call
    :meth:`finish` after the run for the end-of-run conservation and
    whole-machine coherence sweeps.
    """

    def __init__(self, machine: "Machine", strict: bool = False) -> None:
        self.machine = machine
        self.strict = strict
        self.violations: List[str] = []
        self.transitions_checked = 0
        self.messages_checked = 0
        self._outstanding_invs: Dict[int, int] = {}
        self._attached = False

    @classmethod
    def attach(cls, machine: "Machine",
               strict: bool = False) -> "InvariantChecker":
        """Create a checker and subscribe it to ``machine``'s bus."""
        checker = cls(machine, strict=strict)
        bus = machine.observe()
        bus.subscribe("transition", checker._on_transition)
        bus.subscribe("message", checker._on_message)
        checker._attached = True
        return checker

    def detach(self) -> None:
        """Unsubscribe from the bus (violations are kept)."""
        if self._attached and self.machine.obs is not None:
            self.machine.obs.unsubscribe("transition", self._on_transition)
            self.machine.obs.unsubscribe("message", self._on_message)
        self._attached = False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _violate(self, at: int, text: str) -> None:
        report = f"[cycle {at}] {text}"
        self.violations.append(report)
        if self.strict:
            raise InvariantViolation(report)

    def finish(self) -> List[str]:
        """End-of-run sweeps; returns the accumulated violations."""
        for block, count in sorted(self._outstanding_invs.items()):
            if count:
                self._violate(
                    self.machine.sim.now,
                    f"{count} invalidation(s) never acknowledged for "
                    f"block {block}",
                )
        from repro.analysis.verify import coherence_violations

        for problem in coherence_violations(self.machine):
            self._violate(self.machine.sim.now, f"final state: {problem}")
        return self.violations

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if anything was recorded."""
        if self.violations:
            shown = "\n  ".join(self.violations[:8])
            raise InvariantViolation(
                f"{len(self.violations)} protocol invariant violation(s):"
                f"\n  {shown}"
            )

    # ------------------------------------------------------------------
    # Transition-level checks
    # ------------------------------------------------------------------

    def _on_transition(self, ev: TransitionApplied) -> None:
        self.transitions_checked += 1
        claim = allowed_after(ev.next_label)
        if claim == "same":
            if ev.after != ev.before:
                self._violate(
                    ev.at,
                    f"rule {ev.rule} claims no state change for block "
                    f"{ev.block} but moved {ev.before} -> {ev.after}",
                )
        elif claim is not None:
            if ev.after is None or DirState(ev.after) not in claim:
                self._violate(
                    ev.at,
                    f"rule {ev.rule} declared next state "
                    f"{ev.next_label!r} for block {ev.block} but entry "
                    f"is in {ev.after}",
                )
        if ev.busy and ev.event in (msg.RREQ, msg.WREQ) \
                and ev.rule not in _BUSY_RULES:
            self._violate(
                ev.at,
                f"busy-state exclusivity: {ev.event} for block "
                f"{ev.block} fired {ev.rule} while a transaction was "
                f"in flight",
            )
        entry = self.machine.nodes[ev.node].home.entries.get(ev.block)
        if isinstance(entry, DirectoryEntry):
            self._check_hardware_entry(ev, entry)
        elif isinstance(entry, SoftwareDirEntry):
            self._check_software_entry(ev, entry)

    def _check_hardware_entry(self, ev: TransitionApplied,
                              entry: DirectoryEntry) -> None:
        at = ev.at
        block = ev.block
        pointers = entry.pointers
        if len(set(pointers)) != len(pointers):
            self._violate(at, f"block {block}: duplicated hardware "
                              f"pointers {pointers}")
        if not entry.full_map and len(pointers) > entry.capacity:
            self._violate(at, f"block {block}: {len(pointers)} pointers "
                              f"exceed capacity {entry.capacity}")
        if entry.ack_count < 0:
            self._violate(at, f"block {block}: negative ack count "
                              f"{entry.ack_count}")
        if entry.untracked < 0:
            self._violate(at, f"block {block}: negative untracked count")
        if entry.untracked > 0 and not entry.sw_broadcast:
            self._violate(at, f"block {block}: untracked copies on a "
                              f"non-broadcast entry")
        state = entry.state
        if state is DirState.READ_WRITE:
            tracked = len(pointers) + (
                1 if entry.use_local_bit and entry.local_bit else 0
            )
            if tracked != 1:
                self._violate(at, f"block {block}: READ_WRITE with "
                                  f"{tracked} tracked nodes")
        elif state is DirState.READ_ONLY:
            if not entry.sw_pending and not entry.extended \
                    and not entry.sharer_set():
                self._violate(at, f"block {block}: READ_ONLY with no "
                                  f"tracked sharers")
        if state.transient and entry.pending_requester is None:
            self._violate(at, f"block {block}: transient state {state} "
                              f"without a pending requester")
        if not state.transient and entry.ack_count != 0:
            self._violate(at, f"block {block}: ack counter "
                              f"{entry.ack_count} armed outside a write "
                              f"transaction")
        if ev.after == DirState.READ_ONLY.value and entry.idle \
                and entry.untracked == 0:
            self._check_reader_coverage(ev, entry)

    def _check_reader_coverage(self, ev: TransitionApplied,
                               entry: DirectoryEntry) -> None:
        """No lost pointers: every actual reader is tracked somewhere.

        Stale pointers to clean-evicted copies are legal (the directory
        over-approximates), so the check runs holders-subset-of-tracked
        only.  Restricted to hardware backends: the software-only
        directory's deferred home-copy flush leaves a legitimate
        transiently-untracked reader."""
        tracked = entry.sharer_set()
        software = self.machine.nodes[ev.node].home.software
        if software is not None:
            record = software.iface.lookup_extension(ev.block)
            if record is not None:
                tracked |= record.sharers
        for node in self.machine.nodes:
            if node.cache_ctrl.cache.probe(ev.block) is not \
                    CacheState.INVALID and node.id not in tracked:
                self._violate(
                    ev.at,
                    f"block {ev.block}: node {node.id} holds a readable "
                    f"copy untracked by pointers or extension "
                    f"(lost pointer)",
                )

    def _check_software_entry(self, ev: TransitionApplied,
                              entry: SoftwareDirEntry) -> None:
        at = ev.at
        block = ev.block
        if entry.sw_ack_count < 0:
            self._violate(at, f"block {block}: negative H0 ack count")
        state = entry.state
        if state is DirState.READ_WRITE:
            if entry.owner is None or entry.sharers != {entry.owner}:
                self._violate(
                    at,
                    f"block {block}: H0 READ_WRITE owner={entry.owner} "
                    f"sharers={sorted(entry.sharers)}",
                )
        elif state is DirState.READ_ONLY:
            if not entry.sharers:
                self._violate(at, f"block {block}: H0 READ_ONLY with no "
                                  f"sharers")
        if state.transient and entry.pending_requester is None:
            self._violate(at, f"block {block}: H0 transient state "
                              f"{state} without a pending requester")

    # ------------------------------------------------------------------
    # Message-level checks
    # ------------------------------------------------------------------

    def _on_message(self, ev: MessageSent) -> None:
        kind = ev.kind
        if kind == msg.INV:
            self.messages_checked += 1
            block = ev.block
            self._outstanding_invs[block] = \
                self._outstanding_invs.get(block, 0) + 1
        elif kind == msg.ACK:
            self.messages_checked += 1
            block = ev.block
            count = self._outstanding_invs.get(block, 0)
            if count <= 0:
                self._violate(
                    ev.sent_at,
                    f"block {block}: ACK from {ev.src} without a "
                    f"matching invalidation",
                )
            else:
                self._outstanding_invs[block] = count - 1
        elif kind == msg.WDATA:
            self.messages_checked += 1
            self._check_exclusive_grant(ev)
        elif kind == msg.RDATA:
            self.messages_checked += 1
            self._check_shared_grant(ev)

    def _flush_in_flight(self, block: Optional[int],
                         home: int) -> bool:
        backend = getattr(self.machine.nodes[home].home, "backend", None)
        flush_acks = getattr(backend, "_flush_acks", None)
        return bool(flush_acks) and flush_acks.get(block, 0) > 0

    def _check_exclusive_grant(self, ev: MessageSent) -> None:
        """At a WDATA send, no third node may still hold the block."""
        block = ev.block
        if block is None:
            return
        home = self.machine.params.home_of_block(block)
        for node in self.machine.nodes:
            if node.id == ev.dst:
                continue
            state = node.cache_ctrl.cache.probe(block)
            if state is CacheState.INVALID:
                continue
            if node.id == home and self._flush_in_flight(block, home):
                # The software-only directory flushes the home's own
                # copy asynchronously; the protocol tolerates the
                # stale copy until the INV lands.
                continue
            self._violate(
                ev.sent_at,
                f"block {block}: WDATA granted to {ev.dst} while node "
                f"{node.id} still holds {state.value}",
            )

    def _check_shared_grant(self, ev: MessageSent) -> None:
        """At an RDATA send, no node may hold a writable copy."""
        block = ev.block
        if block is None:
            return
        for node in self.machine.nodes:
            if node.id == ev.dst:
                continue
            if node.cache_ctrl.cache.probe(block) is CacheState.READ_WRITE:
                self._violate(
                    ev.sent_at,
                    f"block {block}: RDATA granted to {ev.dst} while "
                    f"node {node.id} holds a writable copy",
                )
