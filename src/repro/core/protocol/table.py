"""Declarative transition tables for the home-side coherence protocol.

A protocol is a list of guarded transitions ``(event, states, guard) ->
action, next_state`` — plain data, interpreted by
:class:`~repro.core.protocol.engine.HomeProtocolEngine`.  ``guard`` and
``action`` name methods on the :class:`~repro.core.protocol.backends.
DirectoryBackend` the engine is parameterized with; the engine resolves
them once at construction, so a table row costs one bound-method call
per evaluation.

Rows for an event are evaluated **in table order** against the entry's
current directory state; the first row whose state set matches and whose
guard passes fires, exactly like the cascaded ``if``/``elif`` chains of
the hand-written controllers these tables replaced (the A/B fixture in
``tests/test_protocol_equivalence.py`` proves the translation exact).

``next_state`` is a *claim*, not an instruction: actions mutate the
entry themselves (they need to order sends, traps and counter updates
precisely), and the declared label is checked against the actual
post-state by the invariant checker
(:class:`~repro.core.protocol.invariants.InvariantChecker`) and rendered
into ``docs/protocols.md``.  The label grammar is
:func:`allowed_after`'s input: a ``|``-separated list of
:class:`~repro.common.types.DirState` values, ``"same"`` (state must
not change), or ``"deferred"`` (the action hands off to a software
handler whose completion mutates the entry later — no claim is
checkable at transition time).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.common.types import DirState

__all__ = [
    "Transition",
    "EventPolicy",
    "ProtocolTable",
    "allowed_after",
    "HARDWARE_TABLE",
    "SOFTWARE_ONLY_TABLE",
]

#: Shorthand used when writing the tables below.
_A = DirState.ABSENT
_RO = DirState.READ_ONLY
_RW = DirState.READ_WRITE
_RT = DirState.READ_TRANSACTION
_WT = DirState.WRITE_TRANSACTION


@dataclasses.dataclass(frozen=True)
class Transition:
    """One guarded transition row.

    ``states`` restricts the row to entries currently in one of the
    listed directory states; ``None`` is a wildcard (the row also
    applies when the event's policy looks up a *missing* entry, where
    there is no state to match).  ``guard`` names a backend predicate
    ``(entry, src, block) -> bool`` (``None`` = always fires);
    ``action`` names the backend mutator that implements the
    transition.  ``next_state`` is the declared post-state label (see
    :func:`allowed_after`).

    ``unreachable`` marks a *defensive* row: one the author claims can
    never fire given the fabric's per-channel FIFO ordering, kept in
    the table so the protocol stays safe if that assumption ever
    weakens.  The claim is machine-checked both ways by the model
    checker (``repro check``): an ``unreachable`` row that fires in the
    explored state space is a finding, and so is a dead row *without*
    the annotation.
    """

    event: str
    states: Optional[Tuple[DirState, ...]]
    action: str
    guard: Optional[str] = None
    next_state: Optional[str] = None
    description: str = ""
    unreachable: bool = False


@dataclasses.dataclass(frozen=True)
class EventPolicy:
    """How the engine obtains an entry and treats unmatched events.

    ``lookup`` is ``"create"`` (requests allocate directory entries on
    first touch) or ``"get"`` (responses must find an existing entry).
    ``fallback`` is ``"error"`` (no matching row calls the backend's
    ``no_rule``, which raises :class:`~repro.common.errors.
    ProtocolStateError`) or ``"ignore"`` (silently dropped — e.g. a
    stale CICO check-in racing a write transaction).
    """

    lookup: str = "get"
    fallback: str = "error"

    def __post_init__(self) -> None:
        if self.lookup not in ("create", "get"):
            raise ValueError(f"bad lookup policy {self.lookup!r}")
        if self.fallback not in ("error", "ignore"):
            raise ValueError(f"bad fallback policy {self.fallback!r}")


@dataclasses.dataclass(frozen=True)
class ProtocolTable:
    """A complete home-side protocol: rows plus per-event policies."""

    name: str
    description: str
    transitions: Tuple[Transition, ...]
    policies: Dict[str, EventPolicy]

    def events(self) -> Tuple[str, ...]:
        """The event kinds this table serves, in declaration order."""
        return tuple(self.policies)

    def rows_for(self, event: str) -> Tuple[Transition, ...]:
        """All rows for ``event``, in table (= evaluation) order."""
        return tuple(t for t in self.transitions if t.event == event)


def allowed_after(label: Optional[str]):
    """Parse a ``next_state`` label into the checkable claim it makes.

    Returns ``None`` when the label makes no claim (``None`` itself, or
    ``"deferred"``), the string ``"same"``, or a frozenset of
    :class:`~repro.common.types.DirState` values the entry may be in
    after the action.
    """
    if label is None or label == "deferred":
        return None
    if label == "same":
        return "same"
    return frozenset(DirState(part) for part in label.split("|"))


# ----------------------------------------------------------------------
# The hardware-directory table (full-map, limited-pointer + software
# extension, and the Dir1SW broadcast protocol — which backend features
# fire is decided by the entry's per-block spec and the guards).
# ----------------------------------------------------------------------

HARDWARE_TABLE = ProtocolTable(
    name="hardware",
    description=(
        "CMMU hardware directory with optional software extension: "
        "full-map, DirnHkSNB (k hardware pointers, overflow to a "
        "software hash table), and the Dir1SW broadcast protocol."
    ),
    transitions=(
        # -- read requests ---------------------------------------------
        Transition(
            "rreq", None, "read_busy", guard="busy", next_state="same",
            description="transaction in flight (or a handler queued): "
                        "reply BUSY; a reader racing a migratory handoff "
                        "is reversion evidence"),
        Transition(
            "rreq", (_A,), "read_absent", next_state="read_only",
            description="first copy: record the reader, grant RDATA"),
        Transition(
            "rreq", (_RO,), "read_record", guard="reader_fits",
            next_state="read_only",
            description="a hardware pointer is free (or the reader is "
                        "already recorded): record, grant"),
        Transition(
            "rreq", (_RO,), "read_untracked", guard="broadcast_mode",
            next_state="read_only",
            description="Dir1..B overflow: set the broadcast flag, count "
                        "the untracked copy, grant without trapping"),
        Transition(
            "rreq", (_RO,), "read_overflow", next_state="deferred",
            description="pointer overflow: trap the read-overflow "
                        "handler (empty pointers into software)"),
        Transition(
            "rreq", (_RW,), "reply_busy", guard="from_owner",
            next_state="same", unreachable=True,
            description="owner's write-back is in flight: retry "
                        "(per-channel FIFO delivers the write-back "
                        "before the owner's next request)"),
        Transition(
            "rreq", (_RW,), "read_fetch_exclusive", guard="migratory_block",
            next_state="write_transaction",
            description="migratory block: serve the read like a write "
                        "(FETCH_INV, exclusive grant)"),
        Transition(
            "rreq", (_RW,), "read_fetch_shared",
            next_state="read_transaction",
            description="recall the dirty copy (FETCH_RD, or FETCH_INV "
                        "when the pointers cannot hold both nodes)"),
        # -- write requests --------------------------------------------
        Transition(
            "wreq", None, "reply_busy", guard="busy", next_state="same",
            description="transaction in flight: reply BUSY"),
        Transition(
            "wreq", (_A,), "write_absent", next_state="read_write",
            description="no copies: grant exclusive"),
        Transition(
            "wreq", (_RO,), "write_broadcast", guard="extended_broadcast",
            next_state="deferred",
            description="Dir1..B extended: trap software to broadcast "
                        "INV to every other node"),
        Transition(
            "wreq", (_RO,), "write_extended", guard="extended_dir",
            next_state="deferred",
            description="directory extended into software: trap the "
                        "write handler (pointers + extension - writer)"),
        Transition(
            "wreq", (_RO,), "write_sole_sharer", guard="sole_sharer",
            next_state="read_write",
            description="writer is the only tracked sharer: upgrade in "
                        "place (also migratory-detection evidence)"),
        Transition(
            "wreq", (_RO,), "write_invalidate",
            next_state="write_transaction",
            description="hardware sends one INV per tracked sharer and "
                        "arms the acknowledgement counter"),
        Transition(
            "wreq", (_RW,), "reply_busy", guard="from_owner",
            next_state="same", unreachable=True,
            description="owner's write-back is in flight: retry "
                        "(per-channel FIFO delivers the write-back "
                        "before the owner's next request)"),
        Transition(
            "wreq", (_RW,), "write_fetch_exclusive",
            next_state="write_transaction",
            description="invalidate the owner (FETCH_INV); its data "
                        "completes the write"),
        # -- acknowledgements ------------------------------------------
        Transition(
            "ack", (_WT,), "ack_sequential", guard="seq_invalidation",
            next_state="deferred",
            description="sequential invalidation: this ack's trap "
                        "launches the next INV (or transmits the data)"),
        Transition(
            "ack", (_WT,), "ack_software", guard="sw_counted_acks",
            next_state="deferred",
            description=",ACK protocol: every ack traps; software "
                        "counts in the extension record"),
        Transition(
            "ack", (_WT,), "ack_countdown", guard="acks_remaining",
            next_state="same",
            description="hardware counts down"),
        Transition(
            "ack", (_WT,), "ack_last_trap", guard="final_lack",
            next_state="deferred",
            description=",LACK protocol: the last ack traps software, "
                        "which transmits the data"),
        Transition(
            "ack", (_WT,), "ack_complete", guard="final_ack",
            next_state="read_write",
            description="last ack: hardware grants exclusive"),
        Transition(
            "ack", (_WT,), "ack_underflow", unreachable=True,
            description="more acks than invalidations: protocol error "
                        "(every INV arms exactly one expected ack)"),
        # -- fetch responses -------------------------------------------
        Transition(
            "fetch_data", (_RT,), "fetch_complete_read",
            next_state="read_only",
            description="owner's data for a read fetch: record owner "
                        "(unless invalidated) + requester, grant RDATA"),
        Transition(
            "fetch_data", (_WT,), "fetch_complete_write",
            next_state="read_write",
            description="owner's data for a write fetch: grant "
                        "exclusive to the requester"),
        # -- evictions -------------------------------------------------
        Transition(
            "evict_wb", (_RW,), "writeback_release", guard="from_owner",
            next_state="absent",
            description="owner wrote the dirty copy back: entry empties"),
        Transition(
            "evict_wb", (_RT,), "writeback_completes_read",
            guard="from_pending_owner", next_state="read_only",
            description="write-back crossed our fetch: treat it as the "
                        "fetch response (owner keeps no copy)"),
        Transition(
            "evict_wb", (_WT,), "writeback_completes_write",
            guard="from_pending_owner", next_state="read_write",
            description="write-back crossed our fetch: completes the "
                        "pending write"),
        # -- CICO check-ins --------------------------------------------
        Transition(
            "relinq", (_RO,), "relinq_drop", guard="tracked_sharer",
            next_state="read_only|absent",
            description="drop the sharer's hardware pointer; an empty "
                        "unextended entry resets to ABSENT"),
        Transition(
            "relinq", (_RO,), "relinq_checkin", guard="untracked_copies",
            next_state="read_only|absent",
            description="Dir1..B: count the untracked copy back in; a "
                        "full round of check-ins clears the broadcast "
                        "flag"),
        Transition(
            "relinq", (_RO,), "relinq_stale",
            next_state="read_only|absent",
            description="pointer lives in the software extension (or "
                        "is already gone): stale, harmless"),
    ),
    policies={
        "rreq": EventPolicy(lookup="create"),
        "wreq": EventPolicy(lookup="create"),
        "ack": EventPolicy(lookup="get"),
        "fetch_data": EventPolicy(lookup="get"),
        "evict_wb": EventPolicy(lookup="get"),
        "relinq": EventPolicy(lookup="get", fallback="ignore"),
    },
)


# ----------------------------------------------------------------------
# The software-only directory table (DirnH0SNB,ACK — Section 2.3).
# Unlike the hardware table, actions mutate the entry *atomically at
# message delivery* and defer only the outgoing messages behind the
# handler occupancy (several handlers can be queued at once, so
# deferring the mutations would let them interleave incorrectly).
# ----------------------------------------------------------------------

SOFTWARE_ONLY_TABLE = ProtocolTable(
    name="software-only",
    description=(
        "DirnH0SNB,ACK software-only directory: one remote-access bit "
        "per block; local data runs at uniprocessor speed until the "
        "first inter-node request, after which every coherence event "
        "traps the home's processor."
    ),
    transitions=(
        # -- read requests ---------------------------------------------
        Transition(
            "rreq", (_RW,), "local_miss_busy", guard="local_private",
            next_state="same", unreachable=True,
            description="home's own write-back in flight on private "
                        "data: retry, no software involved (FIFO "
                        "delivers the write-back first)"),
        Transition(
            "rreq", None, "local_read_grant", guard="local_private",
            next_state="read_only",
            description="remote-access bit clear: uniprocessor fast "
                        "path, no trap"),
        Transition(
            "rreq", (_RT, _WT), "busy_trap", next_state="same",
            description="software mid-transaction: even the BUSY reply "
                        "costs a handler dispatch"),
        Transition(
            "rreq", (_RW,), "owner_busy_trap", guard="from_owner",
            next_state="same", unreachable=True,
            description="owner's write-back is in flight: retry "
                        "(per-channel FIFO delivers the write-back "
                        "before the owner's next request)"),
        Transition(
            "rreq", (_RW,), "read_fetch", next_state="read_transaction",
            description="fetch the dirty copy; the software-only "
                        "directory always invalidates the owner"),
        Transition(
            "rreq", None, "read_grant", next_state="read_only",
            description="record the reader and send the data; the first "
                        "remote request also flushes the home's copy"),
        # -- write requests --------------------------------------------
        Transition(
            "wreq", (_RW,), "local_miss_busy", guard="local_private",
            next_state="same", unreachable=True,
            description="home's own write-back in flight on private "
                        "data: retry, no software involved (FIFO "
                        "delivers the write-back first)"),
        Transition(
            "wreq", None, "local_write_grant", guard="local_private",
            next_state="read_write",
            description="remote-access bit clear: uniprocessor fast "
                        "path, no trap"),
        Transition(
            "wreq", (_RT, _WT), "busy_trap", next_state="same",
            description="software mid-transaction: BUSY via a handler"),
        Transition(
            "wreq", (_RW,), "owner_busy_trap", guard="from_owner",
            next_state="same", unreachable=True,
            description="owner's write-back is in flight: retry "
                        "(per-channel FIFO delivers the write-back "
                        "before the owner's next request)"),
        Transition(
            "wreq", (_RW,), "write_fetch", next_state="write_transaction",
            description="invalidate the owner; its data completes the "
                        "write"),
        Transition(
            "wreq", None, "write_grant", guard="no_other_sharers",
            next_state="read_write",
            description="no other copies: grant exclusive from the "
                        "handler"),
        Transition(
            "wreq", None, "write_invalidate",
            next_state="write_transaction",
            description="software sends one INV per sharer and counts "
                        "every acknowledgement"),
        # -- acknowledgements (every one traps) ------------------------
        Transition(
            "ack", (_WT,), "ack_countdown", guard="acks_remaining",
            next_state="same",
            description="software counts down; each ack costs a trap"),
        Transition(
            "ack", (_WT,), "ack_complete", guard="final_ack",
            next_state="read_write",
            description="last ack: software grants exclusive"),
        Transition(
            "ack", None, "flush_ack", guard="flush_pending",
            next_state="same",
            description="ack for a home-copy flush with no write "
                        "transaction waiting on it"),
        # -- fetch responses -------------------------------------------
        Transition(
            "fetch_data", (_RT,), "fetch_complete_read",
            guard="from_owner", next_state="read_only",
            description="owner's data for a read fetch: only the "
                        "requester holds a copy afterwards"),
        Transition(
            "fetch_data", (_WT,), "fetch_complete_write",
            guard="from_owner", next_state="read_write",
            description="owner's data for a write fetch: exclusive "
                        "grant"),
        # -- evictions -------------------------------------------------
        Transition(
            "evict_wb", (_RT,), "fetch_complete_read", guard="from_owner",
            next_state="read_only",
            description="write-back crossed our fetch: treat it as the "
                        "fetch response"),
        Transition(
            "evict_wb", (_WT,), "fetch_complete_write", guard="from_owner",
            next_state="read_write",
            description="write-back crossed our fetch: completes the "
                        "pending write"),
        Transition(
            "evict_wb", (_RW,), "writeback_private",
            guard="private_writeback", next_state="absent",
            description="still private (bit clear): uniprocessor "
                        "behaviour, no trap"),
        Transition(
            "evict_wb", (_RW,), "writeback_trap", guard="from_owner",
            next_state="absent",
            description="owner wrote back; the bookkeeping traps"),
        # -- CICO check-ins --------------------------------------------
        Transition(
            "relinq", (_RO,), "relinq_shared",
            next_state="read_only|absent",
            description="drop the sharer; an empty entry resets to "
                        "ABSENT; the bookkeeping traps"),
        Transition(
            "relinq", None, "relinq_ack", next_state="same",
            description="stale check-in: acknowledge via a handler"),
    ),
    policies={
        "rreq": EventPolicy(lookup="create"),
        "wreq": EventPolicy(lookup="create"),
        "ack": EventPolicy(lookup="get"),
        "fetch_data": EventPolicy(lookup="get"),
        "evict_wb": EventPolicy(lookup="get"),
        "relinq": EventPolicy(lookup="create"),
    },
)
