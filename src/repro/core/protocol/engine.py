"""The table-driven home protocol engine.

One :class:`HomeProtocolEngine` executes every protocol in the paper's
spectrum: it compiles its backend's
:class:`~repro.core.protocol.table.ProtocolTable` into a per-event,
per-state dispatch structure at construction time, then interprets
incoming messages against it.  All protocol *behaviour* lives in the
table rows and the backend's guard/action methods; the engine itself
only sequences them.

The engine also owns the ``"transition"`` observability probe: when a
bus is attached (``machine.observe()``) and the channel has
subscribers, every fired rule emits a
:class:`~repro.obs.events.TransitionApplied` carrying the before/after
directory states and the declared ``next_state`` label — the raw
material of the continuous invariant checker
(:class:`~repro.core.protocol.invariants.InvariantChecker`).  When
detached the probe costs one attribute load and a ``None`` check.

Two dispatch modes execute the same table (selected by
:func:`~repro.machine.params.resolve_dispatch`; cycle-identical by
construction and by the equivalence gate):

- ``compiled`` (default): :mod:`repro.core.protocol.compile` generates
  specialized straight-line dispatch code for the table and the
  engine's :meth:`~HomeProtocolEngine.handle` is shadowed by the
  compiled closure (probe-off variant until a bus attaches);
- ``interpreted``: the original tuple-walking :meth:`handle` below —
  the readable reference semantics and the fallback when the compiler
  is suspected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.core.protocol.backends import (
    DirectoryBackend,
    FullMapBackend,
    LimitedPointerBackend,
    SoftwareOnlyBackend,
)
from repro.core.protocol.compile import bind_table
from repro.core.protocol.table import ProtocolTable
from repro.core.spec import ProtocolSpec
from repro.common.errors import ProtocolStateError
from repro.common.types import DirState
from repro.obs.events import TransitionApplied

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.software.interface import CoherenceInterface
    from repro.machine.node import Node
    from repro.network.fabric import Message

__all__ = ["HomeProtocolEngine", "build_home_engine"]


class HomeProtocolEngine:
    """Executes a protocol table against a directory backend.

    The compiled dispatch maps each event kind to ``(create, strict,
    by_state, when_missing)``: whether the entry is created on lookup,
    whether an unmatched event is an error, the per-state row lists
    (wildcard rows merged in table order), and the rows applicable when
    no entry exists.  Rows are ``(guard, action, transition)`` triples
    with guards and actions pre-resolved to bound backend methods.
    """

    def __init__(self, node: "Node", spec: ProtocolSpec,
                 backend: DirectoryBackend,
                 table: Optional[ProtocolTable] = None,
                 dispatch: Optional[str] = None) -> None:
        self.node = node
        self.spec = spec
        self.backend = backend
        self.table = backend.TABLE if table is None else table
        self._dispatch: Dict[str, tuple] = {}
        for event, policy in self.table.policies.items():
            rows = self.table.rows_for(event)
            compiled = []
            for row in rows:
                guard = (None if row.guard is None
                         else getattr(backend, row.guard))
                compiled.append((row.states, guard,
                                 getattr(backend, row.action), row))
            by_state: Dict[DirState, Tuple[tuple, ...]] = {}
            for state in DirState:
                by_state[state] = tuple(
                    (guard, action, row)
                    for states, guard, action, row in compiled
                    if states is None or state in states
                )
            when_missing = tuple(
                (guard, action, row)
                for states, guard, action, row in compiled
                if states is None
            )
            self._dispatch[event] = (
                policy.lookup == "create",
                policy.fallback == "error",
                by_state,
                when_missing,
            )

        # Imported here, not at module level: repro.machine imports the
        # protocol package back (node -> engine), so a top-level import
        # would be circular.
        from repro.machine.params import resolve_dispatch

        machine = getattr(node, "machine", None)
        if dispatch is None:
            dispatch = getattr(machine, "dispatch", None)
        self.dispatch = resolve_dispatch(dispatch)
        self._handle_probe: Optional[Callable] = None
        if self.dispatch == "compiled":
            fast, probe = bind_table(self.table, backend, node)
            self._handle_probe = probe
            # Shadow the class method with the specialized closure; the
            # probe-off variant pays zero per-message observer checks,
            # so it is only installed while no bus is attached.
            # getattr: during Machine.__init__ the nodes (and their
            # engines) are built before the ``obs`` attribute exists.
            attached = getattr(machine, "obs", None) is not None
            self.handle = probe if attached else fast  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Compatibility surface (tests and the machine address the home
    # controller through these)
    # ------------------------------------------------------------------

    @property
    def entries(self):
        """The backend's per-block directory entries."""
        return self.backend.entries

    @property
    def software(self):
        """The software extension handlers, if the protocol has any."""
        return getattr(self.backend, "software", None)

    def entry_for(self, block: int):
        """The backend's directory entry for ``block``."""
        return self.backend.entry_for(block)

    def obs_attached(self) -> None:
        """Switch compiled dispatch to the probe-on handler variant.

        Called by ``Machine.observe()`` when the event bus is created.
        The probe variant still checks the ``transition`` channel for
        subscribers per message (matching the interpreter), so it is
        always safe; this swap only exists so the *detached* fast
        variant can omit that check entirely.  No-op when interpreting.
        """
        if self._handle_probe is not None:
            self.handle = self._handle_probe  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, message: "Message") -> None:
        """Apply the first matching transition for ``message``."""
        kind = message.kind
        plan = self._dispatch.get(kind)
        if plan is None:
            self.backend.unknown_event(kind)
            return
        create, strict, by_state, when_missing = plan
        block = message.payload.block
        src = message.src
        backend = self.backend
        if create:
            entry = backend.entry_for(block)
        else:
            entry = backend.entries.get(block)
        if entry is None:
            before = None
            rows = when_missing
        else:
            before = entry.state
            rows = by_state[before]
        obs = self.node.machine.obs
        if obs is not None and obs.on_transition:
            busy = entry is not None and (
                before.transient or getattr(entry, "sw_pending", False)
            )
            for guard, action, row in rows:
                if guard is None or guard(entry, src, block):
                    action(entry, src, block)
                    obs.transition(TransitionApplied(
                        node=self.node.id,
                        at=self.node.machine.sim.now,
                        event=kind,
                        src=src,
                        block=block,
                        before=None if before is None else before.value,
                        after=None if entry is None else entry.state.value,
                        rule=row.action,
                        next_label=row.next_state,
                        busy=busy,
                        txn=message.payload.txn,
                    ))
                    return
        else:
            for guard, action, row in rows:
                if guard is None or guard(entry, src, block):
                    action(entry, src, block)
                    return
        if strict:
            backend.no_rule(kind, entry, src, block)


def build_home_engine(node: "Node", spec: ProtocolSpec,
                      interface: Optional["CoherenceInterface"]
                      ) -> HomeProtocolEngine:
    """Construct the home engine for ``spec`` with the right backend.

    Full-map protocols get :class:`FullMapBackend`; the software-only
    directory gets :class:`SoftwareOnlyBackend` (which requires the
    flexible coherence ``interface``); everything else — limited
    pointers with software extension, and the Dir1SW broadcast
    protocol — gets :class:`LimitedPointerBackend`.
    """
    backend: DirectoryBackend
    if spec.is_software_only:
        if interface is None:
            raise ProtocolStateError("software protocol needs an interface")
        backend = SoftwareOnlyBackend(node, spec, interface)
    elif spec.full_map:
        backend = FullMapBackend(node, spec, interface)
    else:
        backend = LimitedPointerBackend(node, spec, interface)
    return HomeProtocolEngine(node, spec, backend)
