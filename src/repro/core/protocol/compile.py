"""Table-to-code compiler for the home protocol engine.

The interpreted :class:`~repro.core.protocol.engine.HomeProtocolEngine`
walks ``(guard, action, row)`` tuples per message.  This module removes
that interpretive overhead: at machine construction it generates one
specialized straight-line dispatch function per protocol table — guard
chains flattened into ``if`` cascades per (event, directory-state)
pair, backend methods pre-bound into the closure namespace, dead
policies and rows annotated ``unreachable`` elided — and compiles it
with :func:`exec`.  The ``TransitionApplied`` observability probe is
split into two whole-function variants, so the detached-observer path
pays zero per-message probe checks.

Determinism contract
--------------------
The generated source is a pure function of the table: events are
emitted in policy declaration order, states in :class:`DirState`
declaration order, rows in table order, and bound-method names sorted.
Nothing identity-dependent (``id()``, ``repr()`` of live objects,
memory addresses) ever reaches the text, so the same table always
yields byte-identical source — cache keys and the determinism linter
stay honest.  Every generated module starts with the
``# repro: generated-by(compile)`` header; the linter lints the
generated text through :func:`generated_sources` instead of flagging
the single ``exec`` call below.

Equivalence contract
--------------------
Compiled dispatch must be *cycle-for-cycle identical* to the
interpreter (``tests/test_protocol_equivalence.py`` runs the 17-config
fixture in both modes; CI additionally ``cmp``'s full experiment
reports).  The one deliberate divergence is unobservable: rows marked
``unreachable`` — defensive rows the model checker proves can never
fire — are elided, so in a (provably impossible) state where one would
have fired, the compiled engine reports ``no_rule`` instead of running
the defensive action.
"""

from __future__ import annotations

import linecache
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.types import DirState
from repro.core.protocol.table import ProtocolTable, Transition
from repro.obs.events import TransitionApplied

__all__ = [
    "GENERATED_HEADER",
    "generate_source",
    "generated_filename",
    "generated_sources",
    "generation_manifest",
    "ensure_builtin_tables_compiled",
    "bind_table",
]

#: First line of every generated module.  The determinism linter keys
#: off this marker: generated text must carry it, and text registered
#: with it is linted like any hand-written source file.
GENERATED_HEADER = "# repro: generated-by(compile)"

#: filename -> source text for every table compiled in this process,
#: registered under a deterministic pseudo-filename so tracebacks
#: (via linecache) and the determinism linter can see the code.
_GENERATED_SOURCES: Dict[str, str] = {}

#: source text -> compiled ``bind`` function (module-level cache: the
#: source is identical for every node of a machine, so each table is
#: generated and compiled once per process, then bound per engine).
_BIND_CACHE: Dict[str, Callable] = {}

_STATES = tuple(DirState)


def generated_filename(table: ProtocolTable) -> str:
    """Deterministic pseudo-filename for ``table``'s generated module."""
    return f"<repro.core.protocol.compile:{table.name}>"


def generated_sources() -> Dict[str, str]:
    """Snapshot of every generated module compiled so far.

    The determinism linter iterates this to lint generated text exactly
    like checked-in source files.
    """
    return dict(_GENERATED_SOURCES)


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------

def _live_rows(table: ProtocolTable, event: str) -> List[Transition]:
    """Rows for ``event`` in table order, minus ``unreachable`` rows."""
    return [row for row in table.rows_for(event) if not row.unreachable]


def _chain_for(rows: List[Transition], state: DirState) -> List[Transition]:
    """The rows applicable in ``state`` (wildcards merged, table order)."""
    return [r for r in rows if r.states is None or state in r.states]


def _emit_chain(
    out: List[str],
    indent: str,
    event: str,
    chain: List[Transition],
    strict: bool,
    probe: bool,
    before_expr: Optional[str],
    busy_expr: str,
    after_expr: str,
) -> None:
    """Emit the guard cascade for one (event, state) pair.

    ``before_expr``/``after_expr``/``busy_expr`` are Python expressions
    (or literals) for the probe payload; the fast variant ignores them.
    An unguarded row terminates the cascade — later rows are dead for
    this state and are not emitted.
    """
    if probe and chain:
        out.append(f"{indent}_busy = {busy_expr}")
    closed = False
    for row in chain:
        if row.guard is None:
            body_indent = indent
        else:
            out.append(f"{indent}if m_{row.guard}(entry, src, block):")
            body_indent = indent + "    "
        out.append(f"{body_indent}m_{row.action}(entry, src, block)")
        if probe:
            out.append(
                f"{body_indent}emit(TransitionApplied("
                f"node=node_id, at=sim.now, event={event!r}, src=src, "
                f"block=block, before={before_expr}, after={after_expr}, "
                f"rule={row.action!r}, next_label={row.next_state!r}, "
                f"busy=_busy, txn=txn))"
            )
        out.append(f"{body_indent}return")
        if row.guard is None:
            closed = True
            break
    if not closed:
        if strict:
            out.append(f"{indent}no_rule({event!r}, entry, src, block)")
        out.append(f"{indent}return")


def _emit_event(
    out: List[str],
    table: ProtocolTable,
    event: str,
    first: bool,
    probe: bool,
) -> None:
    policy = table.policies[event]
    rows = _live_rows(table, event)
    create = policy.lookup == "create"
    strict = policy.fallback == "error"

    keyword = "if" if first else "elif"
    out.append(f"        {keyword} kind == {event!r}:")
    if create:
        out.append("            entry = entry_for(block)")
    else:
        out.append("            entry = entries_get(block)")
        out.append("            if entry is None:")
        _emit_chain(
            out, "                ", event,
            [r for r in rows if r.states is None], strict, probe,
            before_expr="None", busy_expr="False", after_expr="None",
        )
    out.append("            state = entry.state")

    specific = [s for s in _STATES
                if any(r.states is not None and s in r.states for r in rows)]
    after = "entry.state.value"
    first_state = True
    for state in specific:
        keyword = "if" if first_state else "elif"
        first_state = False
        out.append(f"            {keyword} state is S_{state.name}:")
        busy = ("True" if state.transient
                else 'getattr(entry, "sw_pending", False)')
        _emit_chain(
            out, "                ", event, _chain_for(rows, state),
            strict, probe,
            before_expr=repr(state.value), busy_expr=busy, after_expr=after,
        )
    # Every state without a row of its own shares the wildcard cascade.
    wildcard = [r for r in rows if r.states is None]
    indent = "                " if specific else "            "
    if specific:
        out.append("            else:")
    _emit_chain(
        out, indent, event, wildcard, strict, probe,
        before_expr="state.value",
        busy_expr='state.transient or getattr(entry, "sw_pending", False)',
        after_expr=after,
    )


def _emit_handler(out: List[str], table: ProtocolTable, probe: bool) -> None:
    name = "handle_probe" if probe else "handle_fast"
    out.append(f"    def {name}(message):")
    if probe:
        # An attached bus without "transition" subscribers takes the
        # fast cascade — same per-message semantics as the interpreter.
        out.append("        obs = machine.obs")
        out.append("        if obs is None or not obs.on_transition:")
        out.append("            handle_fast(message)")
        out.append("            return")
        out.append("        emit = obs.transition")
    out.append("        kind = message.kind")
    out.append("        src = message.src")
    out.append("        payload = message.payload")
    out.append("        block = payload.block")
    if probe:
        out.append("        txn = payload.txn")
    for index, event in enumerate(table.events()):
        _emit_event(out, table, event, index == 0, probe)
    out.append("        else:")
    out.append("            unknown_event(kind)")
    out.append("")


def generate_source(table: ProtocolTable) -> str:
    """Deterministic Python source of the compiled engine for ``table``.

    The module defines ``bind(backend, node, TransitionApplied)`` which
    pre-binds the backend's guard/action methods and returns the
    ``(handle_fast, handle_probe)`` closure pair.
    """
    methods = sorted(
        {row.guard for event in table.events()
         for row in _live_rows(table, event) if row.guard is not None}
        | {row.action for event in table.events()
           for row in _live_rows(table, event)}
    )
    out: List[str] = [
        GENERATED_HEADER,
        f"# compiled dispatch for protocol table {table.name!r}",
    ]
    for state in _STATES:
        out.append(f"S_{state.name} = DirState.{state.name}")
    out.append("")
    out.append("")
    out.append("def bind(backend, node, TransitionApplied):")
    out.append("    entry_for = backend.entry_for")
    out.append("    entries_get = backend.entries.get")
    out.append("    no_rule = backend.no_rule")
    out.append("    unknown_event = backend.unknown_event")
    for name in methods:
        out.append(f"    m_{name} = backend.{name}")
    out.append("    machine = node.machine")
    out.append("    sim = machine.sim")
    out.append("    node_id = node.id")
    out.append("")
    _emit_handler(out, table, probe=False)
    _emit_handler(out, table, probe=True)
    out.append("    return handle_fast, handle_probe")
    out.append("")
    return "\n".join(out)


def generation_manifest(table: ProtocolTable) -> Dict[str, object]:
    """Structured claims about what :func:`generate_source` emits.

    The translation validator (:mod:`repro.verify.flow.transval`)
    derives its expectations from the table independently and
    cross-checks them against this manifest, so a drift between what
    the compiler *says* it emitted and what the table requires is a
    finding even before the source text is inspected.
    """
    events: Dict[str, object] = {}
    elided = []
    for event in table.events():
        policy = table.policies[event]
        rows = table.rows_for(event)
        events[event] = {
            "lookup": policy.lookup,
            "fallback": policy.fallback,
            "rows": [
                {
                    "guard": row.guard,
                    "action": row.action,
                    "states": (None if row.states is None
                               else [s.name for s in row.states]),
                    "next_state": row.next_state,
                }
                for row in _live_rows(table, event)
            ],
        }
        for index, row in enumerate(rows):
            if row.unreachable:
                elided.append({"event": event, "index": index,
                               "action": row.action})
    methods = sorted(
        {row.guard for event in table.events()
         for row in _live_rows(table, event) if row.guard is not None}
        | {row.action for event in table.events()
           for row in _live_rows(table, event)}
    )
    return {
        "table": table.name,
        "filename": generated_filename(table),
        "bound_methods": methods,
        "events": events,
        "elided_rows": elided,
    }


def ensure_builtin_tables_compiled() -> Tuple[ProtocolTable, ...]:
    """Compile both builtin tables into the generated-source registry.

    ``repro check`` calls this before linting or validating generated
    code, so the registry is populated even when no machine has been
    constructed in the process yet.
    """
    from repro.core.protocol.table import (HARDWARE_TABLE,
                                           SOFTWARE_ONLY_TABLE)

    tables = (HARDWARE_TABLE, SOFTWARE_ONLY_TABLE)
    for table in tables:
        _bind_function(table)
    return tables


# ----------------------------------------------------------------------
# Compilation and binding
# ----------------------------------------------------------------------

def _bind_function(table: ProtocolTable) -> Callable:
    source = generate_source(table)
    bind = _BIND_CACHE.get(source)
    if bind is not None:
        return bind
    filename = generated_filename(table)
    _GENERATED_SOURCES[filename] = source
    # Register with linecache so tracebacks through generated frames
    # show real source lines.
    linecache.cache[filename] = (
        len(source), None, source.splitlines(True), filename,
    )
    namespace: Dict[str, object] = {"DirState": DirState}
    code = compile(source, filename, "exec")
    exec(code, namespace)  # repro: allow-nondet(source is a pure function of the table and linted via the generated_sources registry)  # noqa: E501
    bind = namespace["bind"]  # type: ignore[assignment]
    _BIND_CACHE[source] = bind
    return bind


def bind_table(
    table: ProtocolTable, backend, node
) -> Tuple[Callable, Callable]:
    """Compile ``table`` (cached) and bind it to one engine's backend.

    Returns ``(handle_fast, handle_probe)``: the probe-off and probe-on
    message handlers, each a specialized closure over the backend's
    bound methods.
    """
    return _bind_function(table)(backend, node, TransitionApplied)
