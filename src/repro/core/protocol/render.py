"""Render protocol transition tables as markdown.

``docs/protocols.md`` embeds the hardware table rendered by this module
between marker comments; a documentation test re-renders it and diffs,
so the prose cannot drift from the executable table.  The renderer is
deliberately dumb — one markdown row per :class:`Transition`, in table
order, because the *order* is the priority encoding.
"""

from __future__ import annotations

import re

from repro.core.protocol.table import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    ProtocolTable,
    Transition,
)

__all__ = ["render_transition_table", "embed_rendered_tables"]

#: Marker slug -> table, for :func:`embed_rendered_tables`.
EMBEDDED_TABLES = {
    "hardware": HARDWARE_TABLE,
    "software-only": SOFTWARE_ONLY_TABLE,
}

_HEADER = ("| Event | State(s) | Guard | Action | Next | Notes |\n"
           "|---|---|---|---|---|---|\n")


def _states_cell(row: Transition) -> str:
    if row.states is None:
        return "any"
    return ", ".join(f"`{s.value}`" for s in row.states)


def _next_cell(row: Transition) -> str:
    if row.next_state is None:
        return "—"
    if row.next_state == "deferred":
        return "*deferred*"
    if row.next_state == "same":
        return "*unchanged*"
    return " / ".join(f"`{s}`" for s in row.next_state.split("|"))


def render_transition_table(table: ProtocolTable) -> str:
    """Markdown table for ``table``, one row per transition.

    Rows keep table order (first match wins); a dash guard means the
    row fires unconditionally once reached.
    """
    lines = [_HEADER]
    for row in table.transitions:
        guard = f"`{row.guard}`" if row.guard else "—"
        notes = row.description
        if row.unreachable:
            notes = f"*defensive; model-checked unreachable.* {notes}"
        lines.append(
            f"| `{row.event}` | {_states_cell(row)} | {guard} "
            f"| `{row.action}` | {_next_cell(row)} "
            f"| {notes} |\n"
        )
    return "".join(lines)


def embed_rendered_tables(text: str) -> str:
    """Refresh the rendered tables between marker comments in ``text``.

    Markers look like ``<!-- protocol-table:hardware:begin -->`` /
    ``...:end -->``; everything between a begin/end pair is replaced
    with the freshly rendered table for that slug
    (see :data:`EMBEDDED_TABLES`).  ``tools/render_protocol_docs.py``
    rewrites ``docs/protocols.md`` with this, and a documentation test
    asserts the file is a fixed point — so the docs cannot drift from
    the executable tables.
    """
    for slug, table in EMBEDDED_TABLES.items():
        begin = f"<!-- protocol-table:{slug}:begin -->"
        end = f"<!-- protocol-table:{slug}:end -->"
        pattern = re.compile(
            re.escape(begin) + r"\n.*?" + re.escape(end), re.DOTALL
        )
        replacement = (
            f"{begin}\n{render_transition_table(table)}{end}"
        )
        text, count = pattern.subn(lambda _m: replacement, text)
        if count != 1:
            raise ValueError(
                f"expected exactly one {begin!r}..{end!r} marker pair, "
                f"found {count}"
            )
    return text
