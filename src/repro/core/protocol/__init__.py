"""Declarative protocol core: tables, backends, engine, invariants.

Every point of the paper's protocol spectrum — full-map hardware,
n-pointer hardware with software extension, and the software-only
directory — runs through one table-driven
:class:`~repro.core.protocol.engine.HomeProtocolEngine`.  The engine
interprets a :class:`~repro.core.protocol.table.ProtocolTable` of
guarded transitions against a pluggable
:class:`~repro.core.protocol.backends.DirectoryBackend` that supplies
the guard predicates and action methods; the same mechanism feeds the
continuous invariant checker
(:class:`~repro.core.protocol.invariants.InvariantChecker`) and the
documentation renderer (:mod:`repro.core.protocol.render`).
"""

from repro.core.protocol.backends import (
    DIR_LATENCY,
    HW_INV_SPACING,
    MIGRATORY_THRESHOLD,
    DirectoryBackend,
    FullMapBackend,
    LimitedPointerBackend,
    SoftwareOnlyBackend,
)
from repro.core.protocol.engine import HomeProtocolEngine, build_home_engine
from repro.core.protocol.invariants import InvariantChecker, InvariantViolation
from repro.core.protocol.render import render_transition_table
from repro.core.protocol.table import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    EventPolicy,
    ProtocolTable,
    Transition,
    allowed_after,
)

__all__ = [
    "DIR_LATENCY",
    "HW_INV_SPACING",
    "MIGRATORY_THRESHOLD",
    "DirectoryBackend",
    "FullMapBackend",
    "LimitedPointerBackend",
    "SoftwareOnlyBackend",
    "HomeProtocolEngine",
    "build_home_engine",
    "InvariantChecker",
    "InvariantViolation",
    "render_transition_table",
    "HARDWARE_TABLE",
    "SOFTWARE_ONLY_TABLE",
    "EventPolicy",
    "ProtocolTable",
    "Transition",
    "allowed_after",
]
