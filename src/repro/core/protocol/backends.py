"""Directory backends: the state the protocol tables operate on.

A backend owns one node's directory entries and provides the guard
predicates and action mutators named by its
:class:`~repro.core.protocol.table.ProtocolTable`.  Three backends
cover the paper's spectrum:

- :class:`FullMapBackend` — ``DirnHNBS-``: n pointers, all hardware,
  never traps;
- :class:`LimitedPointerBackend` — ``DirnHkSNB`` (k >= 1) and the
  ``Dir1H1SB,LACK`` broadcast protocol: k hardware pointers, overflow
  and extended writes delegated to
  :class:`~repro.core.software.handlers.ProtocolSoftware`;
- :class:`SoftwareOnlyBackend` — ``DirnH0SNB,ACK`` (Section 2.3): one
  remote-access bit per block, every inter-node coherence event
  handled by a software trap; state transitions are applied atomically
  at message delivery while the outgoing messages are deferred behind
  the handler occupancy (``_defer_sends``).

Guards are side-effect-free predicates ``(entry, src, block) -> bool``;
actions ``(entry, src, block) -> None`` perform the sends, traps and
directory mutations.  The engine resolves both by name via ``getattr``
at construction time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, Optional, Set

from repro.common.errors import ProtocolStateError
from repro.common.types import DirState, TrapKind
from repro.core import messages as msg
from repro.core.directory import DirectoryEntry
from repro.core.protocol.table import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    ProtocolTable,
)
from repro.core.software.extdir import SoftwareDirEntry
from repro.core.software.handlers import ProtocolSoftware
from repro.core.software.interface import CoherenceInterface
from repro.core.spec import AckMode, ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.node import Node

__all__ = [
    "DIR_LATENCY",
    "HW_INV_SPACING",
    "MIGRATORY_THRESHOLD",
    "DirectoryBackend",
    "FullMapBackend",
    "LimitedPointerBackend",
    "SoftwareOnlyBackend",
]

#: Cycles for a hardware directory lookup/update before a reply leaves.
DIR_LATENCY = 2

#: Spacing between successive hardware-synthesised invalidations.
HW_INV_SPACING = 2

#: read-then-upgrade migrations observed before a block is marked
#: migratory
MIGRATORY_THRESHOLD = 2


class DirectoryBackend:
    """Base class: per-node directory state behind a protocol table.

    Subclasses set :attr:`TABLE`, own an ``entries`` dict, and provide
    the guard/action methods the table names.  ``unknown_event`` and
    ``no_rule`` supply the backend-specific error surface the engine
    falls back to.
    """

    TABLE: ClassVar[ProtocolTable]

    def __init__(self, node: "Node", spec: ProtocolSpec) -> None:
        self.node = node
        self.spec = spec

    def unknown_event(self, kind: str) -> None:
        """A message kind the table has no policy for."""
        raise ProtocolStateError(f"home received {kind}")

    def no_rule(self, event: str, entry, src: int, block: int) -> None:
        """No row matched under an ``error`` fallback policy."""
        raise ProtocolStateError(
            f"no transition for {event} in state "
            f"{None if entry is None else entry.state}"
        )


class LimitedPointerBackend(DirectoryBackend):
    """Hardware directory + software extension for one node's memory."""

    TABLE = HARDWARE_TABLE

    def __init__(self, node: "Node", spec: ProtocolSpec,
                 interface: Optional[CoherenceInterface] = None) -> None:
        super().__init__(node, spec)
        self.n_nodes = node.machine.params.n_nodes
        self.mem_latency = node.machine.params.mem_latency
        self.entries: Dict[int, DirectoryEntry] = {}
        self.software: Optional[ProtocolSoftware] = None
        if spec.needs_software:
            if interface is None:
                raise ProtocolStateError("software protocol needs an interface")
            self.software = ProtocolSoftware(self, interface)

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------

    def entry_for(self, block: int) -> DirectoryEntry:
        """The directory entry for ``block``, created on first touch."""
        entry = self.entries.get(block)
        if entry is None:
            # Alewife reconfigures coherence protocols block-by-block
            # (Section 3.1); the machine may hold a per-block override.
            spec = self.node.machine.protocol_for_block(block)
            entry = DirectoryEntry(
                capacity=0 if spec.full_map else spec.hw_pointers,
                block=block,
                full_map=spec.full_map,
                home=self.node.id,
                use_local_bit=spec.local_bit and not spec.full_map,
                sw_broadcast=spec.sw_broadcast,
            )
            self.entries[block] = entry
        return entry

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------

    def busy(self, entry: DirectoryEntry, src: int, block: int) -> bool:
        """Transaction in flight, or a software handler queued."""
        return not entry.idle

    def reader_fits(self, entry: DirectoryEntry, src: int,
                    block: int) -> bool:
        """The reader is already recorded or a pointer is free."""
        return entry.has_pointer(src) or entry.can_record(src)

    def broadcast_mode(self, entry: DirectoryEntry, src: int,
                       block: int) -> bool:
        """Dir1..B: reads past the pointer never trap."""
        return entry.sw_broadcast

    def from_owner(self, entry: DirectoryEntry, src: int,
                   block: int) -> bool:
        """The message comes from the block's exclusive owner."""
        return entry.owner == src

    def migratory_block(self, entry: DirectoryEntry, src: int,
                        block: int) -> bool:
        """The block was detected migratory (Section 7)."""
        return entry.migratory

    def extended_broadcast(self, entry: DirectoryEntry, src: int,
                           block: int) -> bool:
        """Extended under a broadcast protocol."""
        return entry.extended and entry.sw_broadcast

    def extended_dir(self, entry: DirectoryEntry, src: int,
                     block: int) -> bool:
        """The directory has been extended into software."""
        return entry.extended

    def sole_sharer(self, entry: DirectoryEntry, src: int,
                    block: int) -> bool:
        """No tracked copies other than the writer's."""
        targets = entry.sharer_set()
        targets.discard(src)
        return not targets

    def seq_invalidation(self, entry: DirectoryEntry, src: int,
                         block: int) -> bool:
        """A sequential-invalidation chain is in progress."""
        return entry.sw_write and entry.seq_targets is not None

    def sw_counted_acks(self, entry: DirectoryEntry, src: int,
                        block: int) -> bool:
        """,ACK protocol after a software write: software counts."""
        return entry.sw_write and self.spec.ack_mode is AckMode.SOFTWARE

    def acks_remaining(self, entry: DirectoryEntry, src: int,
                       block: int) -> bool:
        """More than one acknowledgement still outstanding."""
        return entry.ack_count > 1

    def final_lack(self, entry: DirectoryEntry, src: int,
                   block: int) -> bool:
        """Last ack of a software write under a ,LACK protocol."""
        return (entry.ack_count == 1 and entry.sw_write
                and self.spec.ack_mode is AckMode.LAST_SOFTWARE)

    def final_ack(self, entry: DirectoryEntry, src: int,
                  block: int) -> bool:
        """Exactly one acknowledgement outstanding."""
        return entry.ack_count == 1

    def from_pending_owner(self, entry: DirectoryEntry, src: int,
                           block: int) -> bool:
        """The message comes from the owner a fetch is waiting on."""
        return entry.pending_owner == src

    def tracked_sharer(self, entry: DirectoryEntry, src: int,
                       block: int) -> bool:
        """The sender holds a hardware pointer."""
        return entry.has_pointer(src)

    def untracked_copies(self, entry: DirectoryEntry, src: int,
                         block: int) -> bool:
        """Dir1..B: untracked (broadcast-flagged) copies outstanding."""
        return entry.untracked > 0

    # ------------------------------------------------------------------
    # Read actions
    # ------------------------------------------------------------------

    def read_busy(self, entry: DirectoryEntry, src: int,
                  block: int) -> None:
        """BUSY reply; a reader racing a migratory handoff reverts the
        migratory flag after ``MIGRATORY_THRESHOLD`` conflicts."""
        if (entry.migratory
                and entry.state is DirState.WRITE_TRANSACTION
                and entry.pending_owner is not None):
            # A second reader is racing a migratory handoff: the
            # block is being read-shared after all.  Revert.
            entry.migratory_conflicts += 1
            if entry.migratory_conflicts >= MIGRATORY_THRESHOLD:
                entry.migratory = False
                entry.migratory_evidence = 0
                entry.migratory_conflicts = 0
        self._send_busy(src, block)

    def read_absent(self, entry: DirectoryEntry, src: int,
                    block: int) -> None:
        """First copy: record the reader and grant."""
        entry.state = DirState.READ_ONLY
        entry.record(src)
        self._grant(msg.RDATA, src, block)

    def read_record(self, entry: DirectoryEntry, src: int,
                    block: int) -> None:
        """Record the reader in hardware and grant."""
        entry.record(src)
        self._grant(msg.RDATA, src, block)

    def read_untracked(self, entry: DirectoryEntry, src: int,
                       block: int) -> None:
        """Dir1..B overflow: stop tracking, remember that a broadcast
        will be needed, and grant without trapping.  The idle ack
        counter counts the untracked copies so CICO check-ins can
        restore exactness."""
        entry.extended = True
        entry.untracked += 1
        self._grant(msg.RDATA, src, block)

    def read_overflow(self, entry: DirectoryEntry, src: int,
                      block: int) -> None:
        """Pointer overflow: trap the software read handler."""
        assert self.software is not None
        self.software.on_read_overflow(entry, src)

    def read_fetch_exclusive(self, entry: DirectoryEntry, src: int,
                             block: int) -> None:
        """Migratory data (Section 7): hand the reader the block
        exclusively, saving its upgrade transaction."""
        self._start_fetch(entry, src, entry.owner, is_read=False)

    def read_fetch_shared(self, entry: DirectoryEntry, src: int,
                          block: int) -> None:
        """Recall the dirty copy for shared access."""
        self._start_fetch(entry, src, entry.owner, is_read=True)

    # ------------------------------------------------------------------
    # Write actions
    # ------------------------------------------------------------------

    def write_absent(self, entry: DirectoryEntry, src: int,
                     block: int) -> None:
        """No copies: grant exclusive."""
        self.complete_write(entry, src)

    def write_broadcast(self, entry: DirectoryEntry, src: int,
                        block: int) -> None:
        """Dir1..B: trap software to broadcast the invalidations."""
        assert self.software is not None
        self.software.on_write_broadcast(entry, src)

    def write_extended(self, entry: DirectoryEntry, src: int,
                       block: int) -> None:
        """Extended directory: trap the software write handler."""
        assert self.software is not None
        self.software.on_write_extended(entry, src)

    def write_sole_sharer(self, entry: DirectoryEntry, src: int,
                          block: int) -> None:
        """Writer is the only tracked sharer: upgrade in place."""
        if self.node.machine.migratory_detection:
            self._observe_upgrade(entry, src)
        self.complete_write(entry, src)

    def write_invalidate(self, entry: DirectoryEntry, src: int,
                         block: int) -> None:
        """Hardware-directed invalidation of the tracked sharers."""
        if self.node.machine.migratory_detection:
            self._observe_upgrade(entry, src)
        targets = entry.sharer_set()
        targets.discard(src)
        self._hw_invalidate(entry, src, targets)

    def write_fetch_exclusive(self, entry: DirectoryEntry, src: int,
                              block: int) -> None:
        """Invalidate the owner; its data completes the write."""
        self._start_fetch(entry, src, entry.owner, is_read=False)

    # ------------------------------------------------------------------
    # Acknowledgement actions
    # ------------------------------------------------------------------

    def ack_sequential(self, entry: DirectoryEntry, src: int,
                       block: int) -> None:
        """Sequential invalidation: trap to launch the next INV."""
        assert self.software is not None
        self.software.on_ack_sequential(entry)

    def ack_software(self, entry: DirectoryEntry, src: int,
                     block: int) -> None:
        """,ACK protocol: the ack traps; software counts."""
        assert self.software is not None
        self.software.on_ack_software(entry)

    def ack_countdown(self, entry: DirectoryEntry, src: int,
                      block: int) -> None:
        """Hardware counts down."""
        entry.ack_count -= 1

    def ack_last_trap(self, entry: DirectoryEntry, src: int,
                      block: int) -> None:
        """,LACK protocol: the last ack traps software, which sends
        the data."""
        entry.ack_count -= 1
        if entry.pending_requester is None:
            raise ProtocolStateError(f"no pending requester for {block}")
        assert self.software is not None
        self.software.on_last_ack(entry)

    def ack_complete(self, entry: DirectoryEntry, src: int,
                     block: int) -> None:
        """Last ack: hardware grants exclusive."""
        entry.ack_count -= 1
        requester = entry.pending_requester
        if requester is None:
            raise ProtocolStateError(f"no pending requester for {block}")
        self.complete_write(entry, requester)

    def ack_underflow(self, entry: DirectoryEntry, src: int,
                      block: int) -> None:
        """More acknowledgements than invalidations: protocol error."""
        raise ProtocolStateError(f"ack underflow for block {block}")

    # ------------------------------------------------------------------
    # Fetch-response and eviction actions
    # ------------------------------------------------------------------

    def fetch_complete_read(self, entry: DirectoryEntry, src: int,
                            block: int) -> None:
        """Owner's data arrived for a read fetch."""
        self._finish_fetch(entry, src)

    def fetch_complete_write(self, entry: DirectoryEntry, src: int,
                             block: int) -> None:
        """Owner's data arrived for a write fetch."""
        self._finish_fetch(entry, src)

    def writeback_release(self, entry: DirectoryEntry, src: int,
                          block: int) -> None:
        """The owner wrote its dirty copy back: the entry empties."""
        entry.reset_to_absent()

    def writeback_completes_read(self, entry: DirectoryEntry, src: int,
                                 block: int) -> None:
        """The write-back crossed our fetch in flight; it *is* the
        fetch response, except the owner no longer holds a copy."""
        entry.fetch_is_inv = True
        self._finish_fetch(entry, src)

    def writeback_completes_write(self, entry: DirectoryEntry, src: int,
                                  block: int) -> None:
        """As :meth:`writeback_completes_read`, completing a write."""
        entry.fetch_is_inv = True
        self._finish_fetch(entry, src)

    # ------------------------------------------------------------------
    # CICO check-in actions
    # ------------------------------------------------------------------

    def relinq_drop(self, entry: DirectoryEntry, src: int,
                    block: int) -> None:
        """Drop the sharer's hardware pointer."""
        entry.drop(src)
        self._settle_relinquish(entry)

    def relinq_checkin(self, entry: DirectoryEntry, src: int,
                       block: int) -> None:
        """Count an untracked (broadcast-flagged) copy back in."""
        entry.untracked -= 1
        if entry.untracked == 0 and entry.sw_broadcast:
            # Every untracked copy was checked back in: the pointer
            # is exact again and writes need no broadcast.
            entry.extended = False
        self._settle_relinquish(entry)

    def relinq_stale(self, entry: DirectoryEntry, src: int,
                     block: int) -> None:
        """A pointer held in the software extension stays — its stale
        entry is harmless and the next software write skips absent
        copies via the normal acknowledge-anything rule."""
        self._settle_relinquish(entry)

    def _settle_relinquish(self, entry: DirectoryEntry) -> None:
        # A pending software handler (read overflow) still refers to
        # this entry; resetting it now would let the handler complete
        # into an ABSENT entry and record a sharer the directory no
        # longer admits losing.  Settle only when the entry is idle —
        # the handler's own completion re-settles the bookkeeping.
        if not entry.extended and not entry.sharer_set() and entry.idle:
            entry.reset_to_absent()

    # ------------------------------------------------------------------
    # Fallbacks
    # ------------------------------------------------------------------

    def unknown_event(self, kind: str) -> None:
        raise ProtocolStateError(f"home received {kind}")

    def no_rule(self, event: str, entry, src: int, block: int) -> None:
        if event == msg.ACK:
            raise ProtocolStateError(
                f"stray ack from {src} for block {block}"
            )
        if event == msg.FETCH_DATA:
            raise ProtocolStateError(f"stray fetch data for block {block}")
        if event == msg.EVICT_WB:
            if entry is None:
                raise ProtocolStateError(
                    f"write-back for untracked block {block}"
                )
            raise ProtocolStateError(
                f"unexpected write-back from {src} for block {block} "
                f"in state {entry.state}"
            )
        if event == msg.RREQ:  # pragma: no cover - caught by the busy row
            raise ProtocolStateError(f"read in state {entry.state}")
        raise ProtocolStateError(  # pragma: no cover
            f"write in state {entry.state}"
        )

    # ------------------------------------------------------------------
    # Helpers shared with the software handlers
    # ------------------------------------------------------------------

    def _observe_upgrade(self, entry: DirectoryEntry, requester: int) -> None:
        """Migratory detection: a read followed by an upgrade from the
        sole sharer, with a *different* previous writer, is migration
        evidence; genuine read-sharing resets it."""
        others = entry.sharer_set() - {requester}
        migrationlike = (not others
                         or others == {entry.last_writer})
        if migrationlike:
            if entry.last_writer is not None \
                    and entry.last_writer != requester:
                entry.migratory_evidence += 1
                entry.migratory_conflicts = 0
                if entry.migratory_evidence >= MIGRATORY_THRESHOLD:
                    entry.migratory = True
        elif len(others) >= 2:
            entry.migratory_evidence = 0
            entry.migratory = False

    def _hw_invalidate(self, entry: DirectoryEntry, requester: int,
                       targets: Set[int]) -> None:
        for index, target in enumerate(sorted(targets)):
            self.node.send_protocol(
                msg.INV, target, entry.block, requester=requester,
                extra_delay=DIR_LATENCY + index * HW_INV_SPACING,
            )
        self.node.stats.invalidations_hw += len(targets)
        entry.state = DirState.WRITE_TRANSACTION
        entry.pending_requester = requester
        entry.ack_count = len(targets)
        entry.sw_write = False

    def _start_fetch(self, entry: DirectoryEntry, requester: int,
                     owner: int, is_read: bool) -> None:
        """Recall a dirty copy from its owner.

        A read normally downgrades the owner (FETCH_RD) so both nodes
        end up with shared copies; when the directory cannot hold
        pointers for both, the owner is invalidated instead.
        """
        fetch_inv = not is_read
        if is_read and not entry.full_map:
            slots_needed = sum(
                1
                for node in (owner, requester)
                if not (entry.use_local_bit and node == entry.home)
            )
            if slots_needed > entry.capacity:
                fetch_inv = True
        entry.state = (DirState.READ_TRANSACTION if is_read
                       else DirState.WRITE_TRANSACTION)
        entry.pending_requester = requester
        entry.pending_owner = owner
        entry.pending_is_read = is_read
        entry.fetch_is_inv = fetch_inv
        entry.ack_count = 0
        entry.sw_write = False
        kind = msg.FETCH_INV if fetch_inv else msg.FETCH_RD
        self.node.send_protocol(kind, owner, entry.block,
                                requester=requester, extra_delay=DIR_LATENCY)

    def _finish_fetch(self, entry: DirectoryEntry, owner: int) -> None:
        if entry.pending_owner != owner:
            raise ProtocolStateError(
                f"fetch response from {owner}, expected {entry.pending_owner}"
            )
        requester = entry.pending_requester
        if requester is None:
            raise ProtocolStateError("fetch completion lost its requester")
        if entry.pending_is_read:
            entry.pointers.clear()
            entry.local_bit = False
            entry.state = DirState.READ_ONLY
            entry.pending_requester = None
            entry.pending_owner = None
            if not entry.fetch_is_inv:
                entry.record(owner)
            entry.record(requester)
            self._grant(msg.RDATA, requester, entry.block)
        else:
            self.complete_write(entry, requester)

    def complete_write(self, entry: DirectoryEntry, requester: int,
                       via_software: bool = False) -> None:
        """Grant exclusive ownership of ``entry`` to ``requester``."""
        entry.last_writer = requester
        entry.reset_to_exclusive(requester)
        entry.pending_owner = None
        delay = 0 if via_software else self.mem_latency
        self.node.send_protocol(msg.WDATA, requester, entry.block,
                                requester=requester, extra_delay=delay)
        self.node.machine.note_grant(entry.block, requester, write=True)

    def note_grant(self, block: int, requester: int) -> None:
        """Record a read grant with the machine (worker-set tracking)."""
        self.node.machine.note_grant(block, requester)

    def _grant(self, kind: str, requester: int, block: int) -> None:
        self.node.send_protocol(kind, requester, block, requester=requester,
                                extra_delay=self.mem_latency)
        self.note_grant(block, requester)

    def _send_busy(self, requester: int, block: int) -> None:
        self.node.stats.busy_replies += 1
        self.node.send_protocol(msg.BUSY, requester, block,
                                extra_delay=DIR_LATENCY)

    def reply_busy(self, entry: DirectoryEntry, src: int,
                   block: int) -> None:
        """Plain BUSY reply (transaction in flight, retry later)."""
        self._send_busy(src, block)


class FullMapBackend(LimitedPointerBackend):
    """``DirnHNBS-``: one pointer per node, entirely in hardware.

    Shares the hardware table and machinery with
    :class:`LimitedPointerBackend`; the overflow/extension rows are
    unreachable because a full-map entry always has a pointer free.
    """

    def __init__(self, node: "Node", spec: ProtocolSpec,
                 interface: Optional[CoherenceInterface] = None) -> None:
        super().__init__(node, spec, interface)


class SoftwareOnlyBackend(DirectoryBackend):
    """``DirnH0SNB,ACK``: all inter-node coherence handled in software.

    One extra bit per block (the *remote-access* bit) lets purely local
    data run at uniprocessor speed; the first inter-node request sets
    the bit and flushes the home node's cached copy, after which every
    access — including the home's own — is handled by the extension
    software.

    State transitions are applied atomically when a message is
    delivered (several handlers can be queued on the node's software
    context at once, so deferring mutations would let them clobber each
    other); the trap models the handler's processor occupancy and
    delays the *outgoing* messages until the handler would have
    finished composing them.
    """

    TABLE = SOFTWARE_ONLY_TABLE

    def __init__(self, node: "Node", spec: ProtocolSpec,
                 interface: CoherenceInterface) -> None:
        super().__init__(node, spec)
        self.iface = interface
        self.mem_latency = node.machine.params.mem_latency
        self.entries: Dict[int, SoftwareDirEntry] = {}
        #: invalidations sent to flush the home's own copy, with no
        #: write transaction waiting on them
        self._flush_acks: Dict[int, int] = {}

    def entry_for(self, block: int) -> SoftwareDirEntry:
        """The software directory entry for ``block``."""
        entry = self.entries.get(block)
        if entry is None:
            entry = SoftwareDirEntry(block)
            self.entries[block] = entry
        return entry

    def _defer_sends(self, kind: TrapKind, cost, sends, pointers: int = 0,
                     grants=()) -> None:
        """Charge a handler and launch ``sends`` when it completes."""
        def complete() -> None:
            for index, (mkind, dst, block, requester) in enumerate(sends):
                self.iface.transmit(mkind, dst, block,
                                    requester=requester, index=index)
            for grant in grants:
                self.node.machine.note_grant(*grant)
        self.iface.run_handler(kind, cost, complete, pointers=pointers)

    def _trap_kind(self, src: int) -> TrapKind:
        return (TrapKind.LOCAL_FAULT if src == self.node.id
                else TrapKind.REMOTE_REQUEST)

    def _note_remote(self, entry: SoftwareDirEntry, src: int) -> None:
        if src != self.node.id:
            entry.remote_bit = True

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------

    def local_private(self, entry: SoftwareDirEntry, src: int,
                      block: int) -> bool:
        """Home's own access with the remote-access bit still clear."""
        return src == self.node.id and not entry.remote_bit

    def from_owner(self, entry: SoftwareDirEntry, src: int,
                   block: int) -> bool:
        """The message comes from the recorded owner."""
        return entry.owner == src

    def no_other_sharers(self, entry: SoftwareDirEntry, src: int,
                         block: int) -> bool:
        """No copies besides (possibly) the writer's own."""
        targets = set(entry.sharers)
        targets.discard(src)
        return not targets

    def acks_remaining(self, entry: SoftwareDirEntry, src: int,
                       block: int) -> bool:
        """More than one acknowledgement still outstanding."""
        return entry.sw_ack_count > 1

    def final_ack(self, entry: SoftwareDirEntry, src: int,
                  block: int) -> bool:
        """Exactly one acknowledgement outstanding."""
        return entry.sw_ack_count == 1

    def flush_pending(self, entry, src: int, block: int) -> bool:
        """A home-copy flush invalidation awaits this acknowledgement.

        Deliberately ignores ``entry`` (which may be ``None``): flush
        acks are tracked per block, outside any write transaction."""
        return self._flush_acks.get(block, 0) > 0

    def private_writeback(self, entry: SoftwareDirEntry, src: int,
                          block: int) -> bool:
        """The home writes back its own still-private copy."""
        return (entry.owner == src and src == self.node.id
                and not entry.remote_bit)

    # ------------------------------------------------------------------
    # Request actions
    # ------------------------------------------------------------------

    def local_miss_busy(self, entry: SoftwareDirEntry, src: int,
                        block: int) -> None:
        """Only the home holds copies while the bit is clear; a miss on
        an owned block means the dirty copy's write-back is in flight.
        Retry until it lands — no software involved."""
        self.node.stats.busy_replies += 1
        self.node.send_protocol(msg.BUSY, self.node.id, block,
                                extra_delay=DIR_LATENCY)

    def local_read_grant(self, entry: SoftwareDirEntry, src: int,
                         block: int) -> None:
        """Uniprocessor fast path: no software involved (Section 2.3)."""
        home = self.node.id
        entry.state = DirState.READ_ONLY
        entry.sharers.add(home)
        self.node.send_protocol(msg.RDATA, home, block, requester=home,
                                extra_delay=self.mem_latency)
        self.node.machine.note_grant(block, home, write=False)

    def local_write_grant(self, entry: SoftwareDirEntry, src: int,
                          block: int) -> None:
        """Uniprocessor fast path for a write."""
        home = self.node.id
        entry.state = DirState.READ_WRITE
        entry.owner = home
        entry.sharers = {home}
        self.node.send_protocol(msg.WDATA, home, block, requester=home,
                                extra_delay=self.mem_latency)
        self.node.machine.note_grant(block, home, write=True)

    def busy_trap(self, entry: SoftwareDirEntry, src: int,
                  block: int) -> None:
        """Software is mid-transaction on this block; even the busy
        reply costs a handler dispatch under the software-only
        directory."""
        self.node.stats.busy_replies += 1
        self._defer_sends(self._trap_kind(src), self.iface.cost_model.ack(),
                          [(msg.BUSY, src, block, None)])

    def owner_busy_trap(self, entry: SoftwareDirEntry, src: int,
                        block: int) -> None:
        """The owner's own request races its write-back: BUSY, via a
        handler."""
        self._note_remote(entry, src)
        self.node.stats.busy_replies += 1
        self._defer_sends(self._trap_kind(src), self.iface.cost_model.ack(),
                          [(msg.BUSY, src, block, None)])

    def read_fetch(self, entry: SoftwareDirEntry, src: int,
                   block: int) -> None:
        """Fetch the dirty copy for a reader."""
        self._note_remote(entry, src)
        owner = entry.owner
        assert owner is not None
        self._start_fetch(entry, src, owner, self._trap_kind(src),
                          is_read=True)

    def write_fetch(self, entry: SoftwareDirEntry, src: int,
                    block: int) -> None:
        """Fetch (and invalidate) the dirty copy for a writer."""
        self._note_remote(entry, src)
        owner = entry.owner
        assert owner is not None
        self._start_fetch(entry, src, owner, self._trap_kind(src),
                          is_read=False)

    def read_grant(self, entry: SoftwareDirEntry, src: int,
                   block: int) -> None:
        """Record the reader and send the data from the handler."""
        self._note_remote(entry, src)
        trap_kind = self._trap_kind(src)
        sends = []
        if src != self.node.id and self.node.id in entry.sharers:
            # Flush the home's own copy (Section 2.3): once the
            # remote-access bit is set, local accesses must trap too.
            sends.append((msg.INV, self.node.id, block, None))
            self.node.stats.invalidations_sw += 1
            self._flush_acks[block] = self._flush_acks.get(block, 0) + 1
            entry.sharers.discard(self.node.id)
        entry.state = DirState.READ_ONLY
        entry.sharers.add(src)
        sends.append((msg.RDATA, src, block, src))
        small = self.iface.is_small_set(len(entry.sharers))
        cost = self.iface.cost_model.sw_request("read", 1, small)
        self._defer_sends(trap_kind, cost, sends, pointers=1,
                          grants=[(block, src)])

    def write_grant(self, entry: SoftwareDirEntry, src: int,
                    block: int) -> None:
        """No other copies: grant exclusive from the handler."""
        self._note_remote(entry, src)
        trap_kind = self._trap_kind(src)
        targets = set(entry.sharers)
        targets.discard(src)
        small = self.iface.is_small_set(len(targets))
        cost = self.iface.cost_model.sw_request("write", len(targets), small)
        entry.state = DirState.READ_WRITE
        entry.owner = src
        entry.sharers = {src}
        self._defer_sends(trap_kind, cost,
                          [(msg.WDATA, src, block, src)],
                          grants=[(block, src, True)])

    def write_invalidate(self, entry: SoftwareDirEntry, src: int,
                         block: int) -> None:
        """Software sends one INV per sharer and counts the acks."""
        self._note_remote(entry, src)
        trap_kind = self._trap_kind(src)
        targets = set(entry.sharers)
        targets.discard(src)
        small = self.iface.is_small_set(len(targets))
        cost = self.iface.cost_model.sw_request("write", len(targets), small)
        # A pending home-copy flush (read_grant) is absorbed into this
        # transaction: its INV is already in flight and its ACK is
        # indistinguishable from the ones armed here, so counting it
        # keeps the exclusive grant behind *every* outstanding
        # invalidation instead of completing one ack early.
        absorbed = self._flush_acks.pop(block, 0)
        entry.state = DirState.WRITE_TRANSACTION
        entry.pending_requester = src
        entry.sw_ack_count = len(targets) + absorbed
        entry.sharers = set()
        sends = [(msg.INV, target, block, src)
                 for target in sorted(targets)]
        self.node.stats.invalidations_sw += len(targets)
        self._defer_sends(trap_kind, cost, sends, pointers=len(targets))

    def _start_fetch(self, entry: SoftwareDirEntry, requester: int,
                     owner: int, trap_kind: TrapKind, is_read: bool) -> None:
        # The software-only directory always invalidates the owner (the
        # flush behaviour of Section 2.3), so after the fetch completes
        # only the requester holds a copy.
        entry.state = (DirState.READ_TRANSACTION if is_read
                       else DirState.WRITE_TRANSACTION)
        entry.pending_requester = requester
        entry.owner = owner
        entry.sw_ack_count = 0
        cost = self.iface.cost_model.sw_request(
            "read" if is_read else "write", 1)
        self._defer_sends(trap_kind, cost,
                          [(msg.FETCH_INV, owner, entry.block, requester)],
                          pointers=1)

    # ------------------------------------------------------------------
    # Response actions (every one of them traps)
    # ------------------------------------------------------------------

    def ack_countdown(self, entry: SoftwareDirEntry, src: int,
                      block: int) -> None:
        """Software counts down; each ack costs a trap."""
        entry.sw_ack_count -= 1
        self._defer_sends(TrapKind.ACK_SOFTWARE,
                          self.iface.cost_model.ack(), [])

    def ack_complete(self, entry: SoftwareDirEntry, src: int,
                     block: int) -> None:
        """Last ack: software grants exclusive."""
        entry.sw_ack_count -= 1
        requester = entry.pending_requester
        assert requester is not None
        entry.state = DirState.READ_WRITE
        entry.owner = requester
        entry.sharers = {requester}
        entry.pending_requester = None
        self._defer_sends(TrapKind.ACK_LAST,
                          self.iface.cost_model.last_ack(),
                          [(msg.WDATA, requester, block, requester)],
                          grants=[(block, requester, True)])

    def flush_ack(self, entry, src: int, block: int) -> None:
        """Acknowledgement of a home-copy flush: pure bookkeeping."""
        flushes = self._flush_acks.get(block, 0)
        if flushes == 1:
            del self._flush_acks[block]
        else:
            self._flush_acks[block] = flushes - 1
        self._defer_sends(TrapKind.ACK_SOFTWARE,
                          self.iface.cost_model.ack(), [])

    def fetch_complete_read(self, entry: SoftwareDirEntry, src: int,
                            block: int) -> None:
        """Owner's data for a read fetch: only the requester holds a
        copy afterwards."""
        requester = entry.pending_requester
        assert requester is not None
        cost = self.iface.cost_model.last_ack()
        entry.state = DirState.READ_ONLY
        entry.owner = None
        entry.sharers = {requester}
        entry.pending_requester = None
        self._defer_sends(TrapKind.REMOTE_REQUEST, cost,
                          [(msg.RDATA, requester, block, requester)],
                          grants=[(block, requester)])

    def fetch_complete_write(self, entry: SoftwareDirEntry, src: int,
                             block: int) -> None:
        """Owner's data for a write fetch: exclusive grant."""
        requester = entry.pending_requester
        assert requester is not None
        cost = self.iface.cost_model.last_ack()
        entry.state = DirState.READ_WRITE
        entry.owner = requester
        entry.sharers = {requester}
        entry.pending_requester = None
        self._defer_sends(TrapKind.REMOTE_REQUEST, cost,
                          [(msg.WDATA, requester, block, requester)],
                          grants=[(block, requester, True)])

    def writeback_private(self, entry: SoftwareDirEntry, src: int,
                          block: int) -> None:
        """Still private: no trap, uniprocessor behaviour."""
        entry.state = DirState.ABSENT
        entry.owner = None
        entry.sharers = set()

    def writeback_trap(self, entry: SoftwareDirEntry, src: int,
                       block: int) -> None:
        """The owner wrote back; the bookkeeping traps."""
        entry.state = DirState.ABSENT
        entry.owner = None
        entry.sharers = set()
        self._defer_sends(TrapKind.REMOTE_REQUEST,
                          self.iface.cost_model.ack(), [])

    def relinq_shared(self, entry: SoftwareDirEntry, src: int,
                      block: int) -> None:
        """CICO check-in of a shared copy."""
        entry.sharers.discard(src)
        if not entry.sharers:
            entry.state = DirState.ABSENT
        self._defer_sends(TrapKind.REMOTE_REQUEST,
                          self.iface.cost_model.ack(), [])

    def relinq_ack(self, entry: SoftwareDirEntry, src: int,
                   block: int) -> None:
        """Stale check-in: acknowledge via a handler, no state change."""
        self._defer_sends(TrapKind.REMOTE_REQUEST,
                          self.iface.cost_model.ack(), [])

    # ------------------------------------------------------------------
    # Fallbacks
    # ------------------------------------------------------------------

    def unknown_event(self, kind: str) -> None:
        raise ProtocolStateError(f"H0 home received {kind}")

    def no_rule(self, event: str, entry, src: int, block: int) -> None:
        if event == msg.ACK:
            raise ProtocolStateError(
                f"stray H0 ack from {src} for block {block}"
            )
        if event == msg.FETCH_DATA:
            raise ProtocolStateError(
                f"stray H0 fetch data for block {block}"
            )
        if event == msg.EVICT_WB:
            if entry is None:
                raise ProtocolStateError(
                    f"H0 write-back for untracked {block}"
                )
            raise ProtocolStateError(
                f"unexpected H0 write-back from {src} "
                f"in state {entry.state}"
            )
        raise ProtocolStateError(  # pragma: no cover - requests always match
            f"H0 home cannot serve {event} in state "
            f"{None if entry is None else entry.state}"
        )
