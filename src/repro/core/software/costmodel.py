"""Cycle-cost model for the protocol extension software.

The paper measures two implementations of the extension software on
Sparcle (Section 4): a *flexible* C implementation built on the flexible
coherence interface, and a hand-tuned *assembly* implementation of
``DirnH5SNB``.  Table 2 decomposes a median read and write handler (8
readers, 1 writer per block) into activities; Table 1 reports the average
latencies.

This module reproduces that decomposition as an explicit cost model.
Fixed activity costs are taken directly from Table 2.  The two activities
that scale with the amount of directory work — storing pointers into the
extended directory and looking up/transmitting invalidations — are split
into a base plus a per-pointer (resp. per-invalidation) marginal term,
fitted so the 8-reader medians reproduce Table 2 exactly:

- C store-pointers: ``35 + 40/ptr``  (5 pointers emptied -> 235)
- asm store-pointers: ``14 + 12/ptr`` (-> 74)
- C write store: ``27 + 9/inv`` (8 invalidations -> 99)
- asm write store: ``13 + 4/inv`` (-> 45)
- C invalidate lookup+transmit: ``347 + 9/inv`` (-> 419); the small
  per-invalidation marginal matches Table 1's shallow growth from 8 to
  16 readers (726 -> 797 cycles).
- asm invalidate lookup+transmit: ``203 + 6/inv`` (-> 251)

The memory-usage optimization for worker sets of four or fewer
(Section 5, implemented by the 0/1-pointer protocols) stores pointers in
a small inline structure, shrinking the memory-management and hash-table
administration costs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.common.errors import ConfigurationError

FLEXIBLE = "flexible"
OPTIMIZED = "optimized"

#: Version of the handler cost model.  Bump whenever any fitted cost
#: below changes: the on-disk experiment result cache (repro.exec.cache)
#: mixes this into its keys, so stale cached RunStats are never reused
#: across cost-model revisions.
COST_MODEL_VERSION = 1

#: Activity names, in Table 2's row order.
TABLE2_ACTIVITIES = (
    "trap dispatch",
    "system message dispatch",
    "protocol-specific dispatch",
    "decode and modify hardware directory",
    "save state for function calls",
    "memory management",
    "hash table administration",
    "store pointers into extended directory",
    "invalidation lookup and transmit",
    "support for non-Alewife protocols",
    "trap return",
)


@dataclasses.dataclass(frozen=True)
class HandlerCost:
    """Latency (cycles) and per-activity breakdown of one handler run."""

    latency: int
    breakdown: Dict[str, int]
    #: network-injection spacing between successive software-transmitted
    #: messages (cycles per message)
    per_message_spacing: int = 0


def _cost(breakdown: Dict[str, int], spacing: int = 0) -> HandlerCost:
    clean = {k: v for k, v in breakdown.items() if v}
    return HandlerCost(sum(clean.values()), clean, spacing)


class CostModel:
    """Handler latencies for one software implementation."""

    def __init__(self, implementation: str = FLEXIBLE,
                 smallset_opt: bool = False) -> None:
        if implementation not in (FLEXIBLE, OPTIMIZED):
            raise ConfigurationError(
                f"unknown software implementation {implementation!r}"
            )
        self.implementation = implementation
        self.smallset_opt = smallset_opt
        self._flexible = implementation == FLEXIBLE

    # ------------------------------------------------------------------
    # Table 2 fixed activities
    # ------------------------------------------------------------------

    def _fixed(self, request: str) -> Dict[str, int]:
        """Fixed activity costs for a read/write extension handler."""
        if self._flexible:
            if request == "read":
                return {
                    "trap dispatch": 11,
                    "system message dispatch": 14,
                    "protocol-specific dispatch": 10,
                    "decode and modify hardware directory": 22,
                    "save state for function calls": 24,
                    "support for non-Alewife protocols": 10,
                    "trap return": 14,
                }
            return {
                "trap dispatch": 9,
                "system message dispatch": 14,
                "protocol-specific dispatch": 10,
                "decode and modify hardware directory": 52,
                "save state for function calls": 17,
                "support for non-Alewife protocols": 6,
                "trap return": 9,
            }
        if request == "read":
            return {
                "trap dispatch": 11,
                "system message dispatch": 15,
                "decode and modify hardware directory": 17,
                "trap return": 11,
            }
        return {
            "trap dispatch": 11,
            "system message dispatch": 15,
            "decode and modify hardware directory": 40,
            "trap return": 11,
        }

    def _management(self, request: str, small: bool) -> Dict[str, int]:
        """Memory management + hash-table administration."""
        small = small and self.smallset_opt
        if self._flexible:
            if small:
                # Inline small-set structure: no free-list traffic, a
                # direct lookup instead of full hash administration.
                return {"memory management": 12, "hash table administration": 30}
            if request == "read":
                return {"memory management": 60, "hash table administration": 80}
            return {"memory management": 28, "hash table administration": 74}
        # The assembly version has no hash table at all (it exploits the
        # directory format) and uses a pre-initialised free list.
        if small:
            return {"memory management": 6}
        if request == "read":
            return {"memory management": 65}
        return {"memory management": 11}

    def _store_pointers(self, request: str, count: int, small: bool) -> int:
        small = small and self.smallset_opt
        if self._flexible:
            if small:
                return 15 + 25 * count
            if request == "read":
                return 35 + 40 * count
            return 27 + 9 * count
        if request == "read":
            return 14 + 12 * count
        return 13 + 4 * count

    def _inv_transmit(self, count: int) -> int:
        if self._flexible:
            return 347 + 9 * count
        return 203 + 6 * count

    @property
    def message_spacing(self) -> int:
        """Cycles between successive software message launches."""
        return 9 if self._flexible else 6

    # ------------------------------------------------------------------
    # Handler costs
    # ------------------------------------------------------------------

    def read_overflow(self, pointers_emptied: int,
                      small: bool = False) -> HandlerCost:
        """Read request that overflowed the hardware pointers: empty the
        hardware pointers into the software structure and record the new
        requester (Section 2.2)."""
        breakdown = self._fixed("read")
        breakdown.update(self._management("read", small))
        breakdown["store pointers into extended directory"] = (
            self._store_pointers("read", pointers_emptied, small)
        )
        return _cost(breakdown)

    def write_extended(self, invalidations: int,
                       small: bool = False) -> HandlerCost:
        """Write request to a block whose directory has been extended:
        transmit an invalidation to every recorded pointer."""
        breakdown = self._fixed("write")
        breakdown.update(self._management("write", small))
        breakdown["store pointers into extended directory"] = (
            self._store_pointers("write", invalidations, small)
        )
        breakdown["invalidation lookup and transmit"] = (
            self._inv_transmit(invalidations)
        )
        return _cost(breakdown, spacing=self.message_spacing)

    def ack(self) -> HandlerCost:
        """One acknowledgement processed in software (the ,ACK protocols
        trap on *every* acknowledgement)."""
        if self._flexible:
            breakdown = {
                "trap dispatch": 11,
                "system message dispatch": 14,
                "protocol-specific dispatch": 10,
                "decode and modify hardware directory": 22,
                "trap return": 14,
            }
        else:
            breakdown = {
                "trap dispatch": 11,
                "system message dispatch": 15,
                "decode and modify hardware directory": 17,
                "trap return": 11,
            }
        return _cost(breakdown)

    def ack_forward(self) -> HandlerCost:
        """Sequential invalidation (Section 7): an acknowledgement trap
        that also composes and launches the *next* invalidation."""
        breakdown = dict(self.ack().breakdown)
        breakdown["invalidation lookup and transmit"] = (
            24 if self._flexible else 12)
        return _cost(breakdown)

    def last_ack(self) -> HandlerCost:
        """Final acknowledgement of a sequence (the ,LACK protocols):
        software transmits the data to the waiting requester."""
        breakdown = dict(self.ack().breakdown)
        breakdown["data transmit"] = 30 if self._flexible else 15
        return _cost(breakdown)

    def data_send(self) -> int:
        """Marginal cost of a software data transmission."""
        return 30 if self._flexible else 15

    def sw_request(self, request: str, pointers: int,
                   small: bool = False) -> HandlerCost:
        """A request serviced *entirely* in software (the software-only
        directory, Section 2.3).  ``pointers`` is the number of directory
        pointers touched (recorded for a read; invalidated for a write).
        """
        if request == "read":
            breakdown = self._fixed("read")
            breakdown.update(self._management("read", small))
            breakdown["store pointers into extended directory"] = (
                self._store_pointers("read", max(pointers, 1), small)
            )
            breakdown["data transmit"] = self.data_send()
            return _cost(breakdown)
        breakdown = self._fixed("write")
        breakdown.update(self._management("write", small))
        if pointers:
            breakdown["store pointers into extended directory"] = (
                self._store_pointers("write", pointers, small)
            )
            breakdown["invalidation lookup and transmit"] = (
                self._inv_transmit(pointers)
            )
        else:
            breakdown["data transmit"] = self.data_send()
        return _cost(breakdown, spacing=self.message_spacing)

    def local_fault(self, small: bool = False) -> HandlerCost:
        """Local access to a remote-touched block under the software-only
        directory (every such access traps, Section 2.3)."""
        breakdown = {
            "trap dispatch": 11 if self._flexible else 11,
            "protocol-specific dispatch": 10 if self._flexible else 0,
            "decode and modify hardware directory": 22 if self._flexible else 17,
            "hash table administration": (
                (30 if small and self.smallset_opt else 80)
                if self._flexible else 0
            ),
            "trap return": 14 if self._flexible else 11,
        }
        return _cost(breakdown)
