"""Protocol extension handlers (the software half of the directory).

These handlers implement the software side of every ``Dirn`` protocol
from ``DirnH1S...`` to ``DirnH(n-1)SNB`` plus the broadcast protocol
``Dir1H1SB,LACK``, written against the flexible coherence interface —
mirroring the paper's C implementation, in which "a single set of C
routines implements all of the protocols" (Section 4.1).

The hardware (the home controller) invokes a handler when:

- a read request overflows the hardware pointers (``on_read_overflow``);
- a write request targets a block whose directory has been extended
  (``on_write_extended`` / ``on_write_broadcast``);
- an acknowledgement arrives that the hardware cannot count
  (``on_ack_software``), or the *last* acknowledgement arrives under a
  ``,LACK`` protocol (``on_last_ack``).

Handler bodies run as trap completions: the directory mutation happens
atomically when the handler finishes occupying the processor, which is
the atomicity guarantee the flexible interface provides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from repro.common.errors import ProtocolStateError
from repro.common.types import DirState, TrapKind
from repro.core import messages as msg
from repro.core.directory import DirectoryEntry
from repro.core.software.interface import CoherenceInterface
from repro.core.spec import AckMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol.backends import LimitedPointerBackend


#: worker sets at or below this size use the sequential procedure when
#: the machine's invalidation mode is "dynamic"
SEQUENTIAL_THRESHOLD = 4


class ProtocolSoftware:
    """Software extension handlers for the hardware-directory protocols."""

    def __init__(self, home: "LimitedPointerBackend",
                 interface: CoherenceInterface) -> None:
        self.home = home
        self.iface = interface
        self.spec = interface.spec

    # ------------------------------------------------------------------
    # Read overflow (Section 2.2)
    # ------------------------------------------------------------------

    def on_read_overflow(self, entry: DirectoryEntry, requester: int) -> None:
        """The hardware pointer array is full and ``requester`` is not in
        it: empty the pointers into software and record the requester."""
        entry.sw_pending = True
        record = self.iface.lookup_extension(entry_block(entry))
        current = len(record.sharers) if record else 0
        pointers = len(entry.pointers)
        small = self.iface.is_small_set(current + pointers + 1)
        cost = self.iface.cost_model.read_overflow(pointers, small)

        def complete() -> None:
            block = entry_block(entry)
            rec = self.iface.allocate_extension(block)
            rec.sharers.update(self.iface.empty_hardware_pointers(entry))
            entry.record(requester)
            entry.extended = True
            entry.sw_pending = False
            self.iface.transmit(msg.RDATA, requester, block,
                                requester=requester)
            self.home.note_grant(block, requester)

        self.iface.run_handler(TrapKind.READ_OVERFLOW, cost, complete,
                               pointers=pointers)

    # ------------------------------------------------------------------
    # Write to an extended block (Section 2.2)
    # ------------------------------------------------------------------

    def on_write_extended(self, entry: DirectoryEntry, writer: int) -> None:
        """Invalidate every recorded copy — hardware pointers and the
        software extension — then arm acknowledgement collection."""
        entry.sw_pending = True
        block = entry_block(entry)
        record = self.iface.lookup_extension(block)
        targets: Set[int] = set(entry.sharer_set())
        if record is not None:
            targets.update(record.sharers)
        targets.discard(writer)
        small = self.iface.is_small_set(len(targets))
        cost = self.iface.cost_model.write_extended(len(targets), small)

        def complete() -> None:
            self.iface.free_extension(block)
            entry.pointers.clear()
            entry.local_bit = False
            entry.extended = False
            entry.sw_pending = False
            if not targets:
                self.home.complete_write(entry, writer, via_software=True)
                return
            self._arm_write(entry, writer, targets, block)

        self.iface.run_handler(TrapKind.WRITE_EXTENDED, cost, complete,
                               pointers=len(targets))

    def on_write_broadcast(self, entry: DirectoryEntry, writer: int) -> None:
        """``Dir1H1SB,LACK``: the directory lost track of the sharers, so
        software broadcasts an invalidation to every other node; the
        hardware accumulates the acknowledgements (Section 2.5)."""
        entry.sw_pending = True
        block = entry_block(entry)
        targets = {node for node in range(self.home.n_nodes)
                   if node != writer}
        cost = self.iface.cost_model.write_extended(len(targets))

        def complete() -> None:
            entry.pointers.clear()
            entry.local_bit = False
            entry.extended = False
            entry.sw_pending = False
            self._arm_write(entry, writer, targets, block)

        self.iface.run_handler(TrapKind.WRITE_EXTENDED, cost, complete,
                               pointers=len(targets))

    def _arm_write(self, entry: DirectoryEntry, writer: int,
                   targets: Set[int], block: int) -> None:
        """Send the invalidations and configure ack collection.

        The machine-wide invalidation mode selects between blasting
        every invalidation from one handler (*parallel*), chaining them
        one acknowledgement at a time (*sequential*), or picking per
        worker set (*dynamic* — Section 7's enhancement for
        widely-shared data).
        """
        mode = self.home.node.machine.invalidation_mode
        sequential = mode == "sequential" or (
            mode == "dynamic" and len(targets) <= SEQUENTIAL_THRESHOLD)
        entry.state = DirState.WRITE_TRANSACTION
        entry.pending_requester = writer
        entry.sw_write = True
        if sequential and len(targets) > 1:
            ordered = sorted(targets)
            self.iface.transmit(msg.INV, ordered[0], block, writer)
            self.home.node.stats.invalidations_sw += 1
            entry.seq_targets = ordered[1:]
            return
        self.iface.transmit_invalidations(targets, block, requester=writer)
        if self.spec.ack_mode is AckMode.SOFTWARE:
            # The hardware pointer is unused during the process; software
            # keeps the count (Section 2.4, first variant).
            rec = self.iface.allocate_extension(block)
            rec.sw_ack_count = len(targets)
            entry.ack_count = 0
        else:
            # Hardware counts (either fully, or trapping on the last ack).
            self.iface.arm_ack_counter(entry, len(targets))

    # ------------------------------------------------------------------
    # Acknowledgement handling (Section 2.4)
    # ------------------------------------------------------------------

    def on_ack_software(self, entry: DirectoryEntry) -> None:
        """A ``,ACK`` protocol: every acknowledgement traps."""
        block = entry_block(entry)
        record = self.iface.lookup_extension(block)
        if record is None or record.sw_ack_count <= 0:
            raise ProtocolStateError(
                f"software ack with no outstanding count for block {block}"
            )
        record.sw_ack_count -= 1
        last = record.sw_ack_count == 0
        cost = (self.iface.cost_model.last_ack() if last
                else self.iface.cost_model.ack())

        def complete() -> None:
            if last:
                self.iface.free_extension(block)
                writer = entry.pending_requester
                if writer is None:
                    raise ProtocolStateError("ack completion lost requester")
                self.home.complete_write(entry, writer, via_software=True)

        kind = TrapKind.ACK_LAST if last else TrapKind.ACK_SOFTWARE
        self.iface.run_handler(kind, cost, complete)

    def on_ack_sequential(self, entry: DirectoryEntry) -> None:
        """Sequential invalidation: each acknowledgement trap launches
        the next invalidation; the last one transmits the data."""
        assert entry.seq_targets is not None
        block = entry_block(entry)
        writer = entry.pending_requester
        if writer is None:
            raise ProtocolStateError("sequential ack lost its requester")
        if entry.seq_targets:
            target = entry.seq_targets.pop(0)
            cost = self.iface.cost_model.ack_forward()

            def complete() -> None:
                self.iface.transmit(msg.INV, target, block, writer)
                self.home.node.stats.invalidations_sw += 1

            self.iface.run_handler(TrapKind.ACK_SOFTWARE, cost, complete)
            return
        cost = self.iface.cost_model.last_ack()

        def finish() -> None:
            self.home.complete_write(entry, writer, via_software=True)

        self.iface.run_handler(TrapKind.ACK_LAST, cost, finish)

    def on_last_ack(self, entry: DirectoryEntry) -> None:
        """A ``,LACK`` protocol: the hardware counted down to zero and
        traps software, which transmits the data to the requester."""
        cost = self.iface.cost_model.last_ack()
        writer = entry.pending_requester
        if writer is None:
            raise ProtocolStateError("last ack with no pending requester")

        def complete() -> None:
            self.home.complete_write(entry, writer, via_software=True)

        self.iface.run_handler(TrapKind.ACK_LAST, cost, complete)


def entry_block(entry: DirectoryEntry) -> int:
    """Block id an entry describes (stored by the home controller)."""
    block = getattr(entry, "block", None)
    if block is None:
        raise ProtocolStateError("directory entry missing block id")
    return block
