"""Protocol extension software: cost model, extended directory, the
flexible coherence interface, and the protocol handlers."""

from repro.core.software.costmodel import (
    FLEXIBLE,
    OPTIMIZED,
    TABLE2_ACTIVITIES,
    CostModel,
    HandlerCost,
)
from repro.core.software.extdir import (
    SMALL_SET_THRESHOLD,
    ExtendedDirectory,
    ExtensionRecord,
    SoftwareDirectory,
    SoftwareDirEntry,
)
from repro.core.software.handlers import ProtocolSoftware
from repro.core.software.interface import CoherenceInterface

__all__ = [
    "CoherenceInterface",
    "CostModel",
    "ExtendedDirectory",
    "ExtensionRecord",
    "FLEXIBLE",
    "HandlerCost",
    "OPTIMIZED",
    "ProtocolSoftware",
    "SMALL_SET_THRESHOLD",
    "SoftwareDirEntry",
    "SoftwareDirectory",
    "TABLE2_ACTIVITIES",
]
