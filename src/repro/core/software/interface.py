"""The flexible coherence interface (paper Section 4.1).

The C implementation of Alewife's protocol extension software is built on
a flexible interface that provides "C macros for hardware directory
manipulation, protocol message transmission, a free-listing memory
manager, and hash table administration", and hides details such as atomic
protocol transitions.  This module is the analogue: protocol handlers
(:mod:`repro.core.software.handlers`) are written against this facade and
never touch the fabric, the hardware directory internals, or the trap
machinery directly.

The facade also charges the *cost* of each handler through the cost model
(:mod:`repro.core.software.costmodel`), so the flexibility-vs-performance
tradeoff of Section 4 is a first-class experiment: the same handler logic
runs under the ``flexible`` or the ``optimized`` cost model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.types import TrapKind
from repro.core import messages as msg
from repro.core.directory import DirectoryEntry
from repro.core.software.costmodel import (
    FLEXIBLE,
    OPTIMIZED,
    CostModel,
    HandlerCost,
)
from repro.core.software.extdir import (
    SMALL_SET_THRESHOLD,
    ExtendedDirectory,
    ExtensionRecord,
    SoftwareDirectory,
)
from repro.core.spec import ProtocolSpec
from repro.obs.events import TrapPosted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.node import Node


class CoherenceInterface:
    """Per-node services available to protocol extension handlers."""

    def __init__(self, node: "Node", spec: ProtocolSpec,
                 implementation: str = FLEXIBLE) -> None:
        if implementation == OPTIMIZED and spec.name != "DirnH5SNB":
            # The hand-tuned assembly version implements only DirnH5SNB
            # (Section 4.1: "this version only implements DirnH5SNB").
            raise ConfigurationError(
                "the optimized (assembly) software implements only "
                f"DirnH5SNB, not {spec.name}"
            )
        self.node = node
        self.spec = spec
        self.implementation = implementation
        self.cost_model = CostModel(implementation, spec.smallset_opt)
        self.extdir = ExtendedDirectory()
        self.swdir = SoftwareDirectory()

    # ------------------------------------------------------------------
    # Hash table administration / memory management
    # ------------------------------------------------------------------

    def lookup_extension(self, block: int) -> Optional[ExtensionRecord]:
        return self.extdir.lookup(block)

    def allocate_extension(self, block: int) -> ExtensionRecord:
        return self.extdir.get_or_create(block)

    def free_extension(self, block: int) -> Optional[ExtensionRecord]:
        return self.extdir.free(block)

    def is_small_set(self, size: int) -> bool:
        return size <= SMALL_SET_THRESHOLD

    # ------------------------------------------------------------------
    # Hardware directory manipulation
    # ------------------------------------------------------------------

    @staticmethod
    def empty_hardware_pointers(entry: DirectoryEntry) -> List[int]:
        """Move every hardware pointer into software hands."""
        return entry.take_all_pointers()

    @staticmethod
    def arm_ack_counter(entry: DirectoryEntry, count: int) -> None:
        """Return the hardware directory to acknowledgement-counting
        mode (Section 2.2)."""
        entry.ack_count = count

    # ------------------------------------------------------------------
    # Protocol message transmission
    # ------------------------------------------------------------------

    def transmit(self, kind: str, dst: int, block: int,
                 requester: Optional[int] = None, index: int = 0) -> None:
        """Launch one protocol message from software.

        ``index`` spaces successive launches from the same handler (the
        invalidation loop injects messages back-to-back at the software
        launch rate).
        """
        self.node.send_protocol(
            kind, dst, block, requester=requester,
            extra_delay=index * self.cost_model.message_spacing,
        )

    def transmit_invalidations(self, targets: Iterable[int], block: int,
                               requester: Optional[int]) -> int:
        """Send an invalidation to each target; returns the count."""
        count = 0
        for index, target in enumerate(sorted(targets)):
            self.transmit(msg.INV, target, block, requester, index=index)
            count += 1
        self.node.stats.invalidations_sw += count
        return count

    # ------------------------------------------------------------------
    # Trap scheduling
    # ------------------------------------------------------------------

    def run_handler(self, kind: TrapKind, cost: HandlerCost,
                    completion: Callable[[], None],
                    pointers: int = 0) -> None:
        """Queue a handler on the local processor; ``completion`` runs
        (atomically, per the interface's atomic-transition guarantee)
        when the handler finishes.

        The transaction id of the message that trapped is captured here
        and re-established around the deferred completion, so state
        changes and messages launched *at handler end* (the deferred-send
        discipline of the software backends) are attributed to the
        transaction that trapped — not to whatever message happens to be
        dispatching when the completion event fires.
        """
        node = self.node
        txn = node.current_txn
        obs = node.machine.obs
        if obs is not None and obs.on_trap:
            obs.trap(TrapPosted(
                node=node.id, kind=kind.value,
                at=node.machine.sim.now,
                cost=cost.latency, pointers=pointers, txn=txn,
            ))

        def complete() -> None:
            prev = node.current_txn
            node.current_txn = txn
            completion()
            node.current_txn = prev

        node.processor.post_trap(kind, cost, complete,
                                 pointers=pointers,
                                 implementation=self.implementation,
                                 txn=txn)
