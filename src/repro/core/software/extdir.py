"""Software-extended directory structures.

The flexible coherence interface provides a free-listing memory manager
and hash-table administration for the software side of the directory
(Section 4.1).  This module models those structures functionally: a hash
table mapping block id to an extension record.  Records smaller than the
small-set threshold use an inline array (the Section 5 memory-usage
optimization); larger ones use chained chunks drawn from a free list.

For the software-only directory (``DirnH0SNB,ACK``) the extension record
carries the *entire* protocol state, since there is no hardware directory
at all.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.common.types import DirState, NodeId

#: Worker sets of this size or smaller can use the inline small-set
#: representation (Section 5).
SMALL_SET_THRESHOLD = 4

#: Pointers per chained directory-extension chunk.
CHUNK_POINTERS = 8


@dataclasses.dataclass
class ExtensionRecord:
    """Software-held pointers for one block (the 2..n-1 pointer and
    one-pointer protocols)."""

    block: int
    sharers: Set[NodeId] = dataclasses.field(default_factory=set)
    #: acknowledgements still outstanding when software counts them
    sw_ack_count: int = 0

    @property
    def is_small(self) -> bool:
        return len(self.sharers) <= SMALL_SET_THRESHOLD

    @property
    def chunks(self) -> int:
        """Free-list chunks this record occupies."""
        if self.is_small:
            return 0
        return -(-len(self.sharers) // CHUNK_POINTERS)


@dataclasses.dataclass
class SoftwareDirEntry:
    """Complete software-held protocol state for one block (software-only
    directory, Section 2.3)."""

    block: int
    state: DirState = DirState.ABSENT
    sharers: Set[NodeId] = dataclasses.field(default_factory=set)
    owner: Optional[NodeId] = None
    sw_ack_count: int = 0
    pending_requester: Optional[NodeId] = None
    pending_write: bool = False
    #: the remote-access bit of Section 2.3: set once any other node has
    #: touched the block, after which every access traps to software
    remote_bit: bool = False

    @property
    def is_small(self) -> bool:
        return len(self.sharers) <= SMALL_SET_THRESHOLD


class ExtendedDirectory:
    """Hash table of extension records with free-list accounting."""

    def __init__(self) -> None:
        self._records: Dict[int, ExtensionRecord] = {}
        # Free-list statistics (the flexible interface's memory manager).
        self.allocations = 0
        self.frees = 0
        self.peak_records = 0

    def __contains__(self, block: int) -> bool:
        return block in self._records

    def __len__(self) -> int:
        return len(self._records)

    def lookup(self, block: int) -> Optional[ExtensionRecord]:
        return self._records.get(block)

    def get_or_create(self, block: int) -> ExtensionRecord:
        record = self._records.get(block)
        if record is None:
            record = ExtensionRecord(block)
            self._records[block] = record
            self.allocations += 1
            self.peak_records = max(self.peak_records, len(self._records))
        return record

    def free(self, block: int) -> Optional[ExtensionRecord]:
        record = self._records.pop(block, None)
        if record is not None:
            self.frees += 1
        return record

    def blocks(self) -> List[int]:
        return list(self._records)

    @property
    def live_chunks(self) -> int:
        return sum(r.chunks for r in self._records.values())


class SoftwareDirectory:
    """Hash table of complete software directory entries (H0)."""

    def __init__(self) -> None:
        self._entries: Dict[int, SoftwareDirEntry] = {}
        self.allocations = 0

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, block: int) -> Optional[SoftwareDirEntry]:
        return self._entries.get(block)

    def get_or_create(self, block: int) -> SoftwareDirEntry:
        entry = self._entries.get(block)
        if entry is None:
            entry = SoftwareDirEntry(block)
            self._entries[block] = entry
            self.allocations += 1
        return entry

    def blocks(self) -> List[int]:
        return list(self._entries)
