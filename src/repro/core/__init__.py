"""The paper's contribution: the software-extended protocol spectrum."""

from repro.core.cache_ctrl import CacheController
from repro.core.directory import DirectoryEntry
from repro.core.home import HardwareHomeController, SoftwareOnlyHomeController
from repro.core.spec import (
    ALEWIFE_SUPPORTED,
    PAPER_SPECTRUM,
    AckMode,
    ProtocolSpec,
    hardware_pointer_label,
    spec_of,
)

__all__ = [
    "ALEWIFE_SUPPORTED",
    "AckMode",
    "CacheController",
    "DirectoryEntry",
    "HardwareHomeController",
    "PAPER_SPECTRUM",
    "ProtocolSpec",
    "SoftwareOnlyHomeController",
    "hardware_pointer_label",
    "spec_of",
]
