"""Home-node protocol controllers (compatibility facade).

The controllers that used to live here were refactored into the
declarative protocol core: transition tables in
:mod:`repro.core.protocol.table`, guard/action implementations in
:mod:`repro.core.protocol.backends`, and the single table-driven
executor in :mod:`repro.core.protocol.engine`.  This module keeps the
historical entry points working:

- :func:`HardwareHomeController` — the CMMU's hardware directory for
  the full-map and limited-pointer protocols; overflows and extended
  writes are delegated to
  :class:`~repro.core.software.handlers.ProtocolSoftware`.
- :func:`SoftwareOnlyHomeController` — the ``DirnH0SNB,ACK``
  software-only directory (Section 2.3): one remote-access bit per
  block in hardware, all inter-node protocol state transitions in
  software.

Both answer requests racing an in-flight transaction with BUSY
messages; requesters retry with deterministic backoff.  That is
Alewife's livelock-free forward-progress mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.protocol.backends import (  # noqa: F401  (re-exports)
    DIR_LATENCY,
    HW_INV_SPACING,
    MIGRATORY_THRESHOLD,
    FullMapBackend,
    LimitedPointerBackend,
    SoftwareOnlyBackend,
)
from repro.core.protocol.engine import HomeProtocolEngine
from repro.core.spec import ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.software.interface import CoherenceInterface
    from repro.machine.node import Node

__all__ = [
    "DIR_LATENCY",
    "HW_INV_SPACING",
    "MIGRATORY_THRESHOLD",
    "HardwareHomeController",
    "SoftwareOnlyHomeController",
]


def HardwareHomeController(node: "Node", spec: ProtocolSpec,
                           interface: Optional["CoherenceInterface"]
                           ) -> HomeProtocolEngine:
    """Hardware directory + software extension for one node's memory.

    Builds a :class:`~repro.core.protocol.engine.HomeProtocolEngine`
    over a :class:`~repro.core.protocol.backends.FullMapBackend` or
    :class:`~repro.core.protocol.backends.LimitedPointerBackend`
    according to ``spec``.
    """
    backend_cls = FullMapBackend if spec.full_map else LimitedPointerBackend
    return HomeProtocolEngine(node, spec, backend_cls(node, spec, interface))


def SoftwareOnlyHomeController(node: "Node", spec: ProtocolSpec,
                               interface: "CoherenceInterface"
                               ) -> HomeProtocolEngine:
    """The ``DirnH0SNB,ACK`` software-only home directory.

    Builds a :class:`~repro.core.protocol.engine.HomeProtocolEngine`
    over a :class:`~repro.core.protocol.backends.SoftwareOnlyBackend`.
    """
    return HomeProtocolEngine(
        node, spec, SoftwareOnlyBackend(node, spec, interface)
    )
