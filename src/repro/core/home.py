"""Home-node protocol controllers.

Two controllers implement the memory side of the coherence protocol:

- :class:`HardwareHomeController` — the CMMU's hardware directory for the
  full-map and limited-pointer protocols.  Requests that fit in the
  hardware pointers are handled entirely here; overflows and extended
  writes are delegated to :class:`~repro.core.software.handlers.ProtocolSoftware`.
- :class:`SoftwareOnlyHomeController` — the ``DirnH0SNB,ACK`` software-only
  directory (Section 2.3): one remote-access bit per block in hardware,
  all inter-node protocol state transitions in software.

Both controllers answer requests racing an in-flight transaction with
BUSY messages; requesters retry with deterministic backoff.  That is
Alewife's livelock-free forward-progress mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.common.errors import ProtocolStateError
from repro.common.types import DirState, TrapKind
from repro.core import messages as msg
from repro.core.directory import DirectoryEntry
from repro.core.software.extdir import SoftwareDirEntry
from repro.core.software.handlers import ProtocolSoftware
from repro.core.software.interface import CoherenceInterface
from repro.core.spec import AckMode, ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.node import Node
    from repro.network.fabric import Message

#: Cycles for a hardware directory lookup/update before a reply leaves.
DIR_LATENCY = 2

#: Spacing between successive hardware-synthesised invalidations.
HW_INV_SPACING = 2

#: read-then-upgrade migrations observed before a block is marked
#: migratory
MIGRATORY_THRESHOLD = 2


class HardwareHomeController:
    """Hardware directory + software extension for one node's memory."""

    def __init__(self, node: "Node", spec: ProtocolSpec,
                 interface: Optional[CoherenceInterface]) -> None:
        self.node = node
        self.spec = spec
        self.n_nodes = node.machine.params.n_nodes
        self.mem_latency = node.machine.params.mem_latency
        self.entries: Dict[int, DirectoryEntry] = {}
        self.software: Optional[ProtocolSoftware] = None
        if spec.needs_software:
            if interface is None:
                raise ProtocolStateError("software protocol needs an interface")
            self.software = ProtocolSoftware(self, interface)

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------

    def entry_for(self, block: int) -> DirectoryEntry:
        entry = self.entries.get(block)
        if entry is None:
            # Alewife reconfigures coherence protocols block-by-block
            # (Section 3.1); the machine may hold a per-block override.
            spec = self.node.machine.protocol_for_block(block)
            entry = DirectoryEntry(
                capacity=0 if spec.full_map else spec.hw_pointers,
                block=block,
                full_map=spec.full_map,
                home=self.node.id,
                use_local_bit=spec.local_bit and not spec.full_map,
                sw_broadcast=spec.sw_broadcast,
            )
            self.entries[block] = entry
        return entry

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def handle(self, message: "Message") -> None:
        payload = message.payload
        block = payload.block
        if message.kind == msg.RREQ:
            self._on_read(message.src, block)
        elif message.kind == msg.WREQ:
            self._on_write(message.src, block)
        elif message.kind == msg.ACK:
            self._on_ack(message.src, block)
        elif message.kind == msg.FETCH_DATA:
            self._on_fetch_data(message.src, block)
        elif message.kind == msg.EVICT_WB:
            self._on_evict_wb(message.src, block)
        elif message.kind == msg.RELINQ:
            self._on_relinquish(message.src, block)
        else:
            raise ProtocolStateError(f"home received {message.kind}")

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _on_read(self, requester: int, block: int) -> None:
        entry = self.entry_for(block)
        if not entry.idle:
            if (entry.migratory
                    and entry.state is DirState.WRITE_TRANSACTION
                    and entry.pending_owner is not None):
                # A second reader is racing a migratory handoff: the
                # block is being read-shared after all.  Revert.
                entry.migratory_conflicts += 1
                if entry.migratory_conflicts >= MIGRATORY_THRESHOLD:
                    entry.migratory = False
                    entry.migratory_evidence = 0
                    entry.migratory_conflicts = 0
            self._busy(requester, block)
            return
        state = entry.state
        if state is DirState.ABSENT:
            entry.state = DirState.READ_ONLY
            entry.record(requester)
            self._grant(msg.RDATA, requester, block)
        elif state is DirState.READ_ONLY:
            if entry.has_pointer(requester) or entry.can_record(requester):
                entry.record(requester)
                self._grant(msg.RDATA, requester, block)
            elif entry.sw_broadcast:
                # Dir1...B protocols: stop tracking, remember that a
                # broadcast will be needed, and grant without trapping.
                # The idle ack counter counts the untracked copies so
                # CICO check-ins can restore exactness.
                entry.extended = True
                entry.untracked += 1
                self._grant(msg.RDATA, requester, block)
            else:
                assert self.software is not None
                self.software.on_read_overflow(entry, requester)
        elif state is DirState.READ_WRITE:
            owner = entry.owner
            if owner == requester:
                # The owner's write-back is in flight; retry until it lands.
                self._busy(requester, block)
            elif entry.migratory:
                # Migratory data (Section 7): hand the reader the block
                # exclusively, saving its upgrade transaction.
                self._start_fetch(entry, requester, owner, is_read=False)
            else:
                self._start_fetch(entry, requester, owner, is_read=True)
        else:  # pragma: no cover - transient states caught by entry.idle
            raise ProtocolStateError(f"read in state {state}")

    def _on_write(self, requester: int, block: int) -> None:
        entry = self.entry_for(block)
        if not entry.idle:
            self._busy(requester, block)
            return
        state = entry.state
        if state is DirState.ABSENT:
            self.complete_write(entry, requester)
        elif state is DirState.READ_ONLY:
            if entry.extended:
                assert self.software is not None
                if entry.sw_broadcast:
                    self.software.on_write_broadcast(entry, requester)
                else:
                    self.software.on_write_extended(entry, requester)
                return
            if self.node.machine.migratory_detection:
                self._observe_upgrade(entry, requester)
            targets = entry.sharer_set()
            targets.discard(requester)
            if not targets:
                self.complete_write(entry, requester)
                return
            self._hw_invalidate(entry, requester, targets)
        elif state is DirState.READ_WRITE:
            owner = entry.owner
            if owner == requester:
                self._busy(requester, block)
            else:
                self._start_fetch(entry, requester, owner, is_read=False)
        else:  # pragma: no cover
            raise ProtocolStateError(f"write in state {state}")

    def _observe_upgrade(self, entry: DirectoryEntry, requester: int) -> None:
        """Migratory detection: a read followed by an upgrade from the
        sole sharer, with a *different* previous writer, is migration
        evidence; genuine read-sharing resets it."""
        others = entry.sharer_set() - {requester}
        migrationlike = (not others
                         or others == {entry.last_writer})
        if migrationlike:
            if entry.last_writer is not None \
                    and entry.last_writer != requester:
                entry.migratory_evidence += 1
                entry.migratory_conflicts = 0
                if entry.migratory_evidence >= MIGRATORY_THRESHOLD:
                    entry.migratory = True
        elif len(others) >= 2:
            entry.migratory_evidence = 0
            entry.migratory = False

    def _hw_invalidate(self, entry: DirectoryEntry, requester: int,
                       targets: Set[int]) -> None:
        """Hardware-directed invalidation of the tracked sharers."""
        for index, target in enumerate(sorted(targets)):
            self.node.send_protocol(
                msg.INV, target, entry.block, requester=requester,
                extra_delay=DIR_LATENCY + index * HW_INV_SPACING,
            )
        self.node.stats.invalidations_hw += len(targets)
        entry.state = DirState.WRITE_TRANSACTION
        entry.pending_requester = requester
        entry.ack_count = len(targets)
        entry.sw_write = False

    def _start_fetch(self, entry: DirectoryEntry, requester: int,
                     owner: int, is_read: bool) -> None:
        """Recall a dirty copy from its owner.

        A read normally downgrades the owner (FETCH_RD) so both nodes end
        up with shared copies; when the directory cannot hold pointers
        for both, the owner is invalidated instead.
        """
        fetch_inv = not is_read
        if is_read and not entry.full_map:
            slots_needed = sum(
                1
                for node in (owner, requester)
                if not (entry.use_local_bit and node == entry.home)
            )
            if slots_needed > entry.capacity:
                fetch_inv = True
        entry.state = (DirState.READ_TRANSACTION if is_read
                       else DirState.WRITE_TRANSACTION)
        entry.pending_requester = requester
        entry.pending_owner = owner
        entry.pending_is_read = is_read
        entry.fetch_is_inv = fetch_inv
        entry.ack_count = 0
        entry.sw_write = False
        kind = msg.FETCH_INV if fetch_inv else msg.FETCH_RD
        self.node.send_protocol(kind, owner, entry.block,
                                requester=requester, extra_delay=DIR_LATENCY)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def _on_ack(self, src: int, block: int) -> None:
        entry = self.entries.get(block)
        if entry is None or entry.state is not DirState.WRITE_TRANSACTION:
            raise ProtocolStateError(
                f"stray ack from {src} for block {block}"
            )
        if entry.sw_write and entry.seq_targets is not None:
            assert self.software is not None
            self.software.on_ack_sequential(entry)
            return
        if entry.sw_write and self.spec.ack_mode is AckMode.SOFTWARE:
            assert self.software is not None
            self.software.on_ack_software(entry)
            return
        if entry.ack_count <= 0:
            raise ProtocolStateError(f"ack underflow for block {block}")
        entry.ack_count -= 1
        if entry.ack_count > 0:
            return
        requester = entry.pending_requester
        if requester is None:
            raise ProtocolStateError(f"no pending requester for {block}")
        if entry.sw_write and self.spec.ack_mode is AckMode.LAST_SOFTWARE:
            assert self.software is not None
            self.software.on_last_ack(entry)
        else:
            self.complete_write(entry, requester)

    def _on_fetch_data(self, src: int, block: int) -> None:
        entry = self.entries.get(block)
        if entry is None or not entry.state.transient:
            raise ProtocolStateError(f"stray fetch data for block {block}")
        self._finish_fetch(entry, src)

    def _on_evict_wb(self, src: int, block: int) -> None:
        entry = self.entries.get(block)
        if entry is None:
            raise ProtocolStateError(f"write-back for untracked block {block}")
        if entry.state is DirState.READ_WRITE and entry.owner == src:
            entry.reset_to_absent()
            return
        if entry.state.transient and entry.pending_owner == src:
            # The write-back crossed our fetch in flight; it *is* the
            # fetch response, except the owner no longer holds a copy.
            entry.fetch_is_inv = True
            self._finish_fetch(entry, src)
            return
        raise ProtocolStateError(
            f"unexpected write-back from {src} for block {block} "
            f"in state {entry.state}"
        )

    def _on_relinquish(self, src: int, block: int) -> None:
        """A CICO check-in: drop the sharer's pointer (hardware only; a
        pointer held in the software extension stays — its stale entry
        is harmless and the next software write skips absent copies via
        the normal acknowledge-anything rule)."""
        entry = self.entries.get(block)
        if entry is None or entry.state is not DirState.READ_ONLY:
            return  # raced a write transaction; the INV path covers it
        if entry.has_pointer(src):
            entry.drop(src)
        elif entry.untracked > 0:
            entry.untracked -= 1
            if entry.untracked == 0 and entry.sw_broadcast:
                # Every untracked copy was checked back in: the pointer
                # is exact again and writes need no broadcast.
                entry.extended = False
        if not entry.extended and not entry.sharer_set():
            entry.reset_to_absent()

    def _finish_fetch(self, entry: DirectoryEntry, owner: int) -> None:
        if entry.pending_owner != owner:
            raise ProtocolStateError(
                f"fetch response from {owner}, expected {entry.pending_owner}"
            )
        requester = entry.pending_requester
        if requester is None:
            raise ProtocolStateError("fetch completion lost its requester")
        if entry.pending_is_read:
            entry.pointers.clear()
            entry.local_bit = False
            entry.state = DirState.READ_ONLY
            entry.pending_requester = None
            entry.pending_owner = None
            if not entry.fetch_is_inv:
                entry.record(owner)
            entry.record(requester)
            self._grant(msg.RDATA, requester, entry.block)
        else:
            self.complete_write(entry, requester)

    # ------------------------------------------------------------------
    # Helpers shared with the software handlers
    # ------------------------------------------------------------------

    def complete_write(self, entry: DirectoryEntry, requester: int,
                       via_software: bool = False) -> None:
        """Grant exclusive ownership of ``entry`` to ``requester``."""
        entry.last_writer = requester
        entry.reset_to_exclusive(requester)
        entry.pending_owner = None
        delay = 0 if via_software else self.mem_latency
        self.node.send_protocol(msg.WDATA, requester, entry.block,
                                requester=requester, extra_delay=delay)
        self.node.machine.note_grant(entry.block, requester, write=True)

    def note_grant(self, block: int, requester: int) -> None:
        self.node.machine.note_grant(block, requester)

    def _grant(self, kind: str, requester: int, block: int) -> None:
        self.node.send_protocol(kind, requester, block, requester=requester,
                                extra_delay=self.mem_latency)
        self.note_grant(block, requester)

    def _busy(self, requester: int, block: int) -> None:
        self.node.stats.busy_replies += 1
        self.node.send_protocol(msg.BUSY, requester, block,
                                extra_delay=DIR_LATENCY)


class SoftwareOnlyHomeController:
    """``DirnH0SNB,ACK``: all inter-node coherence handled in software.

    One extra bit per block (the *remote-access* bit) lets purely local
    data run at uniprocessor speed; the first inter-node request sets the
    bit and flushes the home node's cached copy, after which every access
    — including the home's own — is handled by the extension software.

    State transitions are applied atomically when a message is delivered
    (several handlers can be queued on the node's software context at
    once, so deferring mutations would let them clobber each other); the
    trap models the handler's processor occupancy and delays the
    *outgoing* messages until the handler would have finished composing
    them.
    """

    def __init__(self, node: "Node", spec: ProtocolSpec,
                 interface: CoherenceInterface) -> None:
        self.node = node
        self.spec = spec
        self.iface = interface
        self.mem_latency = node.machine.params.mem_latency
        self.entries: Dict[int, SoftwareDirEntry] = {}
        #: invalidations sent to flush the home's own copy, with no write
        #: transaction waiting on them
        self._flush_acks: Dict[int, int] = {}

    def entry_for(self, block: int) -> SoftwareDirEntry:
        entry = self.entries.get(block)
        if entry is None:
            entry = SoftwareDirEntry(block)
            self.entries[block] = entry
        return entry

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, message: "Message") -> None:
        block = message.payload.block
        if message.kind in (msg.RREQ, msg.WREQ):
            self._on_request(message.kind, message.src, block)
        elif message.kind == msg.ACK:
            self._on_ack(message.src, block)
        elif message.kind == msg.FETCH_DATA:
            self._on_fetch_data(message.src, block)
        elif message.kind == msg.EVICT_WB:
            self._on_evict_wb(message.src, block)
        elif message.kind == msg.RELINQ:
            entry = self.entry_for(block)
            if entry.state is DirState.READ_ONLY:
                entry.sharers.discard(message.src)
                if not entry.sharers:
                    entry.state = DirState.ABSENT
            self._defer_sends(TrapKind.REMOTE_REQUEST,
                              self.iface.cost_model.ack(), [])
        else:
            raise ProtocolStateError(f"H0 home received {message.kind}")

    def _defer_sends(self, kind: TrapKind, cost, sends, pointers: int = 0,
                     grants=()) -> None:
        """Charge a handler and launch ``sends`` when it completes."""
        def complete() -> None:
            for index, (mkind, dst, block, requester) in enumerate(sends):
                self.iface.transmit(mkind, dst, block,
                                    requester=requester, index=index)
            for grant in grants:
                self.node.machine.note_grant(*grant)
        self.iface.run_handler(kind, cost, complete, pointers=pointers)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _on_request(self, kind: str, requester: int, block: int) -> None:
        entry = self.entry_for(block)
        local = requester == self.node.id

        if local and not entry.remote_bit:
            # Uniprocessor fast path: no software involved (Section 2.3).
            self._local_fast_path(kind, entry)
            return

        trap_kind = TrapKind.LOCAL_FAULT if local else TrapKind.REMOTE_REQUEST
        if entry.state.transient:
            # Software is mid-transaction on this block; even the busy
            # reply costs a handler dispatch under the software-only
            # directory.
            self.node.stats.busy_replies += 1
            self._defer_sends(trap_kind, self.iface.cost_model.ack(),
                              [(msg.BUSY, requester, block, None)])
            return

        if not local:
            entry.remote_bit = True
        if kind == msg.RREQ:
            self._read(entry, requester, trap_kind)
        else:
            self._write(entry, requester, trap_kind)

    def _local_fast_path(self, kind: str, entry: SoftwareDirEntry) -> None:
        home = self.node.id
        block = entry.block
        if entry.state is DirState.READ_WRITE:
            # Only the home holds copies while the bit is clear; a miss on
            # an owned block means the dirty copy's write-back is in
            # flight.  Retry until it lands.
            self.node.stats.busy_replies += 1
            self.node.send_protocol(msg.BUSY, home, block,
                                    extra_delay=DIR_LATENCY)
            return
        if kind == msg.RREQ:
            entry.state = DirState.READ_ONLY
            entry.sharers.add(home)
            reply = msg.RDATA
        else:
            entry.state = DirState.READ_WRITE
            entry.owner = home
            entry.sharers = {home}
            reply = msg.WDATA
        self.node.send_protocol(reply, home, block, requester=home,
                                extra_delay=self.mem_latency)
        self.node.machine.note_grant(block, home, write=reply is msg.WDATA)

    def _read(self, entry: SoftwareDirEntry, requester: int,
              trap_kind: TrapKind) -> None:
        block = entry.block
        if entry.state is DirState.READ_WRITE:
            owner = entry.owner
            assert owner is not None
            if owner == requester:
                self.node.stats.busy_replies += 1
                self._defer_sends(trap_kind, self.iface.cost_model.ack(),
                                  [(msg.BUSY, requester, block, None)])
                return
            self._start_fetch(entry, requester, owner, trap_kind,
                              is_read=True)
            return
        sends = []
        if requester != self.node.id and self.node.id in entry.sharers:
            # Flush the home's own copy (Section 2.3): once the
            # remote-access bit is set, local accesses must trap too.
            sends.append((msg.INV, self.node.id, block, None))
            self.node.stats.invalidations_sw += 1
            self._flush_acks[block] = self._flush_acks.get(block, 0) + 1
            entry.sharers.discard(self.node.id)
        entry.state = DirState.READ_ONLY
        entry.sharers.add(requester)
        sends.append((msg.RDATA, requester, block, requester))
        small = self.iface.is_small_set(len(entry.sharers))
        cost = self.iface.cost_model.sw_request("read", 1, small)
        self._defer_sends(trap_kind, cost, sends, pointers=1,
                          grants=[(block, requester)])

    def _write(self, entry: SoftwareDirEntry, requester: int,
               trap_kind: TrapKind) -> None:
        block = entry.block
        if entry.state is DirState.READ_WRITE:
            owner = entry.owner
            assert owner is not None
            if owner == requester:
                self.node.stats.busy_replies += 1
                self._defer_sends(trap_kind, self.iface.cost_model.ack(),
                                  [(msg.BUSY, requester, block, None)])
                return
            self._start_fetch(entry, requester, owner, trap_kind,
                              is_read=False)
            return
        targets = set(entry.sharers)
        targets.discard(requester)
        small = self.iface.is_small_set(len(targets))
        cost = self.iface.cost_model.sw_request("write", len(targets), small)
        if not targets:
            entry.state = DirState.READ_WRITE
            entry.owner = requester
            entry.sharers = {requester}
            self._defer_sends(trap_kind, cost,
                              [(msg.WDATA, requester, block, requester)],
                              grants=[(block, requester, True)])
            return
        entry.state = DirState.WRITE_TRANSACTION
        entry.pending_requester = requester
        entry.sw_ack_count = len(targets)
        entry.sharers = set()
        sends = [(msg.INV, target, block, requester)
                 for target in sorted(targets)]
        self.node.stats.invalidations_sw += len(targets)
        self._defer_sends(trap_kind, cost, sends, pointers=len(targets))

    def _start_fetch(self, entry: SoftwareDirEntry, requester: int,
                     owner: int, trap_kind: TrapKind, is_read: bool) -> None:
        # The software-only directory always invalidates the owner (the
        # flush behaviour of Section 2.3), so after the fetch completes
        # only the requester holds a copy.
        entry.state = (DirState.READ_TRANSACTION if is_read
                       else DirState.WRITE_TRANSACTION)
        entry.pending_requester = requester
        entry.owner = owner
        entry.sw_ack_count = 0
        cost = self.iface.cost_model.sw_request(
            "read" if is_read else "write", 1)
        self._defer_sends(trap_kind, cost,
                          [(msg.FETCH_INV, owner, entry.block, requester)],
                          pointers=1)

    # ------------------------------------------------------------------
    # Responses (every one of them traps)
    # ------------------------------------------------------------------

    def _on_ack(self, src: int, block: int) -> None:
        entry = self.entries.get(block)
        if entry is not None and (
                entry.state is DirState.WRITE_TRANSACTION
                and entry.sw_ack_count > 0):
            entry.sw_ack_count -= 1
            if entry.sw_ack_count > 0:
                self._defer_sends(TrapKind.ACK_SOFTWARE,
                                  self.iface.cost_model.ack(), [])
                return
            requester = entry.pending_requester
            assert requester is not None
            entry.state = DirState.READ_WRITE
            entry.owner = requester
            entry.sharers = {requester}
            entry.pending_requester = None
            self._defer_sends(TrapKind.ACK_LAST,
                              self.iface.cost_model.last_ack(),
                              [(msg.WDATA, requester, block, requester)],
                              grants=[(block, requester, True)])
            return
        flushes = self._flush_acks.get(block, 0)
        if flushes > 0:
            if flushes == 1:
                del self._flush_acks[block]
            else:
                self._flush_acks[block] = flushes - 1
            self._defer_sends(TrapKind.ACK_SOFTWARE,
                              self.iface.cost_model.ack(), [])
            return
        raise ProtocolStateError(f"stray H0 ack from {src} for block {block}")

    def _on_fetch_data(self, src: int, block: int) -> None:
        entry = self.entries.get(block)
        if entry is None or not entry.state.transient or entry.owner != src:
            raise ProtocolStateError(f"stray H0 fetch data for block {block}")
        requester = entry.pending_requester
        assert requester is not None
        cost = self.iface.cost_model.last_ack()
        if entry.state is DirState.READ_TRANSACTION:
            entry.state = DirState.READ_ONLY
            entry.owner = None
            entry.sharers = {requester}
            entry.pending_requester = None
            self._defer_sends(TrapKind.REMOTE_REQUEST, cost,
                              [(msg.RDATA, requester, block, requester)],
                              grants=[(block, requester)])
        else:
            entry.state = DirState.READ_WRITE
            entry.owner = requester
            entry.sharers = {requester}
            entry.pending_requester = None
            self._defer_sends(TrapKind.REMOTE_REQUEST, cost,
                              [(msg.WDATA, requester, block, requester)],
                              grants=[(block, requester, True)])

    def _on_evict_wb(self, src: int, block: int) -> None:
        entry = self.entries.get(block)
        if entry is None:
            raise ProtocolStateError(f"H0 write-back for untracked {block}")
        if entry.state.transient and entry.owner == src:
            # Crossed our fetch in flight: treat it as the response.
            self._on_fetch_data(src, block)
            return
        if entry.state is DirState.READ_WRITE and entry.owner == src:
            entry.state = DirState.ABSENT
            entry.owner = None
            entry.sharers = set()
            if src == self.node.id and not entry.remote_bit:
                return  # still private: no trap, uniprocessor behaviour
            self._defer_sends(TrapKind.REMOTE_REQUEST,
                              self.iface.cost_model.ack(), [])
            return
        raise ProtocolStateError(
            f"unexpected H0 write-back from {src} in state {entry.state}"
        )
