"""Simulation job specs: the unit of work of the parallel runner.

A :class:`SimJob` is a *pure description* of one simulation — workload
class and constructor kwargs, protocol name, machine parameters, and
software implementation — with no live objects attached.  That buys
three things at once:

- **Planning**: experiment drivers enumerate their jobs up front, so a
  whole sweep is visible as a flat list and duplicate configurations
  (e.g. the full-map baseline that several figures share) coalesce
  before any simulation runs.
- **Parallelism**: a spec pickles cheaply, so jobs fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` worker pool.
- **Caching**: a spec has a canonical JSON form and therefore a stable
  hash, which keys the on-disk result cache (:mod:`repro.exec.cache`).

Because the simulator is deterministic, a job's spec fully determines
its :class:`~repro.sim.stats.RunStats`; two jobs with equal keys are the
*same* experiment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple, Type

from repro.machine.params import MachineParams
from repro.sim.stats import RunStats
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.fleet import FleetTelemetry


@dataclasses.dataclass(frozen=True)
class SimJob:
    """One simulation to run: ``workload_cls(**kwargs)`` on a machine.

    ``workload_kwargs`` is a sorted tuple of ``(name, value)`` pairs —
    not a dict — so the spec is hashable and its canonical form does not
    depend on keyword order at the call site.  Build jobs with
    :func:`make_job`, which normalises the kwargs and machine
    parameters.
    """

    workload_cls: Type[Workload]
    workload_kwargs: Tuple[Tuple[str, Any], ...]
    protocol: str
    params: MachineParams
    software: str = "flexible"
    track_worker_sets: bool = False
    #: Collect a cycle-attribution artifact (repro.obs.attribution)
    #: alongside the counters.  Part of the spec — an attributed result
    #: carries more data, so it caches under a different key — but the
    #: dimension is only *added* to the canonical form when enabled, so
    #: every pre-existing cache entry keeps its key.
    attribution: bool = False
    #: Write-invalidation strategy (see Machine: "parallel",
    #: "sequential", or "dynamic").  A spec dimension — it changes
    #: simulated cycle counts — added to the canonical form only when
    #: non-default, preserving every historical key, like attribution.
    invalidation_mode: str = "parallel"

    def build_workload(self) -> Workload:
        return self.workload_cls(**dict(self.workload_kwargs))


def make_job(
    workload_cls: Type[Workload],
    workload_kwargs: Optional[Mapping[str, Any]] = None,
    *,
    protocol: str,
    params: Optional[MachineParams] = None,
    n_nodes: int = 64,
    victim_cache: bool = True,
    perfect_ifetch: bool = False,
    software: str = "flexible",
    track_worker_sets: bool = False,
    attribution: bool = False,
    invalidation_mode: str = "parallel",
) -> SimJob:
    """Build a :class:`SimJob`, normalising kwargs and machine params.

    Either pass a full ``params`` or the common shorthand trio
    (``n_nodes`` / ``victim_cache`` / ``perfect_ifetch``), mirroring
    :func:`repro.analysis.experiments.run_one`.
    """
    if params is None:
        params = MachineParams(
            n_nodes=n_nodes,
            victim_cache_enabled=victim_cache,
            perfect_ifetch=perfect_ifetch,
        )
    normalized = tuple(sorted((workload_kwargs or {}).items()))
    return SimJob(
        workload_cls=workload_cls,
        workload_kwargs=normalized,
        protocol=protocol,
        params=params,
        software=software,
        track_worker_sets=track_worker_sets,
        attribution=attribution,
        invalidation_mode=invalidation_mode,
    )


# ----------------------------------------------------------------------
# Canonical form and keys
# ----------------------------------------------------------------------

def canonical_dict(job: SimJob) -> Dict[str, Any]:
    """The spec as a plain sorted-key-friendly dict.

    Workload classes are named by ``module:qualname`` (stable across
    processes); machine parameters expand to every field so *any*
    parameter change produces a different canonical form.
    """
    cls = job.workload_cls
    doc: Dict[str, Any] = {
        "workload": f"{cls.__module__}:{cls.__qualname__}",
        "workload_kwargs": dict(job.workload_kwargs),
        "protocol": job.protocol,
        "params": dataclasses.asdict(job.params),
        "software": job.software,
        "track_worker_sets": job.track_worker_sets,
    }
    if job.attribution:
        # Added only when enabled: plain jobs keep their historical
        # canonical form, keys, and cache entries.
        doc["attribution"] = True
    if job.invalidation_mode != "parallel":
        # Same append-only rule: the default mode keeps its key.
        doc["invalidation_mode"] = job.invalidation_mode
    return doc


def canonical_json(job: SimJob) -> str:
    """Deterministic JSON encoding of :func:`canonical_dict`."""
    return json.dumps(canonical_dict(job), sort_keys=True,
                      separators=(",", ":"))


def job_key(job: SimJob) -> str:
    """Stable identifier of a job spec.

    Two call sites that describe the same experiment — regardless of
    keyword order or which driver built the spec — get the same key, so
    result maps deduplicate and cache lookups are exact.  The key is
    readable (workload and protocol up front) with a canonical-form
    digest for the rest.
    """
    digest = hashlib.sha256(canonical_json(job).encode("utf-8")).hexdigest()
    return (f"{job.workload_cls.__name__.lower()}"
            f":{job.protocol}:{digest[:16]}")


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def execute_job(job: SimJob, check_invariants: bool = False,
                telemetry: Optional["FleetTelemetry"] = None,
                dispatch: Optional[str] = None,
                shards: "int | str | None" = None) -> RunStats:
    """Run one job to completion on a fresh machine.

    Module-level (not a closure) so worker processes can unpickle and
    call it directly.  With ``check_invariants`` a continuous
    :class:`~repro.core.protocol.invariants.InvariantChecker` rides the
    run (observers never perturb cycle counts, so the statistics are
    identical either way) and any violation raises
    :class:`~repro.core.protocol.invariants.InvariantViolation`.

    ``check_invariants``, ``telemetry``, ``dispatch``, and ``shards``
    are execution-mode knobs, not part of the job spec, so they never
    change a job's cache key (``dispatch`` selects the protocol
    engine's execution strategy — compiled or interpreted — and
    ``shards`` the parallel-in-time shard count; both are
    cycle-identical by the equivalence gates).  ``check_invariants``
    needs to observe every event in one process, so it refuses to
    combine with ``shards > 1``.
    A :class:`~repro.obs.fleet.FleetTelemetry` streams job lifecycle
    events (started / sim-cycle heartbeats / finished with wall time
    and peak RSS) to the parent; like every observer it reads state and
    schedules nothing, so results are identical with it attached.
    """
    from repro.machine.machine import Machine

    machine = Machine(
        job.params,
        protocol=job.protocol,
        software=job.software,
        track_worker_sets=job.track_worker_sets,
        invalidation_mode=job.invalidation_mode,
        dispatch=dispatch,
        shards=shards,
    )
    checker = None
    if check_invariants:
        if machine.shards > 1:
            from repro.common.errors import ConfigurationError

            raise ConfigurationError(
                "--check-invariants inspects directory and cache state "
                "in one process; run it with --shards 1"
            )
        from repro.core.protocol.invariants import InvariantChecker

        checker = InvariantChecker.attach(machine)
    collector = None
    if job.attribution:
        from repro.obs.spans import SpanCollector

        collector = SpanCollector.attach(machine)
    key = None
    if telemetry is not None:
        key = job_key(job)
        telemetry.job_started(key, workload=job.workload_cls.__name__,
                              protocol=job.protocol,
                              n_nodes=job.params.n_nodes)
        from repro.sim.shard import sharding_available

        if machine.shards > 1 and sharding_available():
            # A sharded run cannot drive 'advance' subscribers; the
            # coordinator streams per-shard heartbeats instead.
            telemetry.watch_shards(machine, key)
        else:
            telemetry.watch(machine, key)
    try:
        stats = machine.run(job.build_workload())
    except BaseException as exc:
        if telemetry is not None:
            telemetry.job_failed(key, exc)
        raise
    if telemetry is not None:
        telemetry.job_finished(key, stats.run_cycles)
    if checker is not None:
        checker.finish()
        checker.assert_clean()
    if collector is not None:
        from repro.obs.attribution import AttributionReport, attribution_dict

        stats.attribution = attribution_dict(
            AttributionReport.build(collector),
            config={"job": job_key(job)},
        )
    return stats
