"""repro.exec — parallel experiment execution.

The experiment pipeline in three pieces:

- :mod:`repro.exec.jobs` — :class:`SimJob` specs, canonical job keys,
  and in-process execution of a single spec;
- :mod:`repro.exec.pool` — :class:`JobRunner`, the deduplicating,
  caching, optionally-multiprocess runner whose result maps are a pure
  function of the plan, and :class:`FarmExecutor`, its long-running
  sibling for services: one persistent pool, thread-safe single-job
  submission, and in-flight dedup (used by ``repro serve``);
- :mod:`repro.exec.cache` — :class:`ResultCache`, the on-disk
  deterministic result store under ``.repro-cache/``.

Typical use::

    from repro.exec import JobRunner, ResultCache, make_job

    runner = JobRunner(jobs="auto", cache=ResultCache())
    results = runner.run([make_job(Water, protocol="DirnH5SNB"), ...])

Experiment drivers in :mod:`repro.analysis.experiments` accept a
``runner=`` argument and plan through this package; see
``docs/performance.md`` for the design notes.
"""

from repro.exec.cache import (
    CACHE_SCHEMA,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
)
from repro.exec.jobs import (
    SimJob,
    canonical_dict,
    canonical_json,
    execute_job,
    job_key,
    make_job,
)
from repro.exec.pool import (
    FarmExecutor,
    JobRunner,
    Submission,
    plan_unique,
    resolve_jobs,
    run_jobs,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "FarmExecutor",
    "JobRunner",
    "ResultCache",
    "SimJob",
    "Submission",
    "cache_key",
    "canonical_dict",
    "canonical_json",
    "execute_job",
    "job_key",
    "make_job",
    "plan_unique",
    "resolve_jobs",
    "run_jobs",
]
