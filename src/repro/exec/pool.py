"""Deterministic parallel job runner.

:class:`JobRunner` takes a flat plan of :class:`~repro.exec.jobs.SimJob`
specs and returns ``{job_key: RunStats}``.  The contract that makes
parallelism safe for a reproduction pipeline:

**The result map is a pure function of the plan.**  Jobs are
deduplicated by key before anything runs, results are keyed by spec (not
by completion order), and every simulation is itself deterministic — so
the map is identical whether it was computed serially, by eight worker
processes finishing in any order, or straight from the on-disk cache.
Drivers then assemble tables and figures by looking keys up in plan
order, which keeps rendered output byte-identical for any ``--jobs``
value.

``jobs=1`` runs everything in-process (no executor, no pickling) — the
debugging-friendly serial fallback.  ``jobs="auto"`` uses one worker per
CPU.

**Fleet telemetry** (:mod:`repro.obs.fleet`) rides the runner as a pure
side channel: pass ``telemetry=FleetMonitor(...)`` and the runner
streams plan/cache/memo events itself, wires the result cache's hook,
and — in pool mode — hands every worker process a ``multiprocessing``
manager queue (via the executor's initializer) whose events a drain
thread relays into the monitor.  Nothing telemetry produces feeds back
into job selection, execution order, or results, so the result map and
every cache key are byte-identical with telemetry on or off.
"""

from __future__ import annotations

import dataclasses
import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.jobs import SimJob, execute_job, job_key
from repro.machine.params import resolve_shards
from repro.sim.stats import RunStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.fleet import FleetMonitor

JobsSpec = Union[int, str]


def resolve_jobs(value: JobsSpec) -> int:
    """Normalise a ``--jobs`` value: ``"auto"`` -> CPU count, else int.

    Raises :class:`ValueError` for zero, negatives, and junk.
    """
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"--jobs expects a positive integer or 'auto', got {text!r}"
            ) from None
    if value < 1:
        raise ValueError(f"--jobs must be >= 1, got {value}")
    return value


class JobRunner:
    """Executes job plans with dedup, caching, and a process pool.

    Parameters
    ----------
    jobs:
        Worker count: an int, or ``"auto"`` for the CPU count.  ``1``
        (the default) runs jobs in-process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable disk caching.
        Results are also memoised in-process for the runner's lifetime,
        so drivers sharing one runner never repeat a configuration even
        with the disk cache off.
    check_invariants:
        Run every *executed* job under the continuous protocol
        invariant checker
        (:class:`~repro.core.protocol.invariants.InvariantChecker`); a
        violation raises out of :meth:`run`.  Checking never changes
        results (observers are perturbation-free), so cached results
        remain valid and are returned unchecked.
    attribution:
        Rewrite every submitted job with ``attribution=True`` before
        executing, so each result carries its cycle-attribution
        artifact (:mod:`repro.obs.attribution`) and persists it through
        the result cache.  Unlike ``check_invariants``, this *is* a
        spec dimension — attributed and plain results *cache*
        separately (existing plain-job cache keys are untouched) — but
        the returned map is still keyed by the job as *submitted*, so
        drivers that planned plain jobs look results up unchanged.
    telemetry:
        A :class:`~repro.obs.fleet.FleetMonitor` that receives the
        sweep's event stream: plan/dedup/memo events from the runner,
        hit/miss/put events from the cache, and job lifecycle events
        (start, sim-cycle heartbeats, finish with wall time and peak
        RSS) from workers — in-process when serial, relayed over a
        manager queue when pooled.  Strictly a side channel: results
        and cache keys are byte-identical with or without it.
    heartbeat_every:
        Simulated cycles between worker ``job_progress`` heartbeats.
    """

    def __init__(self, jobs: JobsSpec = 1,
                 cache: Optional[ResultCache] = None,
                 check_invariants: bool = False,
                 attribution: bool = False,
                 telemetry: Optional["FleetMonitor"] = None,
                 heartbeat_every: Optional[int] = None,
                 dispatch: Optional[str] = None,
                 shards: "int | str | None" = None) -> None:
        self.n_workers = resolve_jobs(jobs)
        self.cache = cache
        self.check_invariants = check_invariants
        #: protocol-engine dispatch mode for executed jobs ("compiled"
        #: or "interpreted"; None = resolve from env/default).  An
        #: execution knob like check_invariants: cycle-identical, so it
        #: never enters cache keys and cached results stay valid.
        self.dispatch = dispatch
        #: parallel-in-time shard count per job, resolved against the
        #: worker count so jobs x shards never oversubscribes the
        #: machine (repro.machine.params.resolve_shards).  Like
        #: dispatch: byte-identical results, never in cache keys.
        self.shards = resolve_shards(shards, jobs=self.n_workers)
        self.attribution = attribution
        self.telemetry = telemetry
        if heartbeat_every is None:
            from repro.obs.fleet import DEFAULT_HEARTBEAT

            heartbeat_every = DEFAULT_HEARTBEAT
        self.heartbeat_every = heartbeat_every
        if telemetry is not None and cache is not None:
            cache.on_event = self._cache_event
        self._memo: Dict[str, RunStats] = {}
        self.jobs_executed = 0
        self.jobs_deduplicated = 0
        self.memo_hits = 0

    def _emit(self, event_type: str, **fields) -> None:
        if self.telemetry is not None:
            from repro.obs.fleet import event

            self.telemetry.handle(event(event_type, **fields))

    def _cache_event(self, kind: str, job: SimJob) -> None:
        self._emit("cache_" + kind, key=job_key(job))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, plan: Sequence[SimJob]) -> Dict[str, RunStats]:
        """Run ``plan`` and return ``{job_key: RunStats}``.

        Duplicate specs run once; cached results (memo or disk) are not
        re-run.  The returned map covers every job in the plan.
        """
        # aliases: key-as-submitted -> key-as-executed.  The two differ
        # only when the runner upgrades plain jobs to attribution=True;
        # callers keep looking results up by the key they planned with.
        aliases: "OrderedDict[str, str]" = OrderedDict()
        unique: "OrderedDict[str, SimJob]" = OrderedDict()
        for job in plan:
            submitted_key = job_key(job)
            if self.attribution and not job.attribution:
                job = dataclasses.replace(job, attribution=True)
                exec_key = job_key(job)
            else:
                exec_key = submitted_key
            if submitted_key in aliases:
                self.jobs_deduplicated += 1
                continue
            aliases[submitted_key] = exec_key
            if exec_key in unique:
                self.jobs_deduplicated += 1
            else:
                unique[exec_key] = job

        results: Dict[str, RunStats] = {}
        pending: "OrderedDict[str, SimJob]" = OrderedDict()
        for key, job in unique.items():
            memoized = self._memo.get(key)
            if memoized is not None:
                self.memo_hits += 1
                self._emit("memo_hit", key=key)
                results[key] = memoized
                continue
            if self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    self._memo[key] = cached
                    results[key] = cached
                    continue
            pending[key] = job

        self._emit("plan_enqueued", planned=len(plan), unique=len(unique),
                   pending=len(pending))
        for key in pending:
            self._emit("job_queued", key=key)

        if pending:
            if self.n_workers == 1 or len(pending) == 1:
                fresh = self._run_serial(pending)
            else:
                fresh = self._run_pool(pending)
            for key, stats in fresh.items():
                self._memo[key] = stats
                results[key] = stats
                if self.cache is not None:
                    self.cache.put(pending[key], stats)
            self.jobs_executed += len(fresh)
        return {submitted: results[executed]
                for submitted, executed in aliases.items()}

    def _run_serial(
        self, pending: "OrderedDict[str, SimJob]"
    ) -> Dict[str, RunStats]:
        worker_telemetry = None
        if self.telemetry is not None:
            from repro.obs.fleet import FleetTelemetry

            worker_telemetry = FleetTelemetry(
                self.telemetry.handle,
                heartbeat_every=self.heartbeat_every)
        return {
            key: execute_job(job, check_invariants=self.check_invariants,
                             telemetry=worker_telemetry,
                             dispatch=self.dispatch, shards=self.shards)
            for key, job in pending.items()
        }

    def _run_pool(
        self, pending: "OrderedDict[str, SimJob]"
    ) -> Dict[str, RunStats]:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.n_workers, len(pending))
        keys: List[str] = list(pending)

        if self.telemetry is None:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = {
                    key: executor.submit(execute_job, pending[key],
                                         self.check_invariants,
                                         None, self.dispatch, self.shards)
                    for key in keys
                }
                # Collect in plan order; completion order is irrelevant
                # because results are keyed by spec.
                return {key: futures[key].result() for key in keys}

        # Telemetry in pool mode: workers put events on a manager-queue
        # proxy (picklable, unlike a raw multiprocessing.Queue, so it
        # survives the trip through the executor's initargs) and a
        # daemon drain thread relays them into the monitor while the
        # futures run.  Results still collect in plan order — the
        # telemetry path adds no ordering of its own.
        import multiprocessing
        import threading

        with multiprocessing.Manager() as manager:
            queue = manager.Queue()

            def _drain() -> None:
                while True:
                    item = queue.get()
                    if item is None:
                        return
                    try:
                        self.telemetry.handle(item)
                    except Exception:  # noqa: BLE001 - side channel
                        pass

            drain = threading.Thread(target=_drain, daemon=True)
            drain.start()
            try:
                with ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_init_worker_telemetry,
                        initargs=(queue, self.heartbeat_every)) as executor:
                    futures = {
                        key: executor.submit(_execute_job_in_worker,
                                             pending[key],
                                             self.check_invariants,
                                             self.dispatch, self.shards)
                        for key in keys
                    }
                    return {key: futures[key].result() for key in keys}
            finally:
                queue.put(None)
                drain.join()


#: Per-worker-process telemetry queue, set by the pool initializer.
_WORKER_TELEMETRY_QUEUE = None
_WORKER_HEARTBEAT_EVERY = None


def _init_worker_telemetry(queue, heartbeat_every) -> None:
    """ProcessPoolExecutor initializer: stash the event queue."""
    global _WORKER_TELEMETRY_QUEUE, _WORKER_HEARTBEAT_EVERY
    _WORKER_TELEMETRY_QUEUE = queue
    _WORKER_HEARTBEAT_EVERY = heartbeat_every


def _execute_job_in_worker(job: SimJob, check_invariants: bool,
                           dispatch: Optional[str] = None,
                           shards: "int | None" = None) -> RunStats:
    """Worker-process entry point: execute_job + telemetry, if wired."""
    telemetry = None
    if _WORKER_TELEMETRY_QUEUE is not None:
        from repro.obs.fleet import DEFAULT_HEARTBEAT, FleetTelemetry

        telemetry = FleetTelemetry(
            _WORKER_TELEMETRY_QUEUE.put,
            heartbeat_every=_WORKER_HEARTBEAT_EVERY or DEFAULT_HEARTBEAT)
    return execute_job(job, check_invariants=check_invariants,
                       telemetry=telemetry, dispatch=dispatch,
                       shards=shards)


def run_jobs(
    plan: Sequence[SimJob],
    jobs: JobsSpec = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, RunStats]:
    """One-shot convenience wrapper around :class:`JobRunner`."""
    return JobRunner(jobs=jobs, cache=cache).run(plan)
