"""Deterministic parallel job runner.

:class:`JobRunner` takes a flat plan of :class:`~repro.exec.jobs.SimJob`
specs and returns ``{job_key: RunStats}``.  The contract that makes
parallelism safe for a reproduction pipeline:

**The result map is a pure function of the plan.**  Jobs are
deduplicated by key before anything runs, results are keyed by spec (not
by completion order), and every simulation is itself deterministic — so
the map is identical whether it was computed serially, by eight worker
processes finishing in any order, or straight from the on-disk cache.
Drivers then assemble tables and figures by looking keys up in plan
order, which keeps rendered output byte-identical for any ``--jobs``
value.

``jobs=1`` runs everything in-process (no executor, no pickling) — the
debugging-friendly serial fallback.  ``jobs="auto"`` uses one worker per
CPU.

**Fleet telemetry** (:mod:`repro.obs.fleet`) rides the runner as a pure
side channel: pass ``telemetry=FleetMonitor(...)`` and the runner
streams plan/cache/memo events itself, wires the result cache's hook,
and — in pool mode — hands every worker process a ``multiprocessing``
manager queue (via the executor's initializer) whose events a drain
thread relays into the monitor.  Nothing telemetry produces feeds back
into job selection, execution order, or results, so the result map and
every cache key are byte-identical with telemetry on or off.
"""

from __future__ import annotations

import dataclasses
import os
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exec.cache import ResultCache
from repro.exec.jobs import SimJob, execute_job, job_key
from repro.machine.params import resolve_shards
from repro.sim.stats import RunStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.fleet import FleetMonitor

JobsSpec = Union[int, str]


def resolve_jobs(value: JobsSpec) -> int:
    """Normalise a ``--jobs`` value: ``"auto"`` -> CPU count, else int.

    Raises :class:`ValueError` for zero, negatives, and junk.
    """
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"--jobs expects a positive integer or 'auto', got {text!r}"
            ) from None
    if value < 1:
        raise ValueError(f"--jobs must be >= 1, got {value}")
    return value


def plan_unique(
    plan: Sequence[SimJob], attribution: bool = False,
) -> "Tuple[OrderedDict[str, str], OrderedDict[str, SimJob], int]":
    """Deduplicate a plan by job key; returns (aliases, unique, dups).

    ``aliases`` maps each distinct key *as submitted* to the key *as
    executed* — the two differ only when ``attribution`` upgrades plain
    jobs to ``attribution=True`` (callers keep looking results up by
    the key they planned with).  ``unique`` maps executed key to the
    job to run, in first-appearance order; ``dups`` counts submissions
    coalesced away.  Shared by :class:`JobRunner` (one-shot sweeps) and
    :class:`FarmExecutor` (the long-running service), so both dedup a
    plan identically.
    """
    aliases: "OrderedDict[str, str]" = OrderedDict()
    unique: "OrderedDict[str, SimJob]" = OrderedDict()
    dups = 0
    for job in plan:
        submitted_key = job_key(job)
        if attribution and not job.attribution:
            job = dataclasses.replace(job, attribution=True)
            exec_key = job_key(job)
        else:
            exec_key = submitted_key
        if submitted_key in aliases:
            dups += 1
            continue
        aliases[submitted_key] = exec_key
        if exec_key in unique:
            dups += 1
        else:
            unique[exec_key] = job
    return aliases, unique, dups


class JobRunner:
    """Executes job plans with dedup, caching, and a process pool.

    Parameters
    ----------
    jobs:
        Worker count: an int, or ``"auto"`` for the CPU count.  ``1``
        (the default) runs jobs in-process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable disk caching.
        Results are also memoised in-process for the runner's lifetime,
        so drivers sharing one runner never repeat a configuration even
        with the disk cache off.
    check_invariants:
        Run every *executed* job under the continuous protocol
        invariant checker
        (:class:`~repro.core.protocol.invariants.InvariantChecker`); a
        violation raises out of :meth:`run`.  Checking never changes
        results (observers are perturbation-free), so cached results
        remain valid and are returned unchecked.
    attribution:
        Rewrite every submitted job with ``attribution=True`` before
        executing, so each result carries its cycle-attribution
        artifact (:mod:`repro.obs.attribution`) and persists it through
        the result cache.  Unlike ``check_invariants``, this *is* a
        spec dimension — attributed and plain results *cache*
        separately (existing plain-job cache keys are untouched) — but
        the returned map is still keyed by the job as *submitted*, so
        drivers that planned plain jobs look results up unchanged.
    telemetry:
        A :class:`~repro.obs.fleet.FleetMonitor` that receives the
        sweep's event stream: plan/dedup/memo events from the runner,
        hit/miss/put events from the cache, and job lifecycle events
        (start, sim-cycle heartbeats, finish with wall time and peak
        RSS) from workers — in-process when serial, relayed over a
        manager queue when pooled.  Strictly a side channel: results
        and cache keys are byte-identical with or without it.
    heartbeat_every:
        Simulated cycles between worker ``job_progress`` heartbeats.
    """

    def __init__(self, jobs: JobsSpec = 1,
                 cache: Optional[ResultCache] = None,
                 check_invariants: bool = False,
                 attribution: bool = False,
                 telemetry: Optional["FleetMonitor"] = None,
                 heartbeat_every: Optional[int] = None,
                 dispatch: Optional[str] = None,
                 shards: "int | str | None" = None) -> None:
        self.n_workers = resolve_jobs(jobs)
        self.cache = cache
        self.check_invariants = check_invariants
        #: protocol-engine dispatch mode for executed jobs ("compiled"
        #: or "interpreted"; None = resolve from env/default).  An
        #: execution knob like check_invariants: cycle-identical, so it
        #: never enters cache keys and cached results stay valid.
        self.dispatch = dispatch
        #: parallel-in-time shard count per job, resolved against the
        #: worker count so jobs x shards never oversubscribes the
        #: machine (repro.machine.params.resolve_shards).  Like
        #: dispatch: byte-identical results, never in cache keys.
        self.shards = resolve_shards(shards, jobs=self.n_workers)
        self.attribution = attribution
        self.telemetry = telemetry
        if heartbeat_every is None:
            from repro.obs.fleet import DEFAULT_HEARTBEAT

            heartbeat_every = DEFAULT_HEARTBEAT
        self.heartbeat_every = heartbeat_every
        if telemetry is not None and cache is not None:
            cache.on_event = self._cache_event
        self._memo: Dict[str, RunStats] = {}
        self.jobs_executed = 0
        self.jobs_deduplicated = 0
        self.memo_hits = 0

    def _emit(self, event_type: str, **fields) -> None:
        if self.telemetry is not None:
            from repro.obs.fleet import event

            self.telemetry.handle(event(event_type, **fields))

    def _cache_event(self, kind: str, job: SimJob) -> None:
        self._emit("cache_" + kind, key=job_key(job))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, plan: Sequence[SimJob]) -> Dict[str, RunStats]:
        """Run ``plan`` and return ``{job_key: RunStats}``.

        Duplicate specs run once; cached results (memo or disk) are not
        re-run.  The returned map covers every job in the plan.
        """
        aliases, unique, dups = plan_unique(plan, self.attribution)
        self.jobs_deduplicated += dups

        results: Dict[str, RunStats] = {}
        pending: "OrderedDict[str, SimJob]" = OrderedDict()
        for key, job in unique.items():
            memoized = self._memo.get(key)
            if memoized is not None:
                self.memo_hits += 1
                self._emit("memo_hit", key=key)
                results[key] = memoized
                continue
            if self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    self._memo[key] = cached
                    results[key] = cached
                    continue
            pending[key] = job

        self._emit("plan_enqueued", planned=len(plan), unique=len(unique),
                   pending=len(pending))
        for key in pending:
            self._emit("job_queued", key=key)

        if pending:
            if self.n_workers == 1 or len(pending) == 1:
                fresh = self._run_serial(pending)
            else:
                fresh = self._run_pool(pending)
            for key, stats in fresh.items():
                self._memo[key] = stats
                results[key] = stats
                if self.cache is not None:
                    self.cache.put(pending[key], stats)
            self.jobs_executed += len(fresh)
        return {submitted: results[executed]
                for submitted, executed in aliases.items()}

    def _run_serial(
        self, pending: "OrderedDict[str, SimJob]"
    ) -> Dict[str, RunStats]:
        worker_telemetry = None
        if self.telemetry is not None:
            from repro.obs.fleet import FleetTelemetry

            worker_telemetry = FleetTelemetry(
                self.telemetry.handle,
                heartbeat_every=self.heartbeat_every)
        return {
            key: execute_job(job, check_invariants=self.check_invariants,
                             telemetry=worker_telemetry,
                             dispatch=self.dispatch, shards=self.shards)
            for key, job in pending.items()
        }

    def _run_pool(
        self, pending: "OrderedDict[str, SimJob]"
    ) -> Dict[str, RunStats]:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.n_workers, len(pending))
        keys: List[str] = list(pending)

        if self.telemetry is None:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = {
                    key: executor.submit(execute_job, pending[key],
                                         self.check_invariants,
                                         None, self.dispatch, self.shards)
                    for key in keys
                }
                # Collect in plan order; completion order is irrelevant
                # because results are keyed by spec.
                return {key: futures[key].result() for key in keys}

        # Telemetry in pool mode: workers put events on a manager-queue
        # proxy (picklable, unlike a raw multiprocessing.Queue, so it
        # survives the trip through the executor's initargs) and a
        # daemon drain thread relays them into the monitor while the
        # futures run.  Results still collect in plan order — the
        # telemetry path adds no ordering of its own.
        import multiprocessing
        import threading

        with multiprocessing.Manager() as manager:
            queue = manager.Queue()

            def _drain() -> None:
                while True:
                    item = queue.get()
                    if item is None:
                        return
                    try:
                        self.telemetry.handle(item)
                    except Exception:  # noqa: BLE001 - side channel
                        pass

            drain = threading.Thread(target=_drain, daemon=True)
            drain.start()
            try:
                with ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_init_worker_telemetry,
                        initargs=(queue, self.heartbeat_every)) as executor:
                    futures = {
                        key: executor.submit(_execute_job_in_worker,
                                             pending[key],
                                             self.check_invariants,
                                             self.dispatch, self.shards)
                        for key in keys
                    }
                    return {key: futures[key].result() for key in keys}
            finally:
                queue.put(None)
                drain.join()


#: Per-worker-process telemetry queue, set by the pool initializer.
_WORKER_TELEMETRY_QUEUE = None
_WORKER_HEARTBEAT_EVERY = None


def _init_worker_telemetry(queue, heartbeat_every) -> None:
    """ProcessPoolExecutor initializer: stash the event queue."""
    global _WORKER_TELEMETRY_QUEUE, _WORKER_HEARTBEAT_EVERY
    _WORKER_TELEMETRY_QUEUE = queue
    _WORKER_HEARTBEAT_EVERY = heartbeat_every


def _execute_job_in_worker(job: SimJob, check_invariants: bool,
                           dispatch: Optional[str] = None,
                           shards: "int | None" = None) -> RunStats:
    """Worker-process entry point: execute_job + telemetry, if wired."""
    telemetry = None
    if _WORKER_TELEMETRY_QUEUE is not None:
        from repro.obs.fleet import DEFAULT_HEARTBEAT, FleetTelemetry

        telemetry = FleetTelemetry(
            _WORKER_TELEMETRY_QUEUE.put,
            heartbeat_every=_WORKER_HEARTBEAT_EVERY or DEFAULT_HEARTBEAT)
    return execute_job(job, check_invariants=check_invariants,
                       telemetry=telemetry, dispatch=dispatch,
                       shards=shards)


def _execute_with_monitor(job: SimJob, monitor, heartbeat_every: int,
                          dispatch: Optional[str],
                          shards: "int | None") -> RunStats:
    """In-process execution with telemetry delivered straight to the
    monitor (thread-pool farms; mirrors JobRunner's serial path)."""
    from repro.obs.fleet import FleetTelemetry

    telemetry = FleetTelemetry(monitor.handle,
                               heartbeat_every=heartbeat_every)
    return execute_job(job, check_invariants=False, telemetry=telemetry,
                       dispatch=dispatch, shards=shards)


class Submission(NamedTuple):
    """One :meth:`FarmExecutor.submit` outcome.

    ``future`` resolves to the job's :class:`RunStats`; ``source`` says
    how the submission was satisfied — ``"queued"`` (scheduled fresh),
    ``"inflight"`` (coalesced onto an execution already running),
    ``"memo"`` (in-process memo), or ``"cache"`` (on-disk result
    cache).  Every source but ``"queued"`` means no new execution.
    """

    key: str
    future: "object"
    source: str


class FarmExecutor:
    """Persistent, thread-safe job executor for long-running services.

    :class:`JobRunner` is built for one-shot sweeps: a single caller
    hands it a whole plan, it spins up a pool, drains it, and returns.
    A server needs the opposite shape — many callers submitting single
    jobs at arbitrary times against one long-lived worker pool — plus
    one guarantee JobRunner never needed: submissions of a key that is
    *currently executing* must coalesce onto that execution rather than
    run again.  :meth:`submit` resolves each job, in order, against the
    in-flight table, the in-process memo, and the on-disk cache, and
    only then schedules it; the returned future is shared by every
    caller of the same key.  All of it is lock-protected, so concurrent
    HTTP clients race safely.

    Dedup semantics, result keying, and telemetry events match
    JobRunner exactly (:func:`plan_unique` is shared), and the blocking
    :meth:`run` is plug-compatible with JobRunner's — which is how
    ``repro serve`` feeds the unmodified experiment drivers through the
    farm and gets byte-identical reports out.

    ``worker_pool`` selects the execution substrate: ``"process"``
    (default; real isolation, telemetry relayed over a manager queue by
    a drain thread) or ``"thread"`` (in-process, telemetry direct — the
    serial JobRunner path, one job at a time per worker thread).
    """

    def __init__(self, jobs: JobsSpec = 1,
                 cache: Optional[ResultCache] = None,
                 attribution: bool = False,
                 telemetry: Optional["FleetMonitor"] = None,
                 heartbeat_every: Optional[int] = None,
                 dispatch: Optional[str] = None,
                 shards: "int | str | None" = None,
                 worker_pool: str = "process") -> None:
        import threading

        if worker_pool not in ("process", "thread"):
            raise ValueError(
                f"worker_pool must be 'process' or 'thread', "
                f"got {worker_pool!r}")
        self.n_workers = resolve_jobs(jobs)
        self.cache = cache
        self.attribution = attribution
        self.telemetry = telemetry
        self.dispatch = dispatch
        self.shards = resolve_shards(shards, jobs=self.n_workers)
        self.worker_pool = worker_pool
        if heartbeat_every is None:
            from repro.obs.fleet import DEFAULT_HEARTBEAT

            heartbeat_every = DEFAULT_HEARTBEAT
        self.heartbeat_every = heartbeat_every
        if telemetry is not None and cache is not None:
            cache.on_event = self._cache_event
        self._lock = threading.Lock()
        self._memo: Dict[str, RunStats] = {}
        self._inflight: Dict[str, "object"] = {}
        self._pool = None
        self._manager = None
        self._queue = None
        self._drain = None
        self._closed = False
        self.jobs_executed = 0
        self.jobs_deduplicated = 0
        self.inflight_hits = 0
        self.memo_hits = 0

    # ------------------------------------------------------------------
    # Telemetry plumbing (mirrors JobRunner)
    # ------------------------------------------------------------------

    def _emit(self, event_type: str, **fields) -> None:
        if self.telemetry is not None:
            from repro.obs.fleet import event

            self.telemetry.handle(event(event_type, **fields))

    def _cache_event(self, kind: str, job: SimJob) -> None:
        self._emit("cache_" + kind, key=job_key(job))

    def _drain_loop(self) -> None:
        while True:
            try:
                item = self._queue.get()
            except (EOFError, OSError):  # manager torn down
                return
            if item is None:
                return
            try:
                self.telemetry.handle(item)
            except Exception:  # noqa: BLE001 - side channel
                pass

    def _ensure_pool(self):
        # Called under self._lock.  Lazy so a farm constructed for a
        # server costs nothing until the first job arrives.
        if self._pool is not None:
            return self._pool
        if self.worker_pool == "thread":
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            return self._pool
        from concurrent.futures import ProcessPoolExecutor

        if self.telemetry is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
            return self._pool
        import multiprocessing
        import threading

        self._manager = multiprocessing.Manager()
        self._queue = self._manager.Queue()
        self._drain = threading.Thread(target=self._drain_loop,
                                       daemon=True)
        self._drain.start()
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_worker_telemetry,
            initargs=(self._queue, self.heartbeat_every))
        return self._pool

    def _schedule(self, job: SimJob):
        # Called under self._lock with the pool ensured.
        pool = self._ensure_pool()
        if self.worker_pool == "thread":
            if self.telemetry is not None:
                return pool.submit(_execute_with_monitor, job,
                                   self.telemetry, self.heartbeat_every,
                                   self.dispatch, self.shards)
            return pool.submit(execute_job, job, False, None,
                               self.dispatch, self.shards)
        if self._queue is not None:
            return pool.submit(_execute_job_in_worker, job, False,
                               self.dispatch, self.shards)
        return pool.submit(execute_job, job, False, None,
                           self.dispatch, self.shards)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: SimJob) -> Submission:
        """Resolve one job; returns its (possibly shared) future.

        Resolution order: in-flight execution, in-process memo, on-disk
        cache, fresh schedule.  Emits the same telemetry events a
        JobRunner plan of one job would (``plan_enqueued`` /
        ``job_queued`` / ``memo_hit``; the cache emits its own
        hit/miss/put events through its hook).
        """
        if self.attribution and not job.attribution:
            job = dataclasses.replace(job, attribution=True)
        key = job_key(job)
        with self._lock:
            if self._closed:
                raise RuntimeError("FarmExecutor is closed")
            future = self._inflight.get(key)
            if future is not None:
                self.inflight_hits += 1
                self.jobs_deduplicated += 1
                self._emit("plan_enqueued", planned=1, unique=0, pending=0)
                return Submission(key, future, "inflight")
            memoized = self._memo.get(key)
            if memoized is not None:
                self.memo_hits += 1
                self._emit("plan_enqueued", planned=1, unique=1, pending=0)
                self._emit("memo_hit", key=key)
                return Submission(key, _resolved_future(memoized), "memo")
        # Disk lookup outside the lock: file IO must not serialize
        # unrelated submissions.
        if self.cache is not None:
            cached = self.cache.get(job)
            if cached is not None:
                with self._lock:
                    self._memo.setdefault(key, cached)
                self._emit("plan_enqueued", planned=1, unique=1, pending=0)
                return Submission(key, _resolved_future(cached), "cache")
        with self._lock:
            if self._closed:
                raise RuntimeError("FarmExecutor is closed")
            future = self._inflight.get(key)
            if future is not None:
                # A racer scheduled it while we were probing the disk.
                self.inflight_hits += 1
                self.jobs_deduplicated += 1
                self._emit("plan_enqueued", planned=1, unique=0, pending=0)
                return Submission(key, future, "inflight")
            self._emit("plan_enqueued", planned=1, unique=1, pending=1)
            self._emit("job_queued", key=key)
            future = self._schedule(job)
            self._inflight[key] = future
        future.add_done_callback(
            lambda f, key=key, job=job: self._settle(key, job, f))
        return Submission(key, future, "queued")

    def _settle(self, key: str, job: SimJob, future) -> None:
        failed = future.cancelled() or future.exception() is not None
        with self._lock:
            if not failed:
                # Memoize before clearing in-flight so no window exists
                # where a concurrent submit would re-schedule the key.
                self._memo[key] = future.result()
                self.jobs_executed += 1
            self._inflight.pop(key, None)
        if not failed and self.cache is not None:
            self.cache.put(job, future.result())

    # ------------------------------------------------------------------
    # JobRunner-compatible blocking interface
    # ------------------------------------------------------------------

    def run(self, plan: Sequence[SimJob],
            attribution: Optional[bool] = None) -> Dict[str, RunStats]:
        """Run a whole plan through the farm; blocks for all results.

        Same contract as :meth:`JobRunner.run` — the result map is keyed
        by the jobs as submitted and is a pure function of the plan —
        so experiment drivers accept a farm wherever they accept a
        runner.
        """
        if attribution is None:
            attribution = self.attribution
        aliases, unique, dups = plan_unique(plan, attribution)
        with self._lock:
            self.jobs_deduplicated += dups
        submissions = {key: self.submit(job)
                       for key, job in unique.items()}
        results = {key: sub.future.result()
                   for key, sub in submissions.items()}
        return {submitted: results[executed]
                for submitted, executed in aliases.items()}

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Executor-level counters for status endpoints."""
        with self._lock:
            return {
                "jobs_executed": self.jobs_executed,
                "jobs_deduplicated": self.jobs_deduplicated,
                "inflight_hits": self.inflight_hits,
                "memo_hits": self.memo_hits,
                "inflight": len(self._inflight),
                "memoized": len(self._memo),
            }

    def close(self, wait: bool = True) -> None:
        """Shut the farm down; idempotent.

        Waits for in-flight jobs (unless ``wait=False``), then tears
        down the pool, the telemetry drain, and the manager.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            queue, self._queue = self._queue, None
            drain, self._drain = self._drain, None
            manager, self._manager = self._manager, None
        if pool is not None:
            pool.shutdown(wait=wait)
        if queue is not None:
            try:
                queue.put(None)
            except (EOFError, OSError):
                pass
        if drain is not None:
            drain.join(timeout=5.0)
        if manager is not None:
            manager.shutdown()

    def __enter__(self) -> "FarmExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _resolved_future(stats: RunStats):
    from concurrent.futures import Future

    future: "Future[RunStats]" = Future()
    future.set_result(stats)
    return future


def run_jobs(
    plan: Sequence[SimJob],
    jobs: JobsSpec = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, RunStats]:
    """One-shot convenience wrapper around :class:`JobRunner`."""
    return JobRunner(jobs=jobs, cache=cache).run(plan)
