"""Deterministic parallel job runner.

:class:`JobRunner` takes a flat plan of :class:`~repro.exec.jobs.SimJob`
specs and returns ``{job_key: RunStats}``.  The contract that makes
parallelism safe for a reproduction pipeline:

**The result map is a pure function of the plan.**  Jobs are
deduplicated by key before anything runs, results are keyed by spec (not
by completion order), and every simulation is itself deterministic — so
the map is identical whether it was computed serially, by eight worker
processes finishing in any order, or straight from the on-disk cache.
Drivers then assemble tables and figures by looking keys up in plan
order, which keeps rendered output byte-identical for any ``--jobs``
value.

``jobs=1`` runs everything in-process (no executor, no pickling) — the
debugging-friendly serial fallback.  ``jobs="auto"`` uses one worker per
CPU.
"""

from __future__ import annotations

import dataclasses
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.jobs import SimJob, execute_job, job_key
from repro.sim.stats import RunStats

JobsSpec = Union[int, str]


def resolve_jobs(value: JobsSpec) -> int:
    """Normalise a ``--jobs`` value: ``"auto"`` -> CPU count, else int.

    Raises :class:`ValueError` for zero, negatives, and junk.
    """
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"--jobs expects a positive integer or 'auto', got {text!r}"
            ) from None
    if value < 1:
        raise ValueError(f"--jobs must be >= 1, got {value}")
    return value


class JobRunner:
    """Executes job plans with dedup, caching, and a process pool.

    Parameters
    ----------
    jobs:
        Worker count: an int, or ``"auto"`` for the CPU count.  ``1``
        (the default) runs jobs in-process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable disk caching.
        Results are also memoised in-process for the runner's lifetime,
        so drivers sharing one runner never repeat a configuration even
        with the disk cache off.
    check_invariants:
        Run every *executed* job under the continuous protocol
        invariant checker
        (:class:`~repro.core.protocol.invariants.InvariantChecker`); a
        violation raises out of :meth:`run`.  Checking never changes
        results (observers are perturbation-free), so cached results
        remain valid and are returned unchecked.
    attribution:
        Rewrite every submitted job with ``attribution=True`` before
        executing, so each result carries its cycle-attribution
        artifact (:mod:`repro.obs.attribution`) and persists it through
        the result cache.  Unlike ``check_invariants``, this *is* a
        spec dimension — attributed and plain results *cache*
        separately (existing plain-job cache keys are untouched) — but
        the returned map is still keyed by the job as *submitted*, so
        drivers that planned plain jobs look results up unchanged.
    """

    def __init__(self, jobs: JobsSpec = 1,
                 cache: Optional[ResultCache] = None,
                 check_invariants: bool = False,
                 attribution: bool = False) -> None:
        self.n_workers = resolve_jobs(jobs)
        self.cache = cache
        self.check_invariants = check_invariants
        self.attribution = attribution
        self._memo: Dict[str, RunStats] = {}
        self.jobs_executed = 0
        self.jobs_deduplicated = 0
        self.memo_hits = 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, plan: Sequence[SimJob]) -> Dict[str, RunStats]:
        """Run ``plan`` and return ``{job_key: RunStats}``.

        Duplicate specs run once; cached results (memo or disk) are not
        re-run.  The returned map covers every job in the plan.
        """
        # aliases: key-as-submitted -> key-as-executed.  The two differ
        # only when the runner upgrades plain jobs to attribution=True;
        # callers keep looking results up by the key they planned with.
        aliases: "OrderedDict[str, str]" = OrderedDict()
        unique: "OrderedDict[str, SimJob]" = OrderedDict()
        for job in plan:
            submitted_key = job_key(job)
            if self.attribution and not job.attribution:
                job = dataclasses.replace(job, attribution=True)
                exec_key = job_key(job)
            else:
                exec_key = submitted_key
            if submitted_key in aliases:
                self.jobs_deduplicated += 1
                continue
            aliases[submitted_key] = exec_key
            if exec_key in unique:
                self.jobs_deduplicated += 1
            else:
                unique[exec_key] = job

        results: Dict[str, RunStats] = {}
        pending: "OrderedDict[str, SimJob]" = OrderedDict()
        for key, job in unique.items():
            memoized = self._memo.get(key)
            if memoized is not None:
                self.memo_hits += 1
                results[key] = memoized
                continue
            if self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    self._memo[key] = cached
                    results[key] = cached
                    continue
            pending[key] = job

        if pending:
            if self.n_workers == 1 or len(pending) == 1:
                fresh = self._run_serial(pending)
            else:
                fresh = self._run_pool(pending)
            for key, stats in fresh.items():
                self._memo[key] = stats
                results[key] = stats
                if self.cache is not None:
                    self.cache.put(pending[key], stats)
            self.jobs_executed += len(fresh)
        return {submitted: results[executed]
                for submitted, executed in aliases.items()}

    def _run_serial(
        self, pending: "OrderedDict[str, SimJob]"
    ) -> Dict[str, RunStats]:
        return {
            key: execute_job(job, check_invariants=self.check_invariants)
            for key, job in pending.items()
        }

    def _run_pool(
        self, pending: "OrderedDict[str, SimJob]"
    ) -> Dict[str, RunStats]:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.n_workers, len(pending))
        keys: List[str] = list(pending)
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = {
                key: executor.submit(execute_job, pending[key],
                                     self.check_invariants)
                for key in keys
            }
            # Collect in plan order; completion order is irrelevant
            # because results are keyed by spec.
            return {key: futures[key].result() for key in keys}


def run_jobs(
    plan: Sequence[SimJob],
    jobs: JobsSpec = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, RunStats]:
    """One-shot convenience wrapper around :class:`JobRunner`."""
    return JobRunner(jobs=jobs, cache=cache).run(plan)
