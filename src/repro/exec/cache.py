"""On-disk deterministic result cache.

Because the simulator is deterministic, a job spec fully determines its
:class:`~repro.sim.stats.RunStats` — so results can be cached on disk
and replayed on any later run of the same spec.  Re-running the
experiment suite after an unrelated edit is then near-instant.

Layout (under ``.repro-cache/`` by default)::

    .repro-cache/
        ab/
            ab3f...e9.json      one result per file

Each file name is the SHA-256 of the *cache key document*: the job's
canonical spec plus the cost-model version and the package version.
Invalidation is therefore automatic and conservative:

- change any :class:`~repro.machine.params.MachineParams` field, the
  protocol, the workload kwargs, or the software implementation and the
  key changes (it hashes the canonical spec);
- bump ``COST_MODEL_VERSION`` after retuning handler costs and every
  cached result goes stale at once;
- release a new package version and likewise nothing old is reused.

Stale files are never *read*; they are garbage-collected lazily by
:meth:`ResultCache.prune` (or just delete the directory — it is purely
a cache).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Callable, Dict, Optional


class _Expired(Exception):
    """Internal marker: a cache file exceeded the prune age limit."""

from repro.exec.jobs import SimJob, canonical_dict
from repro.sim.stats import RunStats

#: Bump when the cache file format itself changes.
CACHE_SCHEMA = "repro-exec-cache/1"

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def cache_key(job: SimJob) -> str:
    """SHA-256 over (job spec, cost-model version, package version)."""
    from repro import __version__
    from repro.core.software import costmodel

    doc = {
        "schema": CACHE_SCHEMA,
        "job": canonical_dict(job),
        "cost_model_version": costmodel.COST_MODEL_VERSION,
        "package_version": __version__,
    }
    encoded = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """Maps job specs to cached :class:`RunStats` on disk."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Optional telemetry hook, called as ``on_event(kind, job)``
        #: with kind in {"hit", "miss", "put"} right after the counter
        #: update.  A pure side channel: it observes lookups, it cannot
        #: influence them (exceptions are swallowed), so cached bytes
        #: and cache keys are identical with or without a listener.
        self.on_event: Optional[Callable[[str, SimJob], None]] = None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def path_for(self, job: SimJob) -> str:
        key = cache_key(job)
        return os.path.join(self.root, key[:2], key + ".json")

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, job: SimJob) -> Optional[RunStats]:
        """Cached result of ``job``, or ``None``.

        A corrupt or truncated file (e.g. an interrupted write by an
        older, non-atomic writer) counts as a miss — the entry is simply
        recomputed and overwritten.
        """
        path = self.path_for(job)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            stats = RunStats.from_json_dict(doc["stats"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self._emit("miss", job)
            return None
        self.hits += 1
        self._emit("hit", job)
        return stats

    def _emit(self, kind: str, job: SimJob) -> None:
        if self.on_event is not None:
            try:
                self.on_event(kind, job)
            except Exception:  # noqa: BLE001 - telemetry never propagates
                pass

    def put(self, job: SimJob, stats: RunStats) -> str:
        """Store ``stats`` for ``job``; returns the file path.

        Concurrency-safe by compare-and-swap: the entry is staged in a
        temp file, then *linked* into place — an atomic create-if-absent,
        so when several writers race the same key (two ``repro serve``
        clients submitting one spec, a server and a CLI sharing a cache
        dir) exactly one publishes and the rest discard their staging
        file.  First-writer-wins is correct here because the simulator
        is deterministic: every racer is holding the same bytes.  A
        pre-existing *unreadable* entry (interrupted write by an older,
        non-atomic writer) is replaced via atomic rename instead, as is
        the whole entry on filesystems without hard links.  A concurrent
        reader therefore only ever sees a complete entry.
        """
        path = self.path_for(job)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        doc: Dict[str, object] = {
            "schema": CACHE_SCHEMA,
            "job": canonical_dict(job),
            "stats": stats.to_json_dict(),
        }
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            try:
                os.link(tmp_path, path)
            except FileExistsError:
                if not self._readable(path):
                    os.replace(tmp_path, path)
            except OSError:
                os.replace(tmp_path, path)
        finally:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        self.stores += 1
        self._emit("put", job)
        return path

    @staticmethod
    def _readable(path: str) -> bool:
        """True when ``path`` holds a parseable cache entry."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                json.load(fh)
            return True
        except (OSError, ValueError):
            return False

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def prune(self, max_age: Optional[float] = None,
              dry_run: bool = False) -> int:
        """Delete stale cache entries; returns the number removed.

        An entry is stale when its key no longer matches its contents'
        spec under the *current* versions (i.e. it was written by an
        older cost model or package version) — or, when ``max_age`` is
        given, when its file is older than that many seconds (by
        modification time).  With ``dry_run`` nothing is deleted; the
        return value is the number that *would* be removed.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        now = time.time()  # repro: allow-nondet(cache aging is wall-clock by definition; never reaches run output)
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(dirpath, name)
                stale = True
                try:
                    if max_age is not None \
                            and now - os.path.getmtime(path) > max_age:
                        raise _Expired
                    with open(path, "r", encoding="utf-8") as fh:
                        doc = json.load(fh)
                    job_doc = doc.get("job", {})
                    current = {
                        "schema": CACHE_SCHEMA,
                        "job": job_doc,
                        "cost_model_version": _cost_model_version(),
                        "package_version": _package_version(),
                    }
                    encoded = json.dumps(current, sort_keys=True,
                                         separators=(",", ":"))
                    expected = hashlib.sha256(
                        encoded.encode("utf-8")).hexdigest()
                    stale = name != expected + ".json"
                except (OSError, ValueError, _Expired):
                    stale = True
                if stale:
                    removed += 1
                    if not dry_run:
                        try:
                            os.unlink(path)
                        except OSError:
                            removed -= 1
        return removed


def _cost_model_version() -> int:
    from repro.core.software import costmodel

    return costmodel.COST_MODEL_VERSION


def _package_version() -> str:
    from repro import __version__

    return __version__
