"""Network fabric: message delivery with endpoint queue contention.

Matching NWO's stated fidelity (paper Section 3.2), contention is modelled
at the per-node transmit and receive queues — each serialises one flit per
cycle — while switch transit is an uncontended per-hop latency.  The
transmit queue is resolved at the *source* when a message is sent; the
receive queue is resolved at the *destination* when the message arrives.
Each message therefore costs two events (arrival and delivery), and every
piece of network state is local to exactly one node: transmit clocks to
the sender, receive clocks to the receiver.  That locality is what lets
the sharded runtime (:mod:`repro.sim.shard`) partition nodes across
processes — a cross-shard message carries only its arrival time and
event key, never shared clock state.

Point-to-point FIFO needs no explicit bookkeeping here: per (src, dst)
pair, arrival times are strictly increasing (the sender's transmit queue
serialises them and transit is constant per pair), and the receive clock
is monotone, so deliveries cannot reorder.  Senders that add composition
delays (``extra_delay``) enter the transmit queue late but still
serialise through it.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.network.topology import Mesh
from repro.obs.events import MessageSent
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import EventBus


class Message:
    """A message in flight.  ``payload`` is protocol-defined.

    Hot-path object: one is allocated per protocol message, which for a
    software-heavy run means millions per simulation.  ``__slots__``
    (hand-written rather than ``dataclass(slots=True)``, which needs
    Python 3.10) drops the per-instance ``__dict__`` — smaller, faster
    to allocate, faster attribute access in :meth:`Fabric.send`.
    """

    __slots__ = ("src", "dst", "kind", "size_flits", "payload",
                 "sent_at", "delivered_at")

    def __init__(self, src: int, dst: int, kind: str, size_flits: int,
                 payload: Any = None, sent_at: int = 0,
                 delivered_at: int = 0) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size_flits = size_flits
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, "
            f"kind={self.kind!r}, size_flits={self.size_flits!r}, "
            f"payload={self.payload!r}, sent_at={self.sent_at!r}, "
            f"delivered_at={self.delivered_at!r})"
        )


#: Handler invoked at the destination when a message is delivered.
Receiver = Callable[[Message], None]


class Fabric:
    """Delivers messages between nodes over a 2-D mesh."""

    def __init__(self, sim: Simulator, mesh: Mesh, hop_latency: int = 1) -> None:
        self.sim = sim
        self.mesh = mesh
        self.hop_latency = hop_latency
        #: transit cycles per (src, dst), flat-indexed ``src * n + dst``.
        #: Precomputed once: hop counts never change, and recomputing
        #: mesh coordinates per message was a measurable share of the
        #: send path in profiles.
        self._n_nodes = mesh.n_nodes
        self._transit = [h * hop_latency for h in mesh.hop_table()]
        self._tx_free = [0] * mesh.n_nodes
        self._rx_free = [0] * mesh.n_nodes
        #: last loopback delivery per node.  Loopback bypasses the
        #: transmit queue (it costs no queue time), so a later loopback
        #: composed faster could otherwise overtake an earlier one —
        #: e.g. a FETCH_INV passing the local WDATA grant it chases.
        #: Network channels need no such clamp: the transmit queue
        #: ratchets per-channel arrivals into send order.
        self._loop_last = [0] * mesh.n_nodes
        self._receivers: Dict[int, Receiver] = {}
        self.messages_delivered = 0
        self.flits_carried = 0
        #: observability bus (set by Machine.observe); probe sites stay
        #: a single None-check until someone is listening
        self.obs: Optional["EventBus"] = None

    def attach(self, node: int, receiver: Receiver) -> None:
        """Register the delivery callback for ``node``."""
        self._receivers[node] = receiver

    def send(self, msg: Message, extra_delay: int = 0) -> None:
        """Inject ``msg`` into the fabric.

        ``extra_delay`` delays entry into the transmit queue (e.g. the
        sender is a software handler still composing the message).
        The delivery time is not known here: the receive queue is
        resolved at arrival, on the destination node.
        """
        now = self.sim.now + extra_delay
        msg.sent_at = now
        src = msg.src
        size = msg.size_flits
        self.flits_carried += size

        if src == msg.dst:
            # Loopback (e.g. a node's own CMMU): charge no queue time,
            # but keep the channel FIFO (ties break in send order via
            # the owner-local event sequence).
            deliver = now + 1
            last = self._loop_last[src]
            if last > deliver:
                deliver = last
            self._loop_last[src] = deliver
            msg.delivered_at = deliver
            # partial beats a lambda here: calling it enters _deliver
            # directly from C instead of through an extra Python frame.
            self.sim.at(deliver, partial(self._deliver, msg))
            if self.obs is not None:
                self._notify(msg)
            return

        tx_free = self._tx_free
        tx_start = tx_free[src]
        if now > tx_start:
            tx_start = now
        tx_done = tx_start + size
        tx_free[src] = tx_done
        arrival = tx_done + self._transit[src * self._n_nodes + msg.dst]
        self._schedule_arrival(msg, arrival)

    def _schedule_arrival(self, msg: Message, arrival: int) -> None:
        """Schedule ``msg``'s arrival at its destination.

        Overridden by the sharded fabric: a cross-shard message's
        arrival event is shipped (with its sender-allocated key) to the
        shard that owns the destination instead of the local heap.
        """
        self.sim.at(arrival, partial(self._receive, msg))

    def _receive(self, msg: Message) -> None:
        """``msg`` arrived at its destination's receive queue.

        Runs at the arrival time, on the destination node's shard.  The
        simulation context is re-anchored to the destination: every
        event this delivery causes is keyed by the receiver's counters,
        which is what keeps cross-shard execution byte-identical to the
        serial engine.
        """
        sim = self.sim
        dst = msg.dst
        sim.current_owner = dst
        rx_free = self._rx_free
        rx_start = rx_free[dst]
        now = sim.now
        if now > rx_start:
            rx_start = now
        deliver = rx_start + msg.size_flits
        rx_free[dst] = deliver
        msg.delivered_at = deliver
        sim.at(deliver, partial(self._deliver, msg))
        if self.obs is not None:
            self._notify(msg)

    def _notify(self, msg: Message) -> None:
        """Emit a message probe event (repro.obs)."""
        obs = self.obs
        if obs is None or not obs.on_message:
            return
        obs.message(MessageSent(
            src=msg.src, dst=msg.dst, kind=msg.kind,
            size_flits=msg.size_flits, sent_at=msg.sent_at,
            delivered_at=msg.delivered_at,
            block=getattr(msg.payload, "block", None),
            txn=getattr(msg.payload, "txn", None),
        ))

    # ------------------------------------------------------------------
    # Introspection (read-only; used by the interval sampler)
    # ------------------------------------------------------------------

    def tx_backlog(self, node: int, now: int) -> int:
        """Cycles of queued work at ``node``'s transmit endpoint."""
        return max(0, self._tx_free[node] - now)

    def rx_backlog(self, node: int, now: int) -> int:
        """Cycles of queued work at ``node``'s receive endpoint."""
        return max(0, self._rx_free[node] - now)

    def _deliver(self, msg: Message) -> None:
        receiver: Optional[Receiver] = self._receivers.get(msg.dst)
        if receiver is None:
            raise RuntimeError(f"no receiver attached at node {msg.dst}")
        self.messages_delivered += 1
        receiver(msg)
