"""Network fabric: message delivery with endpoint queue contention.

Matching NWO's stated fidelity (paper Section 3.2), contention is modelled
at the per-node transmit and receive queues — each serialises one flit per
cycle — while switch transit is an uncontended per-hop latency.  Because
both queues are FIFO, the delivery time of a message can be computed
analytically at send time from two "queue free at" clocks per node, which
keeps the event count low (one event per delivery).
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.network.topology import Mesh
from repro.obs.events import MessageSent
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import EventBus


class Message:
    """A message in flight.  ``payload`` is protocol-defined.

    Hot-path object: one is allocated per protocol message, which for a
    software-heavy run means millions per simulation.  ``__slots__``
    (hand-written rather than ``dataclass(slots=True)``, which needs
    Python 3.10) drops the per-instance ``__dict__`` — smaller, faster
    to allocate, faster attribute access in :meth:`Fabric.send`.
    """

    __slots__ = ("src", "dst", "kind", "size_flits", "payload",
                 "sent_at", "delivered_at")

    def __init__(self, src: int, dst: int, kind: str, size_flits: int,
                 payload: Any = None, sent_at: int = 0,
                 delivered_at: int = 0) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size_flits = size_flits
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, "
            f"kind={self.kind!r}, size_flits={self.size_flits!r}, "
            f"payload={self.payload!r}, sent_at={self.sent_at!r}, "
            f"delivered_at={self.delivered_at!r})"
        )


#: Handler invoked at the destination when a message is delivered.
Receiver = Callable[[Message], None]


class Fabric:
    """Delivers messages between nodes over a 2-D mesh."""

    def __init__(self, sim: Simulator, mesh: Mesh, hop_latency: int = 1) -> None:
        self.sim = sim
        self.mesh = mesh
        self.hop_latency = hop_latency
        #: transit cycles per (src, dst), flat-indexed ``src * n + dst``.
        #: Precomputed once: hop counts never change, and recomputing
        #: mesh coordinates per message was a measurable share of the
        #: send path in profiles.
        self._n_nodes = mesh.n_nodes
        self._transit = [h * hop_latency for h in mesh.hop_table()]
        self._tx_free = [0] * mesh.n_nodes
        self._rx_free = [0] * mesh.n_nodes
        #: last delivery time per (src, dst) pair, to preserve FIFO order
        #: on each channel even when senders add composition delays
        self._pair_last: Dict[tuple, int] = {}
        self._receivers: Dict[int, Receiver] = {}
        self.messages_delivered = 0
        self.flits_carried = 0
        #: observability bus (set by Machine.observe); probe sites stay
        #: a single None-check until someone is listening
        self.obs: Optional["EventBus"] = None

    def attach(self, node: int, receiver: Receiver) -> None:
        """Register the delivery callback for ``node``."""
        self._receivers[node] = receiver

    def send(self, msg: Message, extra_delay: int = 0) -> int:
        """Inject ``msg``; returns its delivery time.

        ``extra_delay`` delays entry into the transmit queue (e.g. the
        sender is a software handler still composing the message).
        """
        now = self.sim.now + extra_delay
        msg.sent_at = now
        src = msg.src
        dst = msg.dst
        size = msg.size_flits

        if src == dst:
            # Loopback (e.g. a node's own CMMU): charge no queue time.
            deliver = now + 1
        else:
            tx_free = self._tx_free
            tx_start = tx_free[src]
            if now > tx_start:
                tx_start = now
            tx_done = tx_start + size
            tx_free[src] = tx_done
            arrival = tx_done + self._transit[src * self._n_nodes + dst]
            rx_free = self._rx_free
            rx_start = rx_free[dst]
            if arrival > rx_start:
                rx_start = arrival
            deliver = rx_start + size
            rx_free[dst] = deliver

        # Point-to-point FIFO: a later send on the same channel never
        # overtakes an earlier one (composition delays could otherwise
        # reorder, e.g. an invalidation passing the data grant it chases).
        pair_last = self._pair_last
        pair = (src, dst)
        last = pair_last.get(pair, 0)
        if last > deliver:
            deliver = last
        pair_last[pair] = deliver

        msg.delivered_at = deliver
        self.flits_carried += size
        # partial beats a lambda here: calling it enters _deliver
        # directly from C instead of through an extra Python frame.
        self.sim.at(deliver, partial(self._deliver, msg))
        if self.obs is not None:
            self._notify(msg)
        return deliver

    def _notify(self, msg: Message) -> None:
        """Emit a message probe event (repro.obs)."""
        obs = self.obs
        if obs is None or not obs.on_message:
            return
        obs.message(MessageSent(
            src=msg.src, dst=msg.dst, kind=msg.kind,
            size_flits=msg.size_flits, sent_at=msg.sent_at,
            delivered_at=msg.delivered_at,
            block=getattr(msg.payload, "block", None),
            txn=getattr(msg.payload, "txn", None),
        ))

    # ------------------------------------------------------------------
    # Introspection (read-only; used by the interval sampler)
    # ------------------------------------------------------------------

    def tx_backlog(self, node: int, now: int) -> int:
        """Cycles of queued work at ``node``'s transmit endpoint."""
        return max(0, self._tx_free[node] - now)

    def rx_backlog(self, node: int, now: int) -> int:
        """Cycles of queued work at ``node``'s receive endpoint."""
        return max(0, self._rx_free[node] - now)

    def _deliver(self, msg: Message) -> None:
        receiver: Optional[Receiver] = self._receivers.get(msg.dst)
        if receiver is None:
            raise RuntimeError(f"no receiver attached at node {msg.dst}")
        self.messages_delivered += 1
        receiver(msg)
