"""2-D mesh topology with dimension-ordered routing.

Alewife's interconnect is a mesh (Seitz-style); NWO models contention at
the CMMU transmit and receive queues but not within the switches, so the
only topological quantity the fabric needs is the hop count between two
nodes under dimension-ordered (X then Y) routing.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from repro.common.errors import ConfigurationError


class Mesh:
    """A ``side`` x ``side`` 2-D mesh of nodes numbered row-major."""

    def __init__(self, n_nodes: int) -> None:
        side = int(math.isqrt(n_nodes))
        if side * side != n_nodes or n_nodes < 1:
            raise ConfigurationError(
                f"mesh requires a square node count, got {n_nodes}"
            )
        self.n_nodes = n_nodes
        self.side = side

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``node``."""
        self._check(node)
        return node % self.side, node // self.side

    def node_at(self, x: int, y: int) -> int:
        """Node id at mesh coordinates (x, y)."""
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ConfigurationError(f"coordinates ({x}, {y}) out of range")
        return y * self.side + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def hop_table(self) -> List[int]:
        """Flat ``n_nodes * n_nodes`` table of hop counts.

        ``table[src * n_nodes + dst]`` equals :meth:`hops`; the fabric
        indexes this on every send instead of recomputing coordinates
        (with their range checks) per message.
        """
        side = self.side
        n = self.n_nodes
        table = [0] * (n * n)
        for src in range(n):
            sx, sy = src % side, src // side
            base = src * n
            for dst in range(n):
                table[base + dst] = (
                    abs(sx - dst % side) + abs(sy - dst // side)
                )
        return table

    def route(self, src: int, dst: int) -> List[int]:
        """Nodes visited under X-then-Y dimension-ordered routing."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.node_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.node_at(x, y))
        return path

    def neighbours(self, node: int) -> Iterator[int]:
        """Mesh neighbours of ``node``."""
        x, y = self.coords(node)
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            if 0 <= nx < self.side and 0 <= ny < self.side:
                yield self.node_at(nx, ny)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(f"node {node} out of range")
