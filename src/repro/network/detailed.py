"""Optional link-level network model (beyond NWO's fidelity).

NWO "models communication contention at the CMMU network transmit and
receive queues, but does not model contention within the network
switches" (paper Section 3.2) — and the default
:class:`~repro.network.fabric.Fabric` reproduces exactly that.  This
module adds the contention NWO leaves out: every directed mesh link a
message traverses under dimension-ordered routing is a serialised
resource, so messages crossing shared links queue behind each other.

Unlike the base fabric, delivery is computed analytically at send time
(one event per message): link reservations are global state, so there
is no per-node locality to exploit and no reason to split the path into
arrival and delivery events.  That same global state is why this model
cannot be sharded — ``--shards`` requires ``network_model="queues"``.

The ablation benchmark compares the two models to quantify how much the
paper's results could owe to the unmodelled switch contention (answer:
little, at these traffic levels — which supports NWO's simplification).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Tuple

from repro.network.fabric import Fabric, Message
from repro.network.topology import Mesh
from repro.sim.engine import Simulator

Link = Tuple[int, int]


class DetailedFabric(Fabric):
    """Fabric with per-link wormhole-style serialisation.

    A message reserves each directed link of its route in order; a link
    busy with an earlier message delays it.  Transit still costs
    ``hop_latency`` per hop for the head flit, plus the message length
    at the bottleneck link.
    """

    def __init__(self, sim: Simulator, mesh: Mesh,
                 hop_latency: int = 1) -> None:
        super().__init__(sim, mesh, hop_latency)
        self._link_free: Dict[Link, int] = {}
        #: last delivery time per (src, dst) pair: with link contention
        #: the analytic delivery times are not monotone per channel, so
        #: FIFO order needs an explicit clamp (the base fabric gets it
        #: for free from arrival-ordered receive queues).
        self._pair_last: Dict[Tuple[int, int], int] = {}
        self.link_wait_cycles = 0

    def send(self, msg: Message, extra_delay: int = 0) -> None:
        now = self.sim.now + extra_delay
        msg.sent_at = now

        if msg.src == msg.dst:
            deliver = now + 1
        else:
            tx_start = max(now, self._tx_free[msg.src])
            tx_done = tx_start + msg.size_flits
            self._tx_free[msg.src] = tx_done

            # The head flit advances hop by hop; each directed link is
            # occupied for the whole message length once the head passes.
            route = self.mesh.route(msg.src, msg.dst)
            head = tx_done
            for src_hop, dst_hop in zip(route, route[1:]):
                link = (src_hop, dst_hop)
                free_at = self._link_free.get(link, 0)
                if free_at > head:
                    self.link_wait_cycles += free_at - head
                    head = free_at
                head += self.hop_latency
                self._link_free[link] = head + msg.size_flits - 1

            arrival = head + msg.size_flits - 1
            rx_start = max(arrival, self._rx_free[msg.dst])
            deliver = rx_start + 1
            self._rx_free[msg.dst] = rx_start + msg.size_flits

        pair = (msg.src, msg.dst)
        last = self._pair_last.get(pair, 0)
        deliver = max(deliver, last)
        self._pair_last[pair] = deliver

        msg.delivered_at = deliver
        self.flits_carried += msg.size_flits
        # The delivery event is owned by the receiving node: send() runs
        # in the sender's event context, and two same-channel messages
        # clamped to the same delivery cycle must sort in send order —
        # per-receiver sequence numbers give exactly that, while a
        # sender-context owner would order them arbitrarily.
        self.sim.at(deliver, partial(self._deliver, msg), owner=msg.dst)
        if self.obs is not None:
            self._notify(msg)
