"""Interconnect: 2-D mesh topology and the contention-modelling fabric."""

from repro.network.detailed import DetailedFabric
from repro.network.fabric import Fabric, Message
from repro.network.topology import Mesh

__all__ = ["DetailedFabric", "Fabric", "Mesh", "Message"]
