"""Shared primitive types used across the simulator.

Addresses are plain integers counting 32-bit *words*.  A cache/memory
*block* (line) is ``block_words`` consecutive words; block identifiers are
``addr >> block_shift``.  Keeping these as ints (rather than wrapper
classes) keeps the inner simulation loops fast.
"""

from __future__ import annotations

import enum

#: Type aliases, for documentation purposes.  Node ids are ``0..n-1``;
#: addresses and block ids are non-negative ints.
NodeId = int
Address = int
BlockId = int


class AccessType(enum.Enum):
    """Kind of memory access issued by a processor."""

    READ = "read"
    WRITE = "write"
    IFETCH = "ifetch"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


class CacheState(enum.Enum):
    """State of a line in a processor cache (MSI-style, Alewife naming).

    ``READ_ONLY`` corresponds to a shared clean copy; ``READ_WRITE`` to an
    exclusive, writable (and presumed dirty) copy.
    """

    INVALID = "invalid"
    READ_ONLY = "read_only"
    READ_WRITE = "read_write"

    @property
    def readable(self) -> bool:
        return self is not CacheState.INVALID

    @property
    def writable(self) -> bool:
        return self is CacheState.READ_WRITE


class DirState(enum.Enum):
    """Home-side hardware directory states (Alewife CMMU naming).

    ``READ_TRANSACTION`` / ``WRITE_TRANSACTION`` are the transient states
    during which the hardware answers new requests with BUSY messages,
    which is Alewife's livelock-free retry mechanism.
    """

    ABSENT = "absent"
    READ_ONLY = "read_only"
    READ_WRITE = "read_write"
    READ_TRANSACTION = "read_transaction"
    WRITE_TRANSACTION = "write_transaction"

    @property
    def transient(self) -> bool:
        return self in (DirState.READ_TRANSACTION, DirState.WRITE_TRANSACTION)


class TrapKind(enum.Enum):
    """Reasons the CMMU interrupts the local processor for protocol work."""

    READ_OVERFLOW = "read_overflow"
    WRITE_EXTENDED = "write_extended"
    ACK_SOFTWARE = "ack_software"
    ACK_LAST = "ack_last"
    LOCAL_FAULT = "local_fault"
    REMOTE_REQUEST = "remote_request"


def block_of(addr: Address, block_shift: int) -> BlockId:
    """Return the block id containing word address ``addr``."""
    return addr >> block_shift


def block_base(block: BlockId, block_shift: int) -> Address:
    """Return the first word address of ``block``."""
    return block << block_shift
