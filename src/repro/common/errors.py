"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so that callers can
catch everything the package raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A machine, protocol, or workload was configured inconsistently."""


class ProtocolSpecError(ConfigurationError, ValueError):
    """A protocol-notation string or spec could not be parsed/validated.

    Also a :class:`ValueError`: malformed protocol names are plain bad
    input, so callers validating user-supplied names (CLI options,
    config files) can use the idiomatic ``except ValueError``.
    """


class ProtocolStateError(ReproError):
    """An illegal protocol state transition was attempted.

    Raising (rather than silently recovering) turns coherence bugs into
    immediate, debuggable failures — the simulator is deterministic, so a
    failing run can always be replayed.
    """


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency."""


class DeadlockError(SimulationError):
    """The event queue drained while processors were still blocked."""


class AllocationError(ReproError):
    """The shared-memory heap could not satisfy an allocation request."""


class WorkloadError(ReproError):
    """A workload coroutine yielded a malformed operation."""
