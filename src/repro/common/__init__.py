"""Common primitive types and errors shared across the package."""

from repro.common.errors import (
    AllocationError,
    ConfigurationError,
    DeadlockError,
    ProtocolSpecError,
    ProtocolStateError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.common.types import (
    AccessType,
    Address,
    BlockId,
    CacheState,
    DirState,
    NodeId,
    TrapKind,
    block_base,
    block_of,
)

__all__ = [
    "AccessType",
    "Address",
    "AllocationError",
    "BlockId",
    "CacheState",
    "ConfigurationError",
    "DeadlockError",
    "DirState",
    "NodeId",
    "ProtocolSpecError",
    "ProtocolStateError",
    "ReproError",
    "SimulationError",
    "TrapKind",
    "WorkloadError",
    "block_base",
    "block_of",
]
