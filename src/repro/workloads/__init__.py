"""Workloads: the WORKER synthetic benchmark and the six applications."""

from repro.workloads.aq import ANALYTIC_RESULT, AdaptiveQuadrature
from repro.workloads.base import Op, Workload, det_rand, det_uniform
from repro.workloads.evolve import Evolve
from repro.workloads.mp3d import MP3D
from repro.workloads.smgrid import StaticMultigrid
from repro.workloads.synthetic import SyntheticSharing, figure6_like_histogram
from repro.workloads.tsp import TSP, held_karp, tour_distances
from repro.workloads.water import Water
from repro.workloads.worker import WorkerBenchmark

__all__ = [
    "ANALYTIC_RESULT",
    "AdaptiveQuadrature",
    "Evolve",
    "MP3D",
    "Op",
    "StaticMultigrid",
    "SyntheticSharing",
    "TSP",
    "Water",
    "Workload",
    "WorkerBenchmark",
    "det_rand",
    "det_uniform",
    "figure6_like_histogram",
    "held_karp",
    "tour_distances",
]
