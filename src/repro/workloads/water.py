"""WATER: molecular dynamics of water molecules (paper Section 6; SPLASH).

Each node owns ``m / p`` molecules.  Every time step it computes the
pairwise interactions of its molecules with *all* molecules — reading
every other molecule's state block — then updates its own molecules'
positions and publishes them (one write per owned molecule, invalidating
every reader).  Molecule blocks therefore have large *read* worker sets
but are written only once per step by one node, so all of the
software-extended protocols achieve good speedups on WATER, and the
software-only directory reaches roughly 70% of full map (Figure 4f) —
its traps are dominated by the once-per-step refetch of each molecule.

The forces are a deterministic soft inverse-square interaction with a
cutoff; tests check momentum conservation and determinism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload, det_uniform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: processor cycles per pairwise interaction (the O(m^2/2) inner loop)
PAIR_CYCLES = 700

#: processor cycles to integrate one molecule's motion
INTEGRATE_CYCLES = 400

#: interaction cutoff distance (box units)
CUTOFF = 0.5


class Molecule:
    """State of one water molecule (centre of mass)."""

    __slots__ = ("x", "y", "vx", "vy", "fx", "fy")

    def __init__(self, x: float, y: float, vx: float, vy: float) -> None:
        self.x, self.y = x, y
        self.vx, self.vy = vx, vy
        self.fx, self.fy = 0.0, 0.0


class Water(Workload):
    """O(m^2/2) molecular dynamics with owner-writes/global-reads."""

    name = "water"

    def __init__(self, n_molecules: int = 64, steps: int = 3,
                 dt: float = 0.01, seed: int = 31) -> None:
        if n_molecules < 2 or steps < 1:
            raise ConfigurationError("invalid WATER configuration")
        self.n_molecules = n_molecules
        self.steps = steps
        self.dt = dt
        self.seed = seed
        self.molecules: List[Molecule] = []
        self.initial_momentum: Tuple[float, float] = (0.0, 0.0)
        self.final_momentum: Tuple[float, float] = (0.0, 0.0)
        self.interactions: int = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, machine: "Machine") -> None:
        n_nodes = machine.params.n_nodes
        heap = machine.heap
        self._code = machine.register_code("water-forces", lines=2)
        per_node = -(-self.n_molecules // n_nodes)
        self._owned: List[List[int]] = []
        self.mol_addrs: List[int] = [0] * self.n_molecules
        for node in range(n_nodes):
            owned = [m for m in range(self.n_molecules)
                     if m // per_node == node]
            self._owned.append(owned)
            for m in owned:
                self.mol_addrs[m] = heap.alloc_block(node)
        # Deterministic initial state with zero net momentum.
        self.molecules = []
        for m in range(self.n_molecules):
            self.molecules.append(Molecule(
                x=det_uniform(0.0, 1.0, self.seed, m, 1),
                y=det_uniform(0.0, 1.0, self.seed, m, 2),
                vx=det_uniform(-0.02, 0.02, self.seed, m, 3),
                vy=det_uniform(-0.02, 0.02, self.seed, m, 4),
            ))
        mean_vx = sum(mol.vx for mol in self.molecules) / self.n_molecules
        mean_vy = sum(mol.vy for mol in self.molecules) / self.n_molecules
        for mol in self.molecules:
            mol.vx -= mean_vx
            mol.vy -= mean_vy
        self.initial_momentum = self._momentum()
        self.final_momentum = self.initial_momentum
        self.interactions = 0
        #: freshly computed forces, committed at the phase barrier
        self._pending_forces: List[Tuple[float, float]] = []

    def _momentum(self) -> Tuple[float, float]:
        return (sum(m.vx for m in self.molecules),
                sum(m.vy for m in self.molecules))

    # ------------------------------------------------------------------
    # Physics (reads the barrier-consistent snapshot)
    # ------------------------------------------------------------------

    def _force_on(self, index: int) -> Tuple[float, float]:
        """Soft 1/r^2 repulsion with cutoff, minimum-image wrap."""
        me = self.molecules[index]
        fx = fy = 0.0
        for other_index, other in enumerate(self.molecules):
            if other_index == index:
                continue
            dx = me.x - other.x
            dy = me.y - other.y
            dx -= round(dx)  # periodic box of size 1
            dy -= round(dy)
            r2 = dx * dx + dy * dy
            if r2 > CUTOFF * CUTOFF or r2 == 0.0:
                continue
            strength = 1e-4 / (r2 + 1e-3)
            fx += strength * dx
            fy += strength * dy
        return fx, fy

    def _integrate(self, index: int, fx: float, fy: float) -> None:
        mol = self.molecules[index]
        mol.vx += fx * self.dt
        mol.vy += fy * self.dt
        mol.x = (mol.x + mol.vx * self.dt) % 1.0
        mol.y = (mol.y + mol.vy * self.dt) % 1.0

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        code = self._code
        owned = self._owned[node_id]
        forces: List[Tuple[int, float, float]] = []
        for _step in range(self.steps):
            # Force phase: read every other molecule once (cached across
            # the inner loops of this step), compute pair interactions.
            forces.clear()
            for mine in owned:
                # Visit the other molecules starting just after our own
                # index, so the nodes fan out over different home nodes
                # instead of stampeding molecule 0 together.
                for k in range(1, self.n_molecules):
                    other = (mine + k) % self.n_molecules
                    yield ("read", self.mol_addrs[other])
                    yield ("compute", PAIR_CYCLES, code)
                    self.interactions += 1
                fx, fy = self._force_on(mine)
                forces.append((mine, fx, fy))
            yield ("barrier",)
            # Update phase: integrate and publish the owned molecules.
            for mine, fx, fy in forces:
                yield ("compute", INTEGRATE_CYCLES, code)
                self._integrate(mine, fx, fy)
                yield ("write", self.mol_addrs[mine])
            yield ("barrier",)
        if node_id == 0:
            self.final_momentum = self._momentum()
        yield ("barrier",)
