"""SMGRID: static multigrid PDE solver (paper Section 6).

Solves a Poisson problem on a square grid with the multigrid method:
Jacobi relaxation sweeps on a pyramid of grids of decreasing resolution,
with restriction down and prolongation back up (V-cycles).  Two
properties drive its protocol behaviour, per the paper:

- only a subset of nodes works during relaxation on the upper (coarse)
  levels of the pyramid, limiting the achievable speedup, and
- data is more widely shared than in TSP or AQ, which separates the
  protocols.

The grid is 2-D tiled: each active node owns a tile, stored as one
row-segment allocation per grid row crossing the tile.  A relaxation
sweep reads the four halo segments around each row (vertical neighbours'
boundary rows, horizontal neighbours' edge columns), so tile-edge blocks
are shared by up to four nodes; the inter-level transfers add the
overlapping fine/coarse owners as readers, pushing coarse-level worker
sets past five nodes — exactly the "more widely shared" data that makes
the software-extended protocols separate.

The numerics are real: tests check that the V-cycles reduce the residual
of the discrete Poisson equation.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterator, List, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: processor cycles per 5-point stencil update (floating-point
#: loads, adds and the divide, as on Sparcle with the FPU)
POINT_CYCLES = 40


class Level:
    """One grid level: geometry, tiling, shared storage, and values."""

    def __init__(self, n: int, side: int) -> None:
        self.n = n  # grid is (n+1) x (n+1); interior points 1..n-1
        self.side = side  # tile grid is side x side
        self.u = [[0.0] * (n + 1) for _ in range(n + 1)]
        self.rhs = [[0.0] * (n + 1) for _ in range(n + 1)]
        self.new_rows: Dict[Tuple[int, int], List[float]] = {}
        #: tile index of each grid line (rows and columns use the same map)
        self.tile_of: List[int] = [self._tile(p) for p in range(n + 1)]
        #: interior points per tile index
        self.tile_points: List[List[int]] = [
            [p for p in range(1, n) if self.tile_of[p] == t]
            for t in range(side)
        ]
        #: (row, tile_col) -> shared segment address
        self.seg_addr: Dict[Tuple[int, int], int] = {}

    def _tile(self, point: int) -> int:
        if point <= 1:
            return 0
        return min((point - 1) * self.side // (self.n - 1), self.side - 1)

    @property
    def h(self) -> float:
        return 1.0 / self.n

    def owner(self, tile_row: int, tile_col: int) -> int:
        return tile_row * self.side + tile_col

    def active_nodes(self) -> int:
        return self.side * self.side


class StaticMultigrid(Workload):
    """Multigrid V-cycles over a pyramid of 2-D tiled grids."""

    name = "smgrid"

    def __init__(self, n: int = 128, levels: int = 5, v_cycles: int = 2,
                 pre_sweeps: int = 2, post_sweeps: int = 1) -> None:
        if n & (n - 1) or n < 8:
            raise ConfigurationError("grid size must be a power of two >= 8")
        if levels < 2 or (n >> (levels - 1)) < 2:
            raise ConfigurationError("too many levels for this grid")
        self.n = n
        self.n_levels = levels
        self.v_cycles = v_cycles
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps
        self.levels: List[Level] = []
        self.initial_residual: float = 0.0
        self.final_residual: float = 0.0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, machine: "Machine") -> None:
        n_nodes = machine.params.n_nodes
        heap = machine.heap
        self._code = machine.register_code("smgrid-relax", lines=2)
        mesh_side = int(math.isqrt(n_nodes))
        self.levels = []
        size = self.n
        for _depth in range(self.n_levels):
            side = min(mesh_side, size - 1)
            level = Level(size, side)
            for i in range(size + 1):
                tile_row = level.tile_of[i]
                for tc in range(side):
                    words = len(level.tile_points[tc]) + 2
                    owner = level.owner(tile_row, tc)
                    level.seg_addr[(i, tc)] = heap.alloc(owner, words)
            self.levels.append(level)
            size //= 2
        # Poisson problem: -lap(u) = rhs, true solution x(1-x)y(1-y).
        fine = self.levels[0]
        h = fine.h
        for i in range(fine.n + 1):
            for j in range(fine.n + 1):
                x, y = i * h, j * h
                fine.rhs[i][j] = 2.0 * x * (1.0 - x) + 2.0 * y * (1.0 - y)
        self.initial_residual = self._residual(fine)
        self.final_residual = self.initial_residual

    # ------------------------------------------------------------------
    # Numerics (committed at barrier-separated phase boundaries)
    # ------------------------------------------------------------------

    def _residual(self, level: Level) -> float:
        total = 0.0
        n = level.n
        h2 = level.h * level.h
        u = level.u
        for i in range(1, n):
            for j in range(1, n):
                lap = (4.0 * u[i][j] - u[i - 1][j] - u[i + 1][j]
                       - u[i][j - 1] - u[i][j + 1]) / h2
                r = level.rhs[i][j] - lap
                total += r * r
        return total ** 0.5

    def _relax_segment(self, level: Level, i: int,
                       cols: List[int]) -> List[float]:
        h2 = level.h * level.h
        u = level.u
        return [
            (u[i - 1][j] + u[i + 1][j] + u[i][j - 1] + u[i][j + 1]
             + h2 * level.rhs[i][j]) / 4.0
            for j in cols
        ]

    def _commit(self, level: Level) -> None:
        for (i, tc), values in level.new_rows.items():
            for j, value in zip(level.tile_points[tc], values):
                level.u[i][j] = value
        level.new_rows.clear()

    def _restrict(self, fine: Level, coarse: Level) -> None:
        n = coarse.n
        h2 = fine.h * fine.h
        u = fine.u
        for i in range(1, n):
            for j in range(1, n):
                fi, fj = 2 * i, 2 * j
                lap = (4.0 * u[fi][fj] - u[fi - 1][fj] - u[fi + 1][fj]
                       - u[fi][fj - 1] - u[fi][fj + 1]) / h2
                coarse.rhs[i][j] = fine.rhs[fi][fj] - lap
                coarse.u[i][j] = 0.0

    def _prolong(self, coarse: Level, fine: Level) -> None:
        n = fine.n
        cu = coarse.u
        for i in range(1, n):
            for j in range(1, n):
                ci, ri = divmod(i, 2)
                cj, rj = divmod(j, 2)
                if ri == 0 and rj == 0:
                    corr = cu[ci][cj]
                elif ri == 0:
                    corr = (cu[ci][cj] + cu[ci][cj + 1]) / 2.0
                elif rj == 0:
                    corr = (cu[ci][cj] + cu[ci + 1][cj]) / 2.0
                else:
                    corr = (cu[ci][cj] + cu[ci][cj + 1]
                            + cu[ci + 1][cj] + cu[ci + 1][cj + 1]) / 4.0
                fine.u[i][j] += corr

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def _tile_coords(self, level: Level, node_id: int) -> "Tuple[int, int] | None":
        if node_id >= level.active_nodes():
            return None
        return divmod(node_id, level.side)

    def _sweep(self, level: Level, node_id: int) -> Iterator[Op]:
        code = self._code
        coords = self._tile_coords(level, node_id)
        if coords is None:
            yield ("barrier",)
            yield ("barrier",)
            return
        tr, tc = coords
        rows = level.tile_points[tr]
        width = len(level.tile_points[tc])
        for i in rows:
            # Stencil reads: the three vertically adjacent segments in my
            # tile column, plus the horizontally adjacent segments that
            # hold the edge columns.
            for r in (i - 1, i, i + 1):
                yield ("read", level.seg_addr[(r, tc)])
            if tc > 0:
                yield ("read", level.seg_addr[(i, tc - 1)])
            if tc < level.side - 1:
                yield ("read", level.seg_addr[(i, tc + 1)])
            yield ("compute", POINT_CYCLES * width, code)
            level.new_rows[(i, tc)] = self._relax_segment(
                level, i, level.tile_points[tc])
            yield ("write", level.seg_addr[(i, tc)])
        yield ("barrier",)
        if node_id == 0:
            self._commit(level)
        yield ("barrier",)

    def _transfer(self, src: Level, dst: Level, node_id: int,
                  down: bool) -> Iterator[Op]:
        """Restriction (down) / prolongation (up) memory traffic: the
        owner of each destination segment reads the source segments that
        overlap it."""
        code = self._code
        coords = self._tile_coords(dst, node_id)
        if coords is None:
            yield ("barrier",)
            return
        tr, tc = coords
        rows = dst.tile_points[tr]
        cols = dst.tile_points[tc]
        if down:
            src_cols: Set[int] = {src.tile_of[2 * j] for j in cols}
        else:
            src_cols = {src.tile_of[j // 2] for j in cols}
            src_cols.update(src.tile_of[min(j // 2 + 1, src.n - 1)]
                            for j in cols)
        for i in rows:
            if down:
                src_rows = (2 * i - 1, 2 * i, 2 * i + 1)
            else:
                ci = i // 2
                src_rows = tuple({max(ci, 1), min(ci + 1, src.n - 1)})
            for r in src_rows:
                for sc in sorted(src_cols):
                    yield ("read", src.seg_addr[(r, sc)])
            yield ("compute", POINT_CYCLES * len(cols), code)
            yield ("write", dst.seg_addr[(i, tc)])
        yield ("barrier",)

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        levels = self.levels
        for _cycle in range(self.v_cycles):
            # Down-leg: relax, then restrict the residual.
            for depth in range(self.n_levels - 1):
                level = levels[depth]
                for _s in range(self.pre_sweeps):
                    for op in self._sweep(level, node_id):
                        yield op
                for op in self._transfer(level, levels[depth + 1],
                                         node_id, down=True):
                    yield op
                if node_id == 0:
                    self._restrict(level, levels[depth + 1])
                yield ("barrier",)
            # Coarsest level: extra relaxation.
            for _s in range(self.pre_sweeps + self.post_sweeps):
                for op in self._sweep(levels[-1], node_id):
                    yield op
            # Up-leg: prolong the correction, then relax.
            for depth in range(self.n_levels - 2, -1, -1):
                level = levels[depth]
                for op in self._transfer(levels[depth + 1], level,
                                         node_id, down=False):
                    yield op
                if node_id == 0:
                    self._prolong(levels[depth + 1], level)
                yield ("barrier",)
                for _s in range(self.post_sweeps):
                    for op in self._sweep(level, node_id):
                        yield op
        yield ("barrier",)
        if node_id == 0:
            self.final_residual = self._residual(levels[0])
        yield ("barrier",)
