"""TSP: branch-and-bound traveling salesman (paper Section 6).

The application solves the traveling salesman problem with a
branch-and-bound graph search.  As in the paper, the best-path bound is
seeded with the optimal tour length so the amount of work is
deterministic and identical across protocol configurations.

Sharing pattern: most worker sets are small (per-node partial tours), but
two memory blocks — the seeded best bound and a global tour counter — are
read by *every* node.  The paper found exactly two such globally-shared
blocks "constantly replaced in the cache by commonly run instructions" in
Alewife's combined direct-mapped cache.  We model the commonly-run
instructions as the Mul-T runtime's code region, fetched once every
``runtime_period`` expansions; with ``thrash_layout=True`` (the default,
matching the paper's initial runs) it is laid out to conflict with the
two hot blocks, so every runtime invocation evicts them and the next
bound check misses all the way to node 0.  Victim caching (Alewife's fix)
or the *perfect ifetch* simulator option relieves the thrashing —
reproducing the three bar groups of Figure 3.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload, det_rand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: processor work per tree-node expansion (bound arithmetic, future
#: touch/scheduling overhead of the Mul-T program)
EXPAND_CYCLES = 200

#: expansions between invocations of the "commonly run" runtime code
RUNTIME_PERIOD = 8


def tour_distances(n_cities: int, seed: int = 7) -> List[List[int]]:
    """Deterministic symmetric distance matrix with distances 10..99."""
    dist = [[0] * n_cities for _ in range(n_cities)]
    for i in range(n_cities):
        for j in range(i + 1, n_cities):
            d = 10 + det_rand(seed, i, j) % 90
            dist[i][j] = dist[j][i] = d
    return dist


def held_karp(dist: List[List[int]]) -> int:
    """Exact optimal tour length (dynamic programming over subsets)."""
    n = len(dist)
    if n < 2:
        return 0
    full = 1 << (n - 1)  # subsets of cities 1..n-1
    # best[mask][j]: shortest path 0 -> visits mask -> ends at city j+1
    best: List[Dict[int, int]] = [dict() for _ in range(full)]
    for j in range(n - 1):
        best[1 << j][j] = dist[0][j + 1]
    for mask in range(full):
        for j, cost in best[mask].items():
            rest = ~mask & (full - 1)
            sub = rest
            while sub:
                k = (sub & -sub).bit_length() - 1
                new_mask = mask | (1 << k)
                new_cost = cost + dist[j + 1][k + 1]
                cur = best[new_mask].get(k)
                if cur is None or new_cost < cur:
                    best[new_mask][k] = new_cost
                sub &= sub - 1
    final = full - 1
    return min(cost + dist[j + 1][0] for j, cost in best[final].items())


_OPTIMAL_CACHE: Dict[Tuple[int, int], int] = {}


def _optimal_tour_length(n_cities: int, seed: int) -> int:
    """Memoised optimal tour length (setup cost, not simulated)."""
    key = (n_cities, seed)
    if key not in _OPTIMAL_CACHE:
        _OPTIMAL_CACHE[key] = held_karp(tour_distances(n_cities, seed))
    return _OPTIMAL_CACHE[key]


class TSP(Workload):
    """Branch-and-bound TSP with a deterministic (seeded) bound."""

    name = "tsp"

    def __init__(self, n_cities: int = 12, prefix_depth: int = 4,
                 thrash_layout: bool = True, seed: int = 7,
                 runtime_period: int = RUNTIME_PERIOD) -> None:
        if n_cities < 4:
            raise ConfigurationError("TSP needs at least 4 cities")
        if not 1 <= prefix_depth < n_cities - 1:
            raise ConfigurationError("invalid prefix depth")
        if runtime_period < 1:
            raise ConfigurationError("runtime period must be >= 1")
        self.n_cities = n_cities
        self.prefix_depth = prefix_depth
        self.thrash_layout = thrash_layout
        self.seed = seed
        self.runtime_period = runtime_period
        self.dist = tour_distances(n_cities, seed)
        self.optimal = _optimal_tour_length(n_cities, seed)
        #: minimum outgoing edge per city, for the lower bound
        self._min_out = [
            min(d for j, d in enumerate(row) if j != i)
            for i, row in enumerate(self.dist)
        ]
        self.best_found: int = 0
        self.expansions: int = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, machine: "Machine") -> None:
        n = self.n_cities
        heap = machine.heap
        self._code = machine.register_code("tsp-search", lines=2)
        self._runtime_code = machine.register_code("mult-runtime", lines=2)
        # The two hot globally-shared blocks.  With the thrash layout they
        # collide with the runtime's instruction lines in the
        # direct-mapped cache.
        colors = (self._runtime_code.cache_colors if self.thrash_layout
                  else (None, None))
        self.best_addr = heap.alloc_block(0, color=colors[0])
        self.count_addr = heap.alloc_block(0, color=colors[1])
        # Distance matrix: rows homed round-robin across the machine
        # (the runtime distributes read-only data), so the start-up
        # transient of shipping it everywhere does not serialise at one
        # home node.
        n_nodes = machine.params.n_nodes
        self.dist_rows = [heap.alloc(i % n_nodes, n) for i in range(n)]
        # Per-node result slots (read by node 0 during the reduction).
        self.result_addrs = [
            heap.alloc_block(node) for node in range(machine.params.n_nodes)
        ]
        # Private scratch (partial tours) in each node's local memory.
        self._scratch = [
            heap.alloc(node, machine.params.block_words * 4)
            for node in range(machine.params.n_nodes)
        ]
        self._prefixes = [
            (0,) + p
            for p in itertools.permutations(range(1, n), self.prefix_depth)
        ]
        self.best_found = 0
        self.expansions = 0

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _lower_bound(self, remaining: frozenset) -> int:
        return sum(self._min_out[c] for c in remaining)

    def _prefix_cost(self, prefix: Tuple[int, ...]) -> int:
        return sum(self.dist[a][b] for a, b in zip(prefix, prefix[1:]))

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        n_nodes = machine.params.n_nodes
        code = self._code
        runtime_code = self._runtime_code
        best = self.optimal  # the seeded bound
        local_best = None
        local_expansions = 0

        # Read the bound and counter once up front; distance rows are
        # pulled in lazily as the search first touches them, which
        # spreads the start-up distribution transient over time.
        yield ("read", self.best_addr)
        yield ("read", self.count_addr)
        yield ("barrier",)

        all_cities = frozenset(range(self.n_cities))
        for index, prefix in enumerate(self._prefixes):
            if index % n_nodes != node_id:
                continue
            # Depth-first branch and bound below this prefix.
            stack = [(prefix, self._prefix_cost(prefix))]
            while stack:
                path, cost = stack.pop()
                self.expansions += 1
                local_expansions += 1
                if local_expansions % self.runtime_period == 0:
                    # The Mul-T runtime runs (task bookkeeping); its
                    # instruction lines may evict the hot shared blocks.
                    yield ("compute", 24, runtime_code)
                yield ("compute", EXPAND_CYCLES, code)
                yield ("read", self.count_addr)
                yield ("read", self.best_addr)
                yield ("read", self.dist_rows[path[-1]])
                remaining = all_cities.difference(path)
                if not remaining:
                    total = cost + self.dist[path[-1]][0]
                    yield ("write", self._scratch[node_id])
                    if total <= best:
                        best = total
                        local_best = total
                    continue
                if cost + self._lower_bound(remaining) > best:
                    continue  # pruned
                for child in sorted(remaining, reverse=True):
                    stack.append((path + (child,),
                                  cost + self.dist[path[-1]][child]))

        # Publish the node's best and reduce on node 0.
        yield ("compute", 10, code)
        yield ("write", self.result_addrs[node_id])
        if local_best is not None:
            self.best_found = (min(self.best_found, local_best)
                               if self.best_found else local_best)
        yield ("barrier",)
        if node_id == 0:
            for addr in self.result_addrs:
                yield ("read", addr)
            yield ("compute", 20, code)
            yield ("write", self.best_addr)
        yield ("barrier",)
