"""Workload API.

A workload is an SPMD program: :meth:`Workload.setup` allocates shared
structures on the machine's heap, then :meth:`Workload.thread` returns a
generator of architectural operations for each node:

- ``("compute", cycles)`` / ``("compute", cycles, code_ref)``
- ``("read", addr)`` / ``("write", addr)``
- ``("barrier",)``

Workloads compute *real* results (a tour length, an integral, a relaxed
grid) so tests can check correctness, and they must be deterministic:
given the same machine parameters, two runs produce identical traces.
Any randomness must come from :func:`det_rand`, a deterministic hash
mixer — never from :mod:`random` global state.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

Op = Tuple


class Workload(abc.ABC):
    """Base class for all benchmarks and applications."""

    #: short identifier used in reports
    name: str = "workload"

    #: Whether every thread's op stream depends only on the machine
    #: parameters and its own ``node_id``.  Python-side *aggregates*
    #: (result reductions, statistics counters) may couple threads
    #: freely — they never reach RunStats — but a thread whose
    #: *yielded ops* depend on state mutated by other nodes' threads
    #: must set this False: the sharded runtime
    #: (:mod:`repro.sim.shard`) runs each node's generator in the
    #: process that owns it, so such streams would silently diverge
    #: from the serial interleaving.  ``Machine.run`` falls back to
    #: the (byte-identical) serial engine when this is False.
    shard_safe: bool = True

    @abc.abstractmethod
    def setup(self, machine: "Machine") -> None:
        """Allocate shared data on ``machine`` before threads start."""

    @abc.abstractmethod
    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        """The operation stream executed by ``node_id``."""


def det_rand(*keys: int) -> int:
    """Deterministic 64-bit hash mixer (splitmix64-style) over ``keys``.

    Used for reproducible pseudo-random workload data; unlike
    :mod:`random`, the result depends only on the arguments.
    """
    x = 0x9E3779B97F4A7C15
    for key in keys:
        x ^= (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
    return x


def det_uniform(lo: float, hi: float, *keys: int) -> float:
    """Deterministic float in ``[lo, hi)`` derived from ``keys``."""
    return lo + (hi - lo) * (det_rand(*keys) / 2.0 ** 64)
