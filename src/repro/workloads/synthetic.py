"""Configurable synthetic sharing generator.

WORKER (Section 5) builds memory blocks with one exact worker-set size.
This generator builds a *population* of blocks following an arbitrary
worker-set-size histogram — e.g. the EVOLVE-like log-decaying mix of
Figure 6 — and drives read/write traffic over them.  It is the tool for
asking "how would a protocol behave on an application whose sharing
looks like X?" without writing the application.

Reader sets are chosen deterministically per block; writers are the
block's home by default (matching WORKER) or a rotating member of the
worker set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload, det_rand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: compute cycles between accesses
THINK_CYCLES = 30


class SyntheticSharing(Workload):
    """Traffic over a block population with a given worker-set mix.

    Parameters
    ----------
    histogram:
        worker-set size -> number of blocks with that size.  Sizes are
        capped at ``n_nodes - 1`` (the writer is extra, as in WORKER).
    iterations:
        read/write rounds (each separated by barriers).
    write_fraction:
        fraction of blocks written each round (deterministic choice).
    seed:
        selects reader sets and homes.
    """

    name = "synthetic"

    def __init__(self, histogram: Mapping[int, int], iterations: int = 3,
                 write_fraction: float = 0.5, seed: int = 42) -> None:
        if not histogram:
            raise ConfigurationError("histogram must be non-empty")
        if any(size < 1 or count < 0 for size, count in histogram.items()):
            raise ConfigurationError("invalid histogram entry")
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        self.histogram = dict(histogram)
        self.iterations = iterations
        self.write_fraction = write_fraction
        self.seed = seed
        #: per-node work lists, built at setup
        self.read_lists: List[List[int]] = []
        self.write_lists: List[List[int]] = []
        self.blocks_built = 0

    def setup(self, machine: "Machine") -> None:
        n = machine.params.n_nodes
        heap = machine.heap
        self._code = machine.register_code("synthetic-loop", lines=1)
        self.read_lists = [[] for _ in range(n)]
        self.write_lists = [[] for _ in range(n)]
        self.blocks_built = 0
        index = 0
        for size in sorted(self.histogram):
            count = self.histogram[size]
            capped = min(size, max(n - 1, 1))
            for _ in range(count):
                home = det_rand(self.seed, 1, index) % n
                addr = heap.alloc_block(home)
                start = det_rand(self.seed, 2, index) % n
                readers = []
                offset = 0
                while len(readers) < capped:
                    node = (start + offset) % n
                    offset += 1
                    if node != home:
                        readers.append(node)
                for reader in readers:
                    self.read_lists[reader].append(addr)
                writes = det_rand(self.seed, 3, index) % 1000 \
                    < self.write_fraction * 1000
                if writes:
                    self.write_lists[home].append(addr)
                self.blocks_built += 1
                index += 1
        # Rotate each node's read order (anti-stampede, as in WORKER).
        for node in range(n):
            reads = self.read_lists[node]
            if reads:
                shift = (node * max(len(reads) // 3, 1)) % len(reads)
                self.read_lists[node] = reads[shift:] + reads[:shift]

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        think = THINK_CYCLES + (node_id * 5) % 13
        code = self._code
        for addr in self.write_lists[node_id]:
            yield ("write", addr)
            yield ("compute", think, code)
        yield ("barrier",)
        for _iteration in range(self.iterations):
            for addr in self.read_lists[node_id]:
                yield ("read", addr)
                yield ("compute", think, code)
            yield ("barrier",)
            for addr in self.write_lists[node_id]:
                yield ("write", addr)
                yield ("compute", think, code)
            yield ("barrier",)


def figure6_like_histogram(scale: int = 1) -> Dict[int, int]:
    """A log-decaying worker-set mix shaped like EVOLVE's Figure 6."""
    base = {1: 96, 2: 48, 4: 20, 8: 8, 12: 4, 16: 2}
    return {size: count * scale for size, count in base.items()}
