"""AQ: adaptive quadrature of a bivariate function (paper Section 6).

AQ integrates ``x^4 * y^4`` over the square ((0,0), (2,2)) with an error
tolerance, by recursively splitting ranges whose coarse and fine
estimates disagree.  All communication is producer-consumer: node 0
produces cell descriptors, each worker consumes its descriptors, refines
its cells with a private recursion, and publishes a partial sum that
node 0 reduces.  Worker sets are therefore almost all of size two
({producer, consumer}), which is why the paper finds AQ performs equally
well on every protocol with at least one hardware pointer, and why even
the software-only directory "performs respectably".

The integral is computed for real with adaptive trapezoid refinement;
tests compare it against the analytic value (32/5)^2 = 40.96.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: processor cycles per trapezoid evaluation of f over a cell
EVAL_CYCLES = 55

#: the analytic value of the integral, for reference
ANALYTIC_RESULT = (2.0 ** 5 / 5.0) ** 2


def f(x: float, y: float) -> float:
    """The paper's integrand."""
    return (x ** 4) * (y ** 4)


def _trap_cell(x0: float, x1: float, y0: float, y1: float) -> float:
    """2-D trapezoid estimate of the integral of ``f`` over one cell."""
    corners = (f(x0, y0) + f(x1, y0) + f(x0, y1) + f(x1, y1)) / 4.0
    return corners * (x1 - x0) * (y1 - y0)


class AdaptiveQuadrature(Workload):
    """AQ with static task production and adaptive private refinement."""

    name = "aq"

    def __init__(self, tolerance: float = 0.005, cells_per_node: int = 2,
                 max_depth: int = 24) -> None:
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        if cells_per_node < 1:
            raise ConfigurationError("cells_per_node must be >= 1")
        self.tolerance = tolerance
        self.cells_per_node = cells_per_node
        self.max_depth = max_depth
        self.result: float = 0.0
        self.evaluations: int = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, machine: "Machine") -> None:
        n_nodes = machine.params.n_nodes
        heap = machine.heap
        self._code = machine.register_code("aq-refine", lines=2)
        # Task descriptors (4 floats each), produced by node 0.  The
        # producer weights each cell's error budget by its initial error
        # estimate, which equalises refinement depth — and therefore work
        # — across cells (the static analogue of Mul-T's dynamic futures).
        self._tasks = self._make_tasks(n_nodes * self.cells_per_node)
        self.task_addrs = [heap.alloc(0, 4) for _ in self._tasks]
        errors = [self._cell_error(cell) for cell in self._tasks]
        total_error = sum(errors) or 1.0
        self._task_tols = [
            max(self.tolerance * err / total_error, 1e-12) for err in errors
        ]
        # One result slot per node, consumed by node 0's reduction.
        self.result_addrs = [heap.alloc_block(node) for node in range(n_nodes)]
        self.result = 0.0
        self.evaluations = 0
        self._partials: List[float] = [0.0] * n_nodes

    def _make_tasks(self, n_tasks: int) -> List[Tuple[float, float, float, float]]:
        """Split ((0,0),(2,2)) into a square grid covering the domain."""
        cols = 1
        while cols * cols < n_tasks:
            cols += 1
        tasks = []
        for r in range(cols):
            for c in range(cols):
                tasks.append((
                    2.0 * c / cols, 2.0 * (c + 1) / cols,
                    2.0 * r / cols, 2.0 * (r + 1) / cols,
                ))
        return tasks

    @staticmethod
    def _cell_error(cell: Tuple[float, float, float, float]) -> float:
        x0, x1, y0, y1 = cell
        xm, ym = (x0 + x1) / 2.0, (y0 + y1) / 2.0
        coarse = _trap_cell(x0, x1, y0, y1)
        fine = (_trap_cell(x0, xm, y0, ym) + _trap_cell(xm, x1, y0, ym)
                + _trap_cell(x0, xm, ym, y1) + _trap_cell(xm, x1, ym, y1))
        return abs(fine - coarse)

    # ------------------------------------------------------------------
    # Adaptive refinement (the real numerics)
    # ------------------------------------------------------------------

    def _refine(self, cell: Tuple[float, float, float, float],
                tol: float, depth: int) -> Iterator[Tuple[str, float]]:
        """Yield ('eval', partial) steps; adaptive recursion over a cell."""
        x0, x1, y0, y1 = cell
        coarse = _trap_cell(x0, x1, y0, y1)
        xm = (x0 + x1) / 2.0
        ym = (y0 + y1) / 2.0
        quads = (
            (x0, xm, y0, ym), (xm, x1, y0, ym),
            (x0, xm, ym, y1), (xm, x1, ym, y1),
        )
        fine = sum(_trap_cell(*q) for q in quads)
        yield ("eval", 0.0)
        if abs(fine - coarse) <= tol or depth >= self.max_depth:
            yield ("leaf", fine)
            return
        for quad in quads:
            for step in self._refine(quad, tol / 4.0, depth + 1):
                yield step

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        n_nodes = machine.params.n_nodes
        code = self._code
        n_tasks = len(self._tasks)

        # Producer: node 0 writes every task descriptor.
        if node_id == 0:
            for addr in self.task_addrs:
                yield ("write", addr)
                yield ("compute", 8, code)
        yield ("barrier",)

        # Consumers: each node refines its cells.
        partial = 0.0
        for index in range(node_id, n_tasks, n_nodes):
            yield ("read", self.task_addrs[index])
            for kind, value in self._refine(self._tasks[index],
                                            self._task_tols[index], 0):
                self.evaluations += 1
                yield ("compute", EVAL_CYCLES, code)
                if kind == "leaf":
                    partial += value
        self._partials[node_id] = partial
        yield ("write", self.result_addrs[node_id])
        yield ("barrier",)

        # Reduction on node 0.
        if node_id == 0:
            total = 0.0
            for node, addr in enumerate(self.result_addrs):
                yield ("read", addr)
                yield ("compute", 6, code)
                total += self._partials[node]
            self.result = total
        yield ("barrier",)
