"""WORKER: the synthetic worker-set benchmark (paper Section 5).

WORKER builds a data structure whose memory blocks have an *exact* worker
set size, then runs iterations of: all readers read their slots, barrier,
each writer writes its blocks, barrier.  Every read misses (the previous
write invalidated the copy) and every write sends exactly one
invalidation per reader — a completely deterministic access pattern that
provides a controlled experiment for comparing protocols.

Layout: each node ``w`` owns ``blocks_per_writer`` blocks homed in its
local memory; the readers of node ``w``'s blocks are the
``worker_set_size`` nodes following ``w`` in node order.  The writer is
*not* a reader, so a worker set of size ``s`` occupies exactly ``s``
directory pointers and each write transmits exactly ``s``
invalidations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: compute cycles between consecutive accesses, decoupling the requests
#: enough that they do not all collide at the home node in lockstep
THINK_CYCLES = 30


class WorkerBenchmark(Workload):
    """The WORKER stress test."""

    name = "worker"

    def __init__(self, worker_set_size: int, blocks_per_writer: int = 4,
                 iterations: int = 4, cico: bool = False) -> None:
        if worker_set_size < 1:
            raise ConfigurationError("worker set size must be >= 1")
        if blocks_per_writer < 1 or iterations < 1:
            raise ConfigurationError("invalid WORKER configuration")
        self.worker_set_size = worker_set_size
        self.blocks_per_writer = blocks_per_writer
        self.iterations = iterations
        #: Check-In/Check-Out annotations (Section 2/7): readers check
        #: their blocks back in before the writer's phase, so a limited
        #: directory never overflows and writes find no copies to chase.
        self.cico = cico
        #: writer node -> list of block base addresses it owns
        self.slots: Dict[int, List[int]] = {}
        #: reader node -> list of addresses it reads each iteration
        self.read_sets: Dict[int, List[int]] = {}

    def setup(self, machine: "Machine") -> None:
        n = machine.params.n_nodes
        size = min(self.worker_set_size, max(n - 1, 1))
        if size != self.worker_set_size and n > 1:
            # Cap at n-1 distinct readers (the writer is excluded).
            self.worker_set_size = size
        self.slots = {}
        self.read_sets = {node: [] for node in range(n)}
        for writer in range(n):
            addrs = [machine.heap.alloc_block(writer)
                     for _ in range(self.blocks_per_writer)]
            self.slots[writer] = addrs
            for k in range(1, self.worker_set_size + 1):
                reader = (writer + k) % n
                self.read_sets[reader].extend(addrs)
        self._code = machine.register_code("worker-loop", lines=1)

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        my_blocks = self.slots[node_id]
        my_reads = self.read_sets[node_id]
        # Rotate each reader's visiting order so the readers of a block
        # do not stampede its home in lockstep.
        if my_reads:
            shift = (node_id * max(len(my_reads) // 3, 1)) % len(my_reads)
            my_reads = my_reads[shift:] + my_reads[:shift]
        code = self._code
        think = THINK_CYCLES + (node_id * 5) % 13
        # Initialization phase: each writer touches its own blocks.
        for addr in my_blocks:
            yield ("write", addr)
            yield ("compute", think, code)
        yield ("barrier",)
        for _iteration in range(self.iterations):
            for addr in my_reads:
                yield ("read", addr)
                yield ("compute", think, code)
            if self.cico:
                for addr in my_reads:
                    yield ("checkin", addr)
            yield ("barrier",)
            for addr in my_blocks:
                yield ("write", addr)
                yield ("compute", think, code)
            yield ("barrier",)
