"""MP3D: rarefied hypersonic flow simulation (paper Section 6; SPLASH).

MP3D moves particles through a 3-D wind-tunnel of space cells in discrete
time steps.  Particle records are owned by (and local to) the node that
moves them, but each move performs a read-modify-write of the shared
*space-cell* record the particle lands in (cell occupancy and collision
bookkeeping).  Particles of different nodes constantly land in the same
cells, so cell blocks migrate from writer to writer — the notorious
sharing behaviour that earns MP3D its low speedups, and, in this paper,
that makes the software-only directory achieve just a fraction of the
full-map speedup (Figure 4e).

We run the paper's configuration in spirit: locking off (cell updates are
unsynchronised read-modify-writes, exactly as in the no-locking SPLASH
variant), and the physics reduced to deterministic ballistic motion with
specular wall reflection.  Tests check particle-count conservation and
determinism of the final state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload, det_rand, det_uniform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: processor cycles to advance one particle (position/velocity update)
MOVE_CYCLES = 110

#: processor cycles for the cell collision bookkeeping
CELL_CYCLES = 45


class Particle:
    """One simulated molecule."""

    __slots__ = ("x", "y", "z", "vx", "vy", "vz")

    def __init__(self, x: float, y: float, z: float,
                 vx: float, vy: float, vz: float) -> None:
        self.x, self.y, self.z = x, y, z
        self.vx, self.vy, self.vz = vx, vy, vz


class MP3D(Workload):
    """Particle-in-cell simulation with shared space-cell records."""

    name = "mp3d"

    def __init__(self, n_particles: int = 1536, steps: int = 3,
                 cells_per_side: int = 8, seed: int = 23) -> None:
        if n_particles < 1 or steps < 1:
            raise ConfigurationError("invalid MP3D configuration")
        if cells_per_side < 2:
            raise ConfigurationError("need at least 2 cells per side")
        self.n_particles = n_particles
        self.steps = steps
        self.cells_per_side = cells_per_side
        self.seed = seed
        self.particles: List[Particle] = []
        self.collisions: int = 0
        self.final_checksum: float = 0.0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, machine: "Machine") -> None:
        params = machine.params
        n_nodes = params.n_nodes
        heap = machine.heap
        self._code = machine.register_code("mp3d-move", lines=2)
        side = self.cells_per_side
        n_cells = side ** 3
        # Space-cell records: one block each, hash-distributed over homes
        # (the tunnel's hot entry region would otherwise pile onto a few
        # nodes).
        self.cell_addrs = [
            heap.alloc_block(det_rand(self.seed, 1, cell) % n_nodes)
            for cell in range(n_cells)
        ]
        #: deterministic cell occupancy counters (the real data)
        self.cell_counts: Dict[int, int] = {}
        # Particle records: three words each, resident with their owner.
        per_node = -(-self.n_particles // n_nodes)
        self._owned: List[List[int]] = []
        self.particle_addrs: List[int] = [0] * self.n_particles
        for node in range(n_nodes):
            owned = [p for p in range(self.n_particles)
                     if p // per_node == node]
            self._owned.append(owned)
            for p in owned:
                self.particle_addrs[p] = heap.alloc(node, 3)
        # Deterministic initial conditions: a stream entering the tunnel.
        self.particles = []
        for p in range(self.n_particles):
            self.particles.append(Particle(
                x=det_uniform(0.0, 1.0, self.seed, p, 1),
                y=det_uniform(0.0, 1.0, self.seed, p, 2),
                z=det_uniform(0.0, 0.25, self.seed, p, 3),
                vx=det_uniform(-0.04, 0.04, self.seed, p, 4),
                vy=det_uniform(-0.04, 0.04, self.seed, p, 5),
                vz=det_uniform(0.05, 0.15, self.seed, p, 6),
            ))
        # Global step-statistics record: read by every node at the top
        # of each step, written by node 0 between steps (the ambient
        # counters the SPLASH code keeps).
        self.global_addr = heap.alloc_block(0)
        self.collisions = 0
        self.final_checksum = 0.0

    # ------------------------------------------------------------------
    # Physics (deterministic; independent of simulated timing)
    # ------------------------------------------------------------------

    def cell_of(self, particle: Particle) -> int:
        side = self.cells_per_side
        cx = min(int(particle.x * side), side - 1)
        cy = min(int(particle.y * side), side - 1)
        cz = min(int(particle.z * side), side - 1)
        return (cz * side + cy) * side + cx

    @staticmethod
    def _bounce(pos: float, vel: float) -> Tuple[float, float]:
        if pos < 0.0:
            return -pos, -vel
        if pos > 1.0:
            return 2.0 - pos, -vel
        return pos, vel

    def _move(self, particle: Particle) -> None:
        particle.x, particle.vx = self._bounce(
            particle.x + particle.vx, particle.vx)
        particle.y, particle.vy = self._bounce(
            particle.y + particle.vy, particle.vy)
        particle.z, particle.vz = self._bounce(
            particle.z + particle.vz, particle.vz)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        code = self._code
        owned = self._owned[node_id]
        for step in range(self.steps):
            yield ("read", self.global_addr)
            for p in owned:
                particle = self.particles[p]
                yield ("read", self.particle_addrs[p])
                yield ("compute", MOVE_CYCLES, code)
                self._move(particle)
                cell = self.cell_of(particle)
                # Unsynchronised read-modify-write of the shared cell
                # record (locking off, as in the paper's runs).
                addr = self.cell_addrs[cell]
                yield ("read", addr)
                yield ("compute", CELL_CYCLES, code)
                yield ("write", addr)
                occupancy = self.cell_counts.get(cell, 0)
                if occupancy:
                    self.collisions += 1
                self.cell_counts[cell] = occupancy + 1
                yield ("write", self.particle_addrs[p])
            yield ("barrier",)
            if node_id == 0:
                self.cell_counts.clear()
                if step % 2 == 0:
                    yield ("write", self.global_addr)
            yield ("barrier",)
        if node_id == 0:
            self.final_checksum = sum(
                pt.x + pt.y + pt.z for pt in self.particles)
        yield ("barrier",)
