"""EVOLVE: genome evolution by hypercube traversal (paper Section 6).

EVOLVE reduces the simulation of genome evolution to traversing a
hypercube (each vertex is a genome; each dimension flips one gene) and
finding local and global fitness maxima.  Every node hill-climbs from its
own starting genomes: at each step it reads the fitness of all ``d``
neighbours of its current vertex, moves to the best strictly-improving
one, and records the visit.

The fitness landscape pulls walks toward a global maximum, so walks from
different nodes converge onto the same ridge: the vertices near the
maxima are read by many nodes (large worker sets), while the vast
majority of vertices are touched by at most one walk.  The visit
counters add read-modify-write traffic to exactly those popular blocks.
This mix — thousands of one-node worker sets with a significant tail of
nontrivial ones (Figure 6) — is what makes EVOLVE the hardest of the six
applications for a software-extended directory (Figure 4d).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.base import Op, Workload, det_rand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: processor cycles to score one neighbour genome
SCORE_CYCLES = 130

#: processor cycles of bookkeeping per hill-climbing step
STEP_CYCLES = 90


class Evolve(Workload):
    """Parallel hill-climbing over a fitness-weighted hypercube."""

    name = "evolve"

    #: The visit-counter cadence (``self.steps % 2``) is Python state
    #: bumped by *every* node's thread, so each thread's op stream
    #: depends on the global interleaving of all threads — which only
    #: the serial engine reproduces.  Sharded runs fall back to it.
    shard_safe = False

    def __init__(self, dimensions: int = 12, walks_per_node: int = 5,
                 seed: int = 11) -> None:
        if not 4 <= dimensions <= 20:
            raise ConfigurationError("dimensions must be in 4..20")
        if walks_per_node < 1:
            raise ConfigurationError("walks_per_node must be >= 1")
        self.dimensions = dimensions
        self.walks_per_node = walks_per_node
        self.seed = seed
        self.n_vertices = 1 << dimensions
        #: the target genome: fitness grows with similarity to it
        self.target = det_rand(seed, 1) & (self.n_vertices - 1)
        self.local_maxima: Set[int] = set()
        self.global_best: Tuple[int, int] = (-1, -1)  # (fitness, vertex)
        self.steps: int = 0

    # ------------------------------------------------------------------
    # The fitness landscape (deterministic, rugged, single main ridge)
    # ------------------------------------------------------------------

    def fitness(self, vertex: int) -> int:
        """Similarity to the target genome plus deterministic noise."""
        match = self.dimensions - bin(vertex ^ self.target).count("1")
        noise = det_rand(self.seed, vertex) % 23
        return 16 * match + noise

    def neighbours(self, vertex: int) -> List[int]:
        return [vertex ^ (1 << bit) for bit in range(self.dimensions)]

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, machine: "Machine") -> None:
        params = machine.params
        n_nodes = params.n_nodes
        heap = machine.heap
        self._code = machine.register_code("evolve-climb", lines=2)
        # Fitness table: one word per vertex, distributed block-wise
        # round-robin over the nodes.
        words_per_chunk = params.block_words * 2
        self._chunk_words = words_per_chunk
        n_chunks = -(-self.n_vertices // words_per_chunk)
        # Hash-distribute chunks over homes.  Hypercube neighbours differ
        # in one bit, so a modulo distribution would pile every high-bit
        # neighbour of a popular genome onto a single home node.
        self._fitness_chunks = [
            heap.alloc(det_rand(self.seed, 3, chunk) % n_nodes,
                       words_per_chunk)
            for chunk in range(n_chunks)
        ]
        # Visit counters, independently distributed (written by visitors).
        self._visit_chunks = [
            heap.alloc(det_rand(self.seed, 4, chunk) % n_nodes,
                       words_per_chunk)
            for chunk in range(n_chunks)
        ]
        # Per-node private walk records and result slot.
        self._records = [
            heap.alloc(node, params.block_words * 8)
            for node in range(n_nodes)
        ]
        self.result_addrs = [heap.alloc_block(node) for node in range(n_nodes)]
        self.local_maxima = set()
        self.global_best = (-1, -1)
        self.steps = 0
        self._params = params

    def _fitness_addr(self, vertex: int) -> int:
        chunk, offset = divmod(vertex, self._chunk_words)
        return self._fitness_chunks[chunk] + offset

    def _visit_addr(self, vertex: int) -> int:
        chunk, offset = divmod(vertex, self._chunk_words)
        return self._visit_chunks[chunk] + offset

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def thread(self, machine: "Machine", node_id: int) -> Iterator[Op]:
        code = self._code
        n_nodes = machine.params.n_nodes
        best_fitness, best_vertex = -1, -1

        for walk in range(self.walks_per_node):
            vertex = det_rand(self.seed, 2, node_id, walk) & (
                self.n_vertices - 1)
            current_fit = self.fitness(vertex)
            yield ("read", self._fitness_addr(vertex))
            yield ("compute", STEP_CYCLES, code)
            while True:
                self.steps += 1
                # Score every neighbour genome.
                best_n, best_n_fit = -1, current_fit
                for nb in self.neighbours(vertex):
                    yield ("read", self._fitness_addr(nb))
                    yield ("compute", SCORE_CYCLES, code)
                    fit = self.fitness(nb)
                    if fit > best_n_fit or (fit == best_n_fit
                                            and nb > best_n >= 0):
                        best_n, best_n_fit = nb, fit
                # Record the visit: the private walk log always, the
                # shared visit counter on every other step (the counter
                # is a read-modify-write of a popular block).
                if self.steps % 2 == 0:
                    yield ("read", self._visit_addr(vertex))
                    yield ("write", self._visit_addr(vertex))
                yield ("write", self._records[node_id])
                yield ("compute", STEP_CYCLES, code)
                if best_n < 0:
                    break  # local maximum
                vertex, current_fit = best_n, best_n_fit
            self.local_maxima.add(vertex)
            if current_fit > best_fitness:
                best_fitness, best_vertex = current_fit, vertex

        yield ("write", self.result_addrs[node_id])
        yield ("barrier",)
        # Node 0 reduces to the global maximum found.
        if node_id == 0:
            for addr in self.result_addrs:
                yield ("read", addr)
                yield ("compute", 6, code)
        if best_fitness > self.global_best[0] or (
                best_fitness == self.global_best[0]
                and best_vertex > self.global_best[1]):
            self.global_best = (best_fitness, best_vertex)
        yield ("barrier",)
