"""Statistics collection.

Every node owns a :class:`NodeStats`; the machine aggregates them into a
:class:`RunStats` at the end of a run.  Handler-latency *samples* (used to
regenerate Tables 1 and 2 of the paper) are recorded per software request
with their full per-activity breakdown.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import Counter
from typing import Dict, List, Mapping, Optional


class HandlerSample:
    """One software protocol-handler invocation.

    ``breakdown`` maps activity name -> cycles; ``latency`` is its sum.

    Millions of these are allocated on software-heavy runs (one per
    handler invocation, up to the machine's sample cap), so the class is
    a hand-written ``__slots__`` holder rather than a dataclass: no
    per-instance ``__dict__``, cheaper allocation, smaller footprint.
    """

    __slots__ = ("kind", "implementation", "node", "pointers", "latency",
                 "breakdown")

    def __init__(
        self,
        kind: str,  # "read" | "write" | "ack" | "last_ack" | "local" | ...
        implementation: str,  # "flexible" | "optimized"
        node: int,
        pointers: int,  # pointers handled (emptied or invalidated)
        latency: int,
        breakdown: Optional[Dict[str, int]] = None,
    ) -> None:
        self.kind = kind
        self.implementation = implementation
        self.node = node
        self.pointers = pointers
        self.latency = latency
        self.breakdown = {} if breakdown is None else breakdown

    def __repr__(self) -> str:
        return (
            f"HandlerSample(kind={self.kind!r}, "
            f"implementation={self.implementation!r}, node={self.node!r}, "
            f"pointers={self.pointers!r}, latency={self.latency!r}, "
            f"breakdown={self.breakdown!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HandlerSample):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.implementation == other.implementation
            and self.node == other.node
            and self.pointers == other.pointers
            and self.latency == other.latency
            and self.breakdown == other.breakdown
        )

    # ------------------------------------------------------------------
    # JSON round-trip (repro.exec result cache)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "implementation": self.implementation,
            "node": self.node,
            "pointers": self.pointers,
            "latency": self.latency,
            "breakdown": dict(self.breakdown),
        }

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, object]) -> "HandlerSample":
        return cls(
            kind=doc["kind"],
            implementation=doc["implementation"],
            node=doc["node"],
            pointers=doc["pointers"],
            latency=doc["latency"],
            breakdown=dict(doc["breakdown"]),
        )


@dataclasses.dataclass
class NodeStats:
    """Event counters for a single node."""

    node: int
    user_cycles: int = 0
    stall_cycles: int = 0
    handler_cycles: int = 0
    loads: int = 0
    stores: int = 0
    ifetches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    victim_hits: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    traps: Counter = dataclasses.field(default_factory=Counter)
    messages_sent: Counter = dataclasses.field(default_factory=Counter)
    invalidations_hw: int = 0
    invalidations_sw: int = 0
    busy_replies: int = 0
    retries: int = 0
    watchdog_activations: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores + self.ifetches

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 1.0

    # ------------------------------------------------------------------
    # JSON round-trip (repro.exec result cache)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            doc[field.name] = dict(value) if isinstance(value, Counter) \
                else value
        return doc

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, object]) -> "NodeStats":
        kwargs = dict(doc)
        kwargs["traps"] = Counter(kwargs.get("traps") or {})
        kwargs["messages_sent"] = Counter(kwargs.get("messages_sent") or {})
        return cls(**kwargs)


@dataclasses.dataclass
class RunStats:
    """Aggregated results of one simulation run."""

    run_cycles: int
    n_nodes: int
    per_node: List[NodeStats]
    handler_samples: List[HandlerSample]
    sequential_cycles: int
    worker_set_histogram: Optional[Mapping[int, int]] = None
    #: Optional cycle-attribution artifact (repro.obs.attribution),
    #: filled in when a job requests attribution.  ``None`` stays
    #: *absent* from the JSON form, so results of ordinary runs — and
    #: their pinned digests — are unchanged by this field's existence.
    attribution: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # JSON round-trip (repro.exec result cache)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON representation; :meth:`from_json_dict` inverts it.

        The round trip is exact: every field collapses to ints, strings,
        lists, and string-keyed dicts, so a cached result replayed from
        disk is ``==`` to the freshly computed one and every derived
        number (speedups, latency means, histograms) is bit-identical.
        """
        histogram = self.worker_set_histogram
        doc: Dict[str, object] = {
            "run_cycles": self.run_cycles,
            "n_nodes": self.n_nodes,
            "sequential_cycles": self.sequential_cycles,
            "per_node": [ns.to_json_dict() for ns in self.per_node],
            "handler_samples": [s.to_json_dict()
                                for s in self.handler_samples],
            # JSON objects have string keys; sizes are restored as ints.
            "worker_set_histogram": (
                None if histogram is None
                else {str(size): count for size, count in histogram.items()}
            ),
        }
        if self.attribution is not None:
            doc["attribution"] = self.attribution
        return doc

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, object]) -> "RunStats":
        histogram = doc.get("worker_set_histogram")
        return cls(
            run_cycles=doc["run_cycles"],
            n_nodes=doc["n_nodes"],
            sequential_cycles=doc["sequential_cycles"],
            per_node=[NodeStats.from_json_dict(ns)
                      for ns in doc["per_node"]],
            handler_samples=[HandlerSample.from_json_dict(s)
                             for s in doc["handler_samples"]],
            worker_set_histogram=(
                None if histogram is None
                else {int(size): count for size, count in histogram.items()}
            ),
            attribution=doc.get("attribution"),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form of this result.

        Two runs whose statistics are equal in *every* field — per-node
        counters, handler samples, worker-set histogram — share a
        digest.  The protocol-equivalence fixture
        (``tests/test_protocol_equivalence.py``) pins these digests so a
        refactor of the coherence engine is provably behaviour-preserving,
        not merely cycle-count-preserving.
        """
        doc = json.dumps(self.to_json_dict(), sort_keys=True,
                         separators=(",", ":"))
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total(self, field: str) -> int:
        """Sum an integer counter field across nodes.

        Raises
        ------
        TypeError
            If ``field`` is one of the per-kind ``Counter`` fields
            (``traps``, ``messages_sent``); summing those silently
            produced a merged Counter where callers expected an int.
            Use :meth:`traps_by_kind` / :meth:`messages_by_kind` (or
            :attr:`total_traps`) instead.
        """
        values = [getattr(ns, field) for ns in self.per_node]
        for value in values:
            if not isinstance(value, int):
                raise TypeError(
                    f"RunStats.total() sums integer fields, but "
                    f"{field!r} holds {type(value).__name__}; use "
                    f"traps_by_kind() or messages_by_kind() for "
                    f"per-kind counters"
                )
        return sum(values)

    @property
    def total_traps(self) -> int:
        return sum(sum(ns.traps.values()) for ns in self.per_node)

    def traps_by_kind(self) -> Counter:
        out: Counter = Counter()
        for ns in self.per_node:
            out.update(ns.traps)
        return out

    def messages_by_kind(self) -> Counter:
        out: Counter = Counter()
        for ns in self.per_node:
            out.update(ns.messages_sent)
        return out

    @property
    def speedup(self) -> float:
        """Speedup over a sequential run without multiprocessor overhead.

        This matches the paper's Figure 4 metric: the denominator is the
        time the same work would take on one node with every access a
        cache hit.
        """
        if self.run_cycles == 0:
            return 0.0
        return self.sequential_cycles / self.run_cycles

    @property
    def processor_utilization(self) -> float:
        """Fraction of processor cycles spent running user code."""
        total = self.run_cycles * self.n_nodes
        return self.total("user_cycles") / total if total else 0.0

    def mean_handler_latency(self, kind: str, implementation: str) -> float:
        """Mean latency of handler invocations of ``kind``."""
        vals = [
            s.latency
            for s in self.handler_samples
            if s.kind == kind and s.implementation == implementation
        ]
        return sum(vals) / len(vals) if vals else 0.0

    def handler_latency_histogram(self, kind: str, implementation: str):
        """Full latency distribution of ``kind`` handlers as a
        :class:`repro.obs.hist.Histogram` (p50/p90/p99 queries), built
        from the stored samples.  The mean view above survives for the
        paper's tables; tail questions go through this."""
        from repro.obs.hist import Histogram

        hist = Histogram()
        for s in self.handler_samples:
            if s.kind == kind and s.implementation == implementation:
                hist.add(s.latency)
        return hist

    def median_handler_sample(
        self, kind: str, implementation: str
    ) -> Optional[HandlerSample]:
        """The median-latency sample of ``kind`` (Table 2's methodology)."""
        samples = sorted(
            (
                s
                for s in self.handler_samples
                if s.kind == kind and s.implementation == implementation
            ),
            key=lambda s: s.latency,
        )
        if not samples:
            return None
        return samples[len(samples) // 2]
