"""Statistics collection.

Every node owns a :class:`NodeStats`; the machine aggregates them into a
:class:`RunStats` at the end of a run.  Handler-latency *samples* (used to
regenerate Tables 1 and 2 of the paper) are recorded per software request
with their full per-activity breakdown.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Mapping, Optional


@dataclasses.dataclass
class HandlerSample:
    """One software protocol-handler invocation.

    ``breakdown`` maps activity name -> cycles; ``latency`` is its sum.
    """

    kind: str  # "read" | "write" | "ack" | "last_ack" | "local" | ...
    implementation: str  # "flexible" | "optimized"
    node: int
    pointers: int  # pointers handled (emptied or invalidated)
    latency: int
    breakdown: Dict[str, int] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class NodeStats:
    """Event counters for a single node."""

    node: int
    user_cycles: int = 0
    stall_cycles: int = 0
    handler_cycles: int = 0
    loads: int = 0
    stores: int = 0
    ifetches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    victim_hits: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    traps: Counter = dataclasses.field(default_factory=Counter)
    messages_sent: Counter = dataclasses.field(default_factory=Counter)
    invalidations_hw: int = 0
    invalidations_sw: int = 0
    busy_replies: int = 0
    retries: int = 0
    watchdog_activations: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores + self.ifetches

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 1.0


@dataclasses.dataclass
class RunStats:
    """Aggregated results of one simulation run."""

    run_cycles: int
    n_nodes: int
    per_node: List[NodeStats]
    handler_samples: List[HandlerSample]
    sequential_cycles: int
    worker_set_histogram: Optional[Mapping[int, int]] = None

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total(self, field: str) -> int:
        """Sum an integer counter field across nodes.

        Raises
        ------
        TypeError
            If ``field`` is one of the per-kind ``Counter`` fields
            (``traps``, ``messages_sent``); summing those silently
            produced a merged Counter where callers expected an int.
            Use :meth:`traps_by_kind` / :meth:`messages_by_kind` (or
            :attr:`total_traps`) instead.
        """
        values = [getattr(ns, field) for ns in self.per_node]
        for value in values:
            if not isinstance(value, int):
                raise TypeError(
                    f"RunStats.total() sums integer fields, but "
                    f"{field!r} holds {type(value).__name__}; use "
                    f"traps_by_kind() or messages_by_kind() for "
                    f"per-kind counters"
                )
        return sum(values)

    @property
    def total_traps(self) -> int:
        return sum(sum(ns.traps.values()) for ns in self.per_node)

    def traps_by_kind(self) -> Counter:
        out: Counter = Counter()
        for ns in self.per_node:
            out.update(ns.traps)
        return out

    def messages_by_kind(self) -> Counter:
        out: Counter = Counter()
        for ns in self.per_node:
            out.update(ns.messages_sent)
        return out

    @property
    def speedup(self) -> float:
        """Speedup over a sequential run without multiprocessor overhead.

        This matches the paper's Figure 4 metric: the denominator is the
        time the same work would take on one node with every access a
        cache hit.
        """
        if self.run_cycles == 0:
            return 0.0
        return self.sequential_cycles / self.run_cycles

    @property
    def processor_utilization(self) -> float:
        """Fraction of processor cycles spent running user code."""
        total = self.run_cycles * self.n_nodes
        return self.total("user_cycles") / total if total else 0.0

    def mean_handler_latency(self, kind: str, implementation: str) -> float:
        """Mean latency of handler invocations of ``kind``."""
        vals = [
            s.latency
            for s in self.handler_samples
            if s.kind == kind and s.implementation == implementation
        ]
        return sum(vals) / len(vals) if vals else 0.0

    def handler_latency_histogram(self, kind: str, implementation: str):
        """Full latency distribution of ``kind`` handlers as a
        :class:`repro.obs.hist.Histogram` (p50/p90/p99 queries), built
        from the stored samples.  The mean view above survives for the
        paper's tables; tail questions go through this."""
        from repro.obs.hist import Histogram

        hist = Histogram()
        for s in self.handler_samples:
            if s.kind == kind and s.implementation == implementation:
                hist.add(s.latency)
        return hist

    def median_handler_sample(
        self, kind: str, implementation: str
    ) -> Optional[HandlerSample]:
        """The median-latency sample of ``kind`` (Table 2's methodology)."""
        samples = sorted(
            (
                s
                for s in self.handler_samples
                if s.kind == kind and s.implementation == implementation
            ),
            key=lambda s: s.latency,
        )
        if not samples:
            return None
        return samples[len(samples) // 2]
