"""Protocol tracing and transcript verification.

NWO's value to the Alewife project was partly that it is a *deterministic
debugging and test environment*; this module provides the analogue: a
tracer that records every protocol message with its delivery time, and a
transcript checker that verifies ownership serialisation directly from
the message stream — independently of the directory implementation it is
checking.

The checker's rules, per memory block:

- a ``WDATA`` delivery makes its destination the *owner*; until the home
  receives that owner's ``EVICT_WB`` or ``FETCH_DATA``, no other data
  grant for the block may be delivered;
- an ``ACK`` from a node must be preceded by at least as many ``INV``
  deliveries to that node;
- every requester that sent a request receives at least one reply
  (data or BUSY) by the end of the run.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core import messages as msg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

_TRACED = frozenset({
    msg.RREQ, msg.WREQ, msg.RDATA, msg.WDATA, msg.BUSY,
    msg.INV, msg.ACK, msg.FETCH_RD, msg.FETCH_INV, msg.FETCH_DATA,
    msg.EVICT_WB,
})


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One protocol message, with send and delivery times."""

    sent_at: int
    delivered_at: int
    kind: str
    src: int
    dst: int
    block: int


class ProtocolTracer:
    """Records every coherence message a machine's fabric carries.

    Usage::

        tracer = ProtocolTracer.attach(machine)
        machine.run(workload)
        problems = tracer.verify()
    """

    def __init__(self, blocks: Optional[Set[int]] = None) -> None:
        #: captured live Message objects; records are materialised
        #: lazily because a message's delivery time is only known once
        #: it reaches the destination's receive queue (the fabric
        #: mutates ``delivered_at`` at arrival, after send returns)
        self._messages: List = []
        self._records: Optional[List[TraceRecord]] = None
        self._filter = blocks
        self._fabric = None
        self._inner_send = None
        self._wrapper = None
        self._had_override = False
        self._active = False

    @property
    def records(self) -> List[TraceRecord]:
        """The transcript so far, as frozen :class:`TraceRecord` rows."""
        if self._records is None:
            self._records = [
                TraceRecord(
                    sent_at=m.sent_at,
                    delivered_at=m.delivered_at,
                    kind=m.kind,
                    src=m.src,
                    dst=m.dst,
                    block=m.payload.block,
                )
                for m in self._messages
            ]
        return self._records

    @records.setter
    def records(self, value: List[TraceRecord]) -> None:
        # Tests and offline checkers build transcripts directly.
        self._records = list(value)
        self._messages = []

    @classmethod
    def attach(cls, machine: "Machine",
               blocks: Optional[Set[int]] = None) -> "ProtocolTracer":
        """Wrap ``machine.fabric.send`` with a recording layer.

        Multiple tracers may attach to the same machine: each wraps the
        send currently installed, so all of them record.  Call
        :meth:`detach` to stop recording; detaching in any order is
        safe (an inner tracer whose wrapper is still referenced by an
        outer one simply becomes a pass-through).
        """
        tracer = cls(blocks)
        fabric = machine.fabric
        inner_send = fabric.send

        def traced_send(message, extra_delay: int = 0):
            result = inner_send(message, extra_delay)
            if tracer._active and message.kind in _TRACED:
                block = message.payload.block
                if tracer._filter is None or block in tracer._filter:
                    tracer._messages.append(message)
                    tracer._records = None
            return result

        tracer._fabric = fabric
        tracer._inner_send = inner_send
        tracer._wrapper = traced_send
        # Whether fabric.send was already an instance-level override
        # (e.g. an earlier tracer); if not, detach restores the
        # pristine class method by deleting the override entirely.
        tracer._had_override = "send" in fabric.__dict__
        tracer._active = True
        fabric.send = traced_send  # type: ignore[method-assign]
        return tracer

    @property
    def attached(self) -> bool:
        """True while this tracer is recording."""
        return self._active

    def detach(self) -> None:
        """Stop recording and, when possible, unwrap ``fabric.send``.

        If this tracer's wrapper is still the outermost layer it is
        removed entirely, restoring whatever ``send`` it wrapped (the
        original, or an earlier tracer's wrapper).  If another tracer
        attached afterwards, the wrapper cannot be unlinked without
        breaking the outer tracer, so it stays in place as an inert
        pass-through.  Idempotent.
        """
        if not self._active:
            return
        self._active = False
        fabric = self._fabric
        if fabric is None or fabric.__dict__.get("send") is not self._wrapper:
            return
        if self._had_override:
            fabric.send = self._inner_send  # type: ignore[method-assign]
        else:
            del fabric.__dict__["send"]  # back to the class method

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def for_block(self, block: int) -> List[TraceRecord]:
        return [r for r in self.records if r.block == block]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for record in self.records:
            out[record.kind] += 1
        return dict(out)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self) -> List[str]:
        """Check the transcript; returns violation descriptions."""
        problems: List[str] = []
        per_block: Dict[int, List[TraceRecord]] = defaultdict(list)
        for record in self.records:
            per_block[record.block].append(record)

        for block, records in per_block.items():
            records.sort(key=lambda r: (r.delivered_at, r.sent_at))
            problems.extend(self._check_ownership(block, records))
            problems.extend(self._check_acks(block, records))
            problems.extend(self._check_replies(block, records))
        return problems

    @staticmethod
    def _check_ownership(block: int,
                         records: List[TraceRecord]) -> List[str]:
        problems = []
        owner: Optional[int] = None
        for record in records:
            if record.kind == msg.WDATA:
                if owner is not None and owner != record.dst:
                    problems.append(
                        f"block {block}: WDATA to {record.dst} at "
                        f"{record.delivered_at} while {owner} still owns"
                    )
                owner = record.dst
            elif record.kind == msg.RDATA:
                if owner is not None and owner != record.dst:
                    problems.append(
                        f"block {block}: RDATA to {record.dst} at "
                        f"{record.delivered_at} while {owner} owns"
                    )
                if owner == record.dst:
                    owner = None  # downgraded via a fresh read grant
            elif record.kind in (msg.EVICT_WB, msg.FETCH_DATA):
                if record.src == owner:
                    owner = None
        return problems

    @staticmethod
    def _check_acks(block: int, records: List[TraceRecord]) -> List[str]:
        problems = []
        invs_seen: Dict[int, int] = defaultdict(int)
        acks_seen: Dict[int, int] = defaultdict(int)
        for record in records:
            if record.kind == msg.INV:
                invs_seen[record.dst] += 1
            elif record.kind == msg.ACK:
                acks_seen[record.src] += 1
                if acks_seen[record.src] > invs_seen[record.src]:
                    problems.append(
                        f"block {block}: node {record.src} acked more "
                        f"invalidations than it received"
                    )
        return problems

    @staticmethod
    def _check_replies(block: int, records: List[TraceRecord]) -> List[str]:
        problems = []
        requesters = {r.src for r in records
                      if r.kind in (msg.RREQ, msg.WREQ)}
        replied = {r.dst for r in records
                   if r.kind in (msg.RDATA, msg.WDATA, msg.BUSY)}
        for node in sorted(requesters - replied):
            problems.append(
                f"block {block}: node {node} requested but never got a "
                f"reply"
            )
        return problems
