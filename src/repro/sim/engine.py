"""Deterministic discrete-event simulation engine.

The engine is a classic event heap keyed on ``(time, sequence)``.  The
sequence number makes execution fully deterministic: two events scheduled
for the same cycle fire in the order they were scheduled.  Determinism is
a headline property of NWO (the paper's simulator) and we preserve it —
every experiment in this repository is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError

Event = Tuple[int, int, Callable[[], None]]


class Simulator:
    """Event-driven simulator with integer cycle time."""

    def __init__(self) -> None:
        #: Current simulation time in cycles.  A plain attribute, not a
        #: property: it is read on every ``at()``/``after()`` call and by
        #: every hot sender (fabric, processor), and a property getter
        #: costs a Python call per read.  Treat it as read-only outside
        #: this class.
        self.now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._running = False
        self._stopped = False
        #: observability probe, called with the new time whenever the
        #: clock advances to a later cycle (repro.obs time-series
        #: sampling).  Probes read state only — they must not schedule
        #: events — so attaching one cannot perturb the simulation.
        self.probe: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute cycle ``time``.

        Validation precedes the sequence-number increment: a rejected
        schedule must not burn a sequence number, or an exception caught
        and retried by a caller would shift the tie-break order of every
        later event and break bit-for-bit reproducibility.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        idle_check: Optional[Callable[[], None]] = None,
    ) -> int:
        """Run events until the heap drains, ``until`` cycles pass, or
        :meth:`stop` is called.

        Parameters
        ----------
        until:
            Absolute cycle limit; events at later times stay queued.
        max_events:
            Safety valve against runaway simulations.
        idle_check:
            Called once when the event heap drains; may raise (e.g. a
            deadlock detector that knows processors are still blocked).

        Returns
        -------
        int
            The simulation time when the run loop exited.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        # Hoist the heap and heappop into locals: every simulated cycle
        # of every run funnels through this loop, and the attribute
        # loads dominate its overhead.  The heap *list* is mutated in
        # place by at()/heappush, so the local alias stays valid while
        # events schedule more events; _stopped must be re-read each
        # iteration because stop() flips it mid-loop.
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None and max_events is None and self.probe is None:
                # No cycle limit, no event budget, no observer: the
                # common case (every experiment driver run) takes the
                # tight loop with no per-event limit or probe checks.
                # Tuple unpacking beats indexing twice into the popped
                # event; both callables come from locals.
                while heap and not self._stopped:
                    time, _, fn = pop(heap)
                    self.now = time
                    fn()
            else:
                processed = 0
                probe = self.probe
                while heap and not self._stopped:
                    time = heap[0][0]
                    if until is not None and time > until:
                        self.now = until
                        break
                    fn = pop(heap)[2]
                    if probe is not None and time > self.now:
                        self.now = time
                        probe(time)
                    else:
                        self.now = time
                    fn()
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} at cycle "
                            f"{self.now}"
                        )
            # idle_check fires only when the heap actually drained; the
            # until-limit break above leaves events queued and skips it.
            if not heap and idle_check is not None:
                idle_check()
        finally:
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
