"""Deterministic discrete-event simulation engine.

The engine is a classic event heap keyed on ``(time, owner, seq)``.
``owner`` is the node whose activity scheduled the event (the engine
tracks it in :attr:`Simulator.current_owner`; the fabric re-anchors it
to the destination node when a message crosses the network), and
``seq`` is drawn from a per-owner counter.  Two events scheduled for
the same cycle fire in node order, then in the order that node
scheduled them.  Determinism is a headline property of NWO (the
paper's simulator) and we preserve it — every experiment in this
repository is exactly reproducible.

The owner-local key is what makes parallel-in-time sharding possible
(:mod:`repro.sim.shard`): a shard that owns a subset of nodes
allocates exactly the sequence numbers the serial engine would have
allocated for those nodes, so event keys — and therefore tie-break
order — are identical whether the machine runs in one process or
many.  A global sequence counter could not be reproduced shard-locally
(its value depends on the interleaving of *all* nodes' activity);
per-owner counters depend only on the owner's own deterministic
history.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError

Event = Tuple[int, int, int, Callable[[], None]]


class Simulator:
    """Event-driven simulator with integer cycle time."""

    def __init__(self) -> None:
        #: Current simulation time in cycles.  A plain attribute, not a
        #: property: it is read on every ``at()``/``after()`` call and by
        #: every hot sender (fabric, processor), and a property getter
        #: costs a Python call per read.  Treat it as read-only outside
        #: this class.
        self.now = 0
        #: Node context of the event currently executing; events
        #: scheduled without an explicit owner inherit it.  The run
        #: loops set it from each event's key; the fabric sets it to a
        #: message's destination when delivery processing begins.
        self.current_owner = 0
        #: Full key of the event currently executing under
        #: :meth:`run_window` — shard-mode bookkeeping used to tag
        #: observability records for deterministic cross-shard merging.
        self.current_key: Tuple[int, int, int] = (0, 0, 0)
        self._owner_seq: Dict[int, int] = {}
        self._heap: List[Event] = []
        self._running = False
        self._stopped = False
        #: observability probe, called with the new time whenever the
        #: clock advances to a later cycle (repro.obs time-series
        #: sampling).  Probes read state only — they must not schedule
        #: events — so attaching one cannot perturb the simulation.
        self.probe: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def alloc_seq(self, owner: int) -> int:
        """Allocate the next sequence number for ``owner``.

        Exposed for the sharded fabric, which must burn the sender-side
        sequence number for a cross-shard message locally (keeping the
        sender's counter bit-identical to the serial engine's) and ship
        the finished key to the destination shard for :meth:`post`.
        """
        seqs = self._owner_seq
        seq = seqs.get(owner, 0) + 1
        seqs[owner] = seq
        return seq

    def at(self, time: int, fn: Callable[[], None],
           owner: Optional[int] = None) -> None:
        """Schedule ``fn`` to run at absolute cycle ``time``.

        ``owner`` defaults to :attr:`current_owner` — the node context
        of the event being executed.  Validation precedes the
        sequence-number allocation: a rejected schedule must not burn a
        sequence number, or an exception caught and retried by a caller
        would shift the tie-break order of every later event and break
        bit-for-bit reproducibility.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {self.now})"
            )
        if owner is None:
            owner = self.current_owner
        seqs = self._owner_seq
        seq = seqs.get(owner, 0) + 1
        seqs[owner] = seq
        heapq.heappush(self._heap, (time, owner, seq, fn))

    def after(self, delay: int, fn: Callable[[], None],
              owner: Optional[int] = None) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn, owner)

    def post(self, time: int, owner: int, seq: int,
             fn: Callable[[], None]) -> None:
        """Insert an event under a pre-allocated ``(time, owner, seq)``.

        Shard-mode injection: a cross-shard message arrives with the
        exact key its sender allocated (via :meth:`alloc_seq`), so the
        destination shard's heap orders it precisely where the serial
        engine would have.  The local counter for ``owner`` is *not*
        advanced — the owning shard already did.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot post event in the past ({time} < {self.now})"
            )
        heapq.heappush(self._heap, (time, owner, seq, fn))

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        idle_check: Optional[Callable[[], None]] = None,
    ) -> int:
        """Run events until the heap drains, ``until`` cycles pass, or
        :meth:`stop` is called.

        Parameters
        ----------
        until:
            Absolute cycle limit; events at later times stay queued.
        max_events:
            Safety valve against runaway simulations.
        idle_check:
            Called once when the event heap drains; may raise (e.g. a
            deadlock detector that knows processors are still blocked).

        Returns
        -------
        int
            The simulation time when the run loop exited.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        # Hoist the heap and heappop into locals: every simulated cycle
        # of every run funnels through this loop, and the attribute
        # loads dominate its overhead.  The heap *list* is mutated in
        # place by at()/heappush, so the local alias stays valid while
        # events schedule more events; _stopped must be re-read each
        # iteration because stop() flips it mid-loop.
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None and max_events is None and self.probe is None:
                # No cycle limit, no event budget, no observer: the
                # common case (every experiment driver run) takes the
                # tight loop with no per-event limit or probe checks.
                # Tuple unpacking beats indexing into the popped event;
                # both callables come from locals.
                while heap and not self._stopped:
                    time, owner, _, fn = pop(heap)
                    self.now = time
                    self.current_owner = owner
                    fn()
            else:
                processed = 0
                probe = self.probe
                while heap and not self._stopped:
                    time = heap[0][0]
                    if until is not None and time > until:
                        self.now = until
                        break
                    _, owner, _, fn = pop(heap)
                    if probe is not None and time > self.now:
                        self.now = time
                        probe(time)
                    else:
                        self.now = time
                    self.current_owner = owner
                    fn()
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} at cycle "
                            f"{self.now}"
                        )
            # idle_check fires only when the heap actually drained; the
            # until-limit break above leaves events queued and skips it.
            if not heap and idle_check is not None:
                idle_check()
        finally:
            self._running = False
        return self.now

    def run_window(self, limit: int) -> int:
        """Run every queued event with ``time < limit``; return the
        number executed.

        The shard loop: a shard advances through one conservative time
        window, then synchronises at the window barrier
        (:mod:`repro.sim.shard`).  Events at or beyond ``limit`` stay
        queued for later windows.  Each executed event's full key is
        published in :attr:`current_key` so observability records
        emitted during it can be tagged for deterministic merging.
        """
        if self._running:
            raise SimulationError("run_window() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        try:
            while heap and not self._stopped:
                if heap[0][0] >= limit:
                    break
                time, owner, seq, fn = pop(heap)
                self.now = time
                self.current_owner = owner
                self.current_key = (time, owner, seq)
                fn()
                executed += 1
        finally:
            self._running = False
        return executed

    @property
    def next_event_time(self) -> Optional[int]:
        """Time of the earliest queued event, or ``None`` if idle."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
