"""Conservative time windows for parallel-in-time sharding.

The sharded runtime (:mod:`repro.sim.shard`) advances every shard
through bounded windows of simulated time, exchanging cross-shard
fabric messages only at window barriers.  That is sound — no shard can
ever receive an event it should already have processed — because the
mesh gives a *lookahead* guarantee: a message sent at time ``t`` from
node ``i`` to node ``j`` cannot arrive before

    ``t + size_flits + hops(i, j) * hop_latency``

(the transmit queue serialises the full message before the head enters
the mesh, and transit is ``hop_latency`` per hop).  Minimising over
message size (``header_flits`` — no protocol message is smaller) and
over all cross-shard node pairs yields the window length ``W``: every
message sent during a window ``[S, S + W)`` arrives at or after
``S + W``, i.e. in a later window, so shards never need to hear from
each other mid-window.  This is the classic conservative lookahead of
Chandy–Misra-style parallel discrete-event simulation, computed from
the mesh geometry instead of a user-supplied null-message bound.

Nodes are partitioned into contiguous row-major ranges.  On a 2-D mesh
that keeps each shard's nodes spatially clustered (whole rows), which
maximises the minimum cross-shard hop distance a non-trivial partition
can achieve while keeping ownership a cheap range lookup.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigurationError
from repro.network.topology import Mesh

__all__ = ["partition_nodes", "owner_of_nodes", "min_cross_shard_hops",
           "window_length"]


def partition_nodes(n_nodes: int, n_shards: int) -> List[List[int]]:
    """Split ``range(n_nodes)`` into ``n_shards`` contiguous ranges.

    Sizes differ by at most one (the first ``n_nodes % n_shards``
    shards take the extra node).  Every shard owns at least one node:
    more shards than nodes is a configuration error.
    """
    if n_shards < 1:
        raise ConfigurationError(f"need at least one shard, got {n_shards}")
    if n_shards > n_nodes:
        raise ConfigurationError(
            f"cannot split {n_nodes} nodes across {n_shards} shards"
        )
    base, extra = divmod(n_nodes, n_shards)
    shards: List[List[int]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


def owner_of_nodes(n_nodes: int, n_shards: int) -> List[int]:
    """``owner[node] -> shard`` for the contiguous partition."""
    owner = [0] * n_nodes
    for shard, nodes in enumerate(partition_nodes(n_nodes, n_shards)):
        for node in nodes:
            owner[node] = shard
    return owner


def min_cross_shard_hops(mesh: Mesh, owner: List[int]) -> int:
    """Minimum mesh distance between nodes owned by different shards.

    This is the distance that bounds how quickly one shard's activity
    can influence another's; with a single shard there is no cross-shard
    pair and the (unused) lookahead is taken over the full mesh
    diameter, returned here as the maximum hop count.
    """
    n = mesh.n_nodes
    table = mesh.hop_table()
    best = None
    for src in range(n):
        row = src * n
        owner_src = owner[src]
        for dst in range(src + 1, n):
            if owner[dst] == owner_src:
                continue
            hops = table[row + dst]
            if best is None or hops < best:
                best = hops
                if best == 1:
                    return 1  # a mesh cannot do better
    if best is None:
        return max(table)
    return best


def window_length(header_flits: int, hop_latency: int,
                  min_hops: int) -> int:
    """Conservative window length in cycles.

    ``header_flits`` cycles of transmit serialisation (the smallest
    message) plus ``min_hops * hop_latency`` of transit: no cross-shard
    message sent inside a window can arrive before the window after it.
    Floored at 1 so degenerate parameterisations still make progress.
    """
    return max(1, header_flits + min_hops * hop_latency)
