"""Sharded parallel-in-time execution of one machine.

Splits a :class:`~repro.machine.machine.Machine`'s nodes across worker
processes and advances them through conservative time windows
(:mod:`repro.sim.windows`), exchanging cross-shard fabric messages at
window barriers.  The result is *byte-identical* to the serial engine —
same cycle counts, same :class:`~repro.sim.stats.RunStats` digest, same
attribution artifacts — because nothing about the simulation's logical
order depends on the partitioning:

- Event keys are ``(time, owner, seq)`` with per-owner sequence
  counters (:mod:`repro.sim.engine`).  A shard that owns a node
  allocates exactly the sequence numbers the serial engine would have
  allocated for it, so keys are reproducible shard-locally.
- A cross-shard message carries the key its sender allocated; the
  destination shard inserts it verbatim (:meth:`Simulator.post`), so
  the event sorts precisely where the serial heap would have put it.
- The window length is the mesh's conservative lookahead: no message
  sent inside a window can arrive before the next window, so shards
  never miss each other's events (see :mod:`repro.sim.windows`).
- Observability records (handler samples, event-bus events) are tagged
  with the engine key of the event that emitted them plus a per-shard
  emission counter; a k-way merge by that tag reproduces the serial
  emission order exactly, and the merged stream is replayed through
  the parent machine's event bus.

Every worker builds the *full* machine and runs the full (side-effect
free) workload setup, then starts only the processors it owns.  Shared
state never needs synchronising because there is none: directory
entries live at a block's home node, caches at their node, and every
protocol interaction crosses the fabric.

The transport is plain blocking pipes through a star coordinator (the
parent process).  On each round the coordinator gathers every shard's
outbound messages and next event time, picks the next window start
(skipping idle gaps), routes messages, and releases the shards.
Blocking IPC — not spin barriers — matters here: with more shards than
cores a spinning shard would steal the timeslice the running shard
needs.
"""

from __future__ import annotations

import heapq
import multiprocessing
import traceback
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, DeadlockError, SimulationError
from repro.sim.windows import (
    min_cross_shard_hops,
    owner_of_nodes,
    partition_nodes,
    window_length,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.sim.stats import RunStats
    from repro.workloads.base import Workload

__all__ = ["run_sharded", "sharding_available"]

#: A shard reports progress to the coordinator every round; the
#: coordinator forwards at most one report per shard per this many
#: windows to keep heartbeat overhead negligible.
PROGRESS_EVERY = 512

#: Observability channels a sharded run can record and replay.  The
#: ``advance`` channel (time-series samplers, live progress meters) is
#: deliberately absent: clock advance interleaves across shards and has
#: no per-event key to merge by.
RECORDABLE_CHANNELS = ("user", "stall", "handler", "trap", "message",
                       "transition")


def sharding_available() -> bool:
    """Whether this process may spawn shard workers.

    Daemonic processes (e.g. a job-pool worker) cannot fork children;
    the caller falls back to the serial engine, which is byte-identical
    anyway.
    """
    return not multiprocessing.current_process().daemon


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _build_worker_machine(ctor: Dict, workload: "Workload",
                          owned: List[int]):
    """Construct the full machine and start only the owned processors."""
    from repro.machine.machine import Machine

    machine = Machine(**ctor)
    workload.setup(machine)
    if machine.sim.pending_events:
        raise ConfigurationError(
            "sharded execution requires a schedule-free workload setup; "
            f"setup left {machine.sim.pending_events} events queued"
        )
    for node_id in owned:
        node = machine.nodes[node_id]
        node.processor.start(workload.thread(machine, node_id))
    return machine


def _shard_worker(conn, shard_id: int, n_shards: int, owned: List[int],
                  ctor: Dict, workload: "Workload",
                  obs_channels: Tuple[str, ...]) -> None:
    """Entry point of one shard process."""
    try:
        machine = _build_worker_machine(ctor, workload, owned)
        sim = machine.sim
        fabric = machine.fabric
        node_owner = owner_of_nodes(machine.params.n_nodes, n_shards)
        owned_mask = bytearray(machine.params.n_nodes)
        for node_id in owned:
            owned_mask[node_id] = 1

        #: cross-shard messages sent during the current window
        outbox: List[Tuple[int, int, int, object]] = []
        receive = fabric._receive
        post = sim.post
        alloc = sim.alloc_seq

        def schedule_arrival(msg, arrival: int) -> None:
            # Burn the sender-side sequence number exactly as the
            # serial fabric's sim.at() would, then either queue the
            # arrival locally or ship (key, message) to the owner.
            owner = sim.current_owner
            seq = alloc(owner)
            if owned_mask[msg.dst]:
                post(arrival, owner, seq, partial(receive, msg))
            else:
                outbox.append((arrival, owner, seq, msg))

        fabric._schedule_arrival = schedule_arrival

        # Handler samples: collect tagged with (engine key, emission
        # index) for the deterministic merge.  A shard only needs its
        # locally-first MAX samples: its list is ordered by engine key,
        # so any sample past the cap has >= MAX globally-earlier
        # samples from this shard alone and can never make the merged
        # first MAX.
        from repro.machine.machine import MAX_HANDLER_SAMPLES

        tagged_samples: List[Tuple[Tuple[int, int, int], int, object]] = []
        samples_overflow = [0]
        if machine.collect_handler_samples:
            def record_sample(sample) -> None:
                n = len(tagged_samples)
                if n >= MAX_HANDLER_SAMPLES:
                    samples_overflow[0] += 1
                    return
                tagged_samples.append((sim.current_key, n, sample))

            machine.record_handler_sample = record_sample

        # Observability: subscribe a recorder per requested channel;
        # the parent replays the merged stream through its own bus.
        obs_records: List[Tuple[Tuple[int, int, int], int, str, object]] = []
        if obs_channels:
            bus = machine.observe()
            emitted = [0]

            def make_recorder(channel: str):
                def record(event) -> None:
                    obs_records.append(
                        (sim.current_key, emitted[0], channel, event))
                    emitted[0] += 1
                return record

            for channel in obs_channels:
                bus.subscribe(channel, make_recorder(channel))

        conn.send(("ok", sim.next_event_time, {}, sim.now))
        while True:
            command = conn.recv()
            if command[0] == "finish":
                break
            _, window_end, inbound = command
            for arrival, owner, seq, msg in inbound:
                post(arrival, owner, seq, partial(receive, msg))
            sim.run_window(window_end)
            grouped: Dict[int, List] = {}
            for entry in outbox:
                if entry[0] < window_end:
                    raise SimulationError(
                        f"lookahead violation: cross-shard message "
                        f"arrives at {entry[0]} inside window ending "
                        f"{window_end}"
                    )
                grouped.setdefault(node_owner[entry[3].dst], []).append(entry)
            outbox.clear()
            conn.send(("ok", sim.next_event_time, grouped, sim.now))

        stuck = [
            (node_id, machine.nodes[node_id].processor.state.value)
            for node_id in owned
            if not machine.nodes[node_id].processor.done
        ]
        result = {
            "stats": {i: machine.nodes[i].stats for i in owned},
            "done_at": dict(machine._done_at),
            "seq": (machine.seq_compute, machine.seq_mem_ops,
                    machine.seq_ifetches),
            "samples": tagged_samples,
            "samples_overflow": samples_overflow[0],
            "worker_sets": machine._worker_sets,
            "obs": obs_records,
            "fabric": (fabric.messages_delivered, fabric.flits_carried),
            "barriers": (machine.barrier.barriers_completed
                         if owned_mask[0] else 0),
            "stuck": stuck,
            "now": sim.now,
        }
        conn.send(("result", result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def _recv_checked(conn):
    reply = conn.recv()
    if reply[0] == "error":
        raise SimulationError(f"shard worker failed:\n{reply[1]}")
    return reply


def run_sharded(
    machine: "Machine",
    workload: "Workload",
    n_shards: int,
    progress: Optional[Callable[[int, int], None]] = None,
) -> "RunStats":
    """Run ``workload`` on ``machine`` across ``n_shards`` processes.

    Returns statistics byte-identical to the serial engine's.  Called
    by :meth:`Machine.run`; ``progress`` (if given) receives
    ``(shard_id, cycles)`` heartbeats at a bounded rate.
    """
    if not getattr(workload, "shard_safe", True):
        raise ConfigurationError(
            f"workload {workload.name!r} declares shard_safe=False: its "
            "thread op streams depend on the serial interleaving"
        )
    params = machine.params
    shards = partition_nodes(params.n_nodes, n_shards)
    owner = owner_of_nodes(params.n_nodes, n_shards)
    window = window_length(
        params.header_flits, params.hop_latency,
        min_cross_shard_hops(machine.mesh, owner),
    )

    obs_channels: Tuple[str, ...] = ()
    bus = machine.obs
    if bus is not None:
        if bus.on_advance:
            raise ConfigurationError(
                "sharded runs cannot drive 'advance' subscribers "
                "(samplers, live progress); drop them or run --shards 1"
            )
        obs_channels = tuple(c for c in RECORDABLE_CHANNELS
                             if getattr(bus, "on_" + c))

    ctx = multiprocessing.get_context()
    conns = []
    workers = []
    try:
        for shard_id, owned in enumerate(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, shard_id, n_shards, owned,
                      machine._ctor_args, workload, obs_channels),
                name=f"repro-shard-{shard_id}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(proc)

        rounds = 0
        while True:
            replies = [_recv_checked(conn) for conn in conns]
            inbound: List[List] = [[] for _ in shards]
            candidates: List[int] = []
            for _, next_time, grouped, _now in replies:
                if next_time is not None:
                    candidates.append(next_time)
                for dst_shard in sorted(grouped):
                    batch = grouped[dst_shard]
                    inbound[dst_shard].extend(batch)
                    candidates.extend(entry[0] for entry in batch)
            if progress is not None and rounds % PROGRESS_EVERY == 0:
                for shard_id, reply in enumerate(replies):
                    progress(shard_id, reply[3])
            if not candidates:
                break
            window_end = min(candidates) + window
            for shard_id, conn in enumerate(conns):
                conn.send(("run", window_end, inbound[shard_id]))
            rounds += 1

        for conn in conns:
            conn.send(("finish",))
        results = [_recv_checked(conn)[1] for conn in conns]
    finally:
        for conn in conns:
            conn.close()
        for proc in workers:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join()

    return _merge_results(machine, results, progress)


def _merge_results(machine: "Machine", results: List[Dict],
                   progress: Optional[Callable[[int, int], None]]) -> "RunStats":
    from repro.machine.machine import MAX_HANDLER_SAMPLES

    machine.sim.now = max(r["now"] for r in results)

    stuck: List[Tuple[int, str]] = []
    for result in results:
        stuck.extend(result["stuck"])
    if stuck:
        stuck.sort()
        raise DeadlockError(
            f"event queues drained at cycle {machine.sim.now} with "
            f"blocked processors: {stuck[:8]}"
        )

    for result in results:
        for node_id, stats in result["stats"].items():
            machine.nodes[node_id].stats = stats
        machine._done_at.update(result["done_at"])
        machine.seq_compute += result["seq"][0]
        machine.seq_mem_ops += result["seq"][1]
        machine.seq_ifetches += result["seq"][2]
        for block, members in result["worker_sets"].items():
            machine._worker_sets.setdefault(block, set()).update(members)
        machine.fabric.messages_delivered += result["fabric"][0]
        machine.fabric.flits_carried += result["fabric"][1]
        machine.barrier.barriers_completed += result["barriers"]

    # Handler samples: k-way merge by (engine key, emission index) —
    # exactly the serial emission order — then re-apply the global cap.
    total_emitted = sum(len(r["samples"]) + r["samples_overflow"]
                        for r in results)
    merged = heapq.merge(*(r["samples"] for r in results),
                         key=lambda entry: (entry[0], entry[1]))
    samples = []
    for entry in merged:
        if len(samples) >= MAX_HANDLER_SAMPLES:
            break
        samples.append(entry[2])
    machine.handler_samples = samples
    machine.handler_samples_dropped = total_emitted - len(samples)

    # Observability replay: same merge, pushed through the parent bus
    # so subscribers (span collectors, attribution) see the exact
    # serial event stream.
    bus = machine.obs
    if bus is not None:
        replay = heapq.merge(*(r["obs"] for r in results),
                             key=lambda entry: (entry[0], entry[1]))
        emit = {channel: getattr(bus, channel)
                for channel in RECORDABLE_CHANNELS}
        for _key, _n, channel, event in replay:
            emit[channel](event)

    if progress is not None:
        for shard_id, result in enumerate(results):
            progress(shard_id, result["now"])

    return machine._collect()
