"""Deterministic discrete-event simulation engine and statistics."""

from repro.sim.engine import Simulator
from repro.sim.stats import HandlerSample, NodeStats, RunStats
from repro.sim.trace import ProtocolTracer, TraceRecord

__all__ = [
    "HandlerSample",
    "NodeStats",
    "ProtocolTracer",
    "RunStats",
    "Simulator",
    "TraceRecord",
]
