"""Exhaustive protocol model checker over the abstract machine.

This module drives :mod:`repro.verify.abstract`: for each small
configuration it breadth-first explores *every* interleaving of cache
events, message deliveries and software-handler completions, and turns
anything suspicious into :class:`~repro.verify.report.Finding`s with a
replayable witness trace (the BFS keeps parent pointers, so every
finding comes with the exact step sequence that produced it).

Checked properties
------------------
safety
    Single-writer exclusivity, no lost invalidation, INV/ACK
    conservation — raised by the abstract homes/caches the moment a
    grant or delivery would violate them, plus a coherence sweep over
    every *quiescent* state (empty network, no outstanding misses).
wellformed / state-error
    Directory entries must stay internally consistent after every
    transition; responses must find the transaction they belong to.
totality
    Every reachable ``(state, event)`` pair dispatches a row (or is
    explicitly policy-ignored); a strict-policy miss is a finding, not
    a crash.
claim
    Each row's declared ``next_state`` label is compared against the
    actual post-state every time the row fires.
stuck
    Any state with protocol obligations (outstanding miss, armed
    counter, transient entry) must have an enabled internal step.
reachability
    Across the whole config suite, a row that never fires and is not
    annotated ``unreachable=True`` is dead weight (``dead-row``); an
    annotated row that *does* fire breaks its claim
    (``unreachable-fired``).

Static checks (no exploration) validate the tables themselves: every
row's guard/action must resolve on both the real backend and the
abstract home, every ``next_state`` label must parse, and every row's
event must have a dispatch policy.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.protocol.table import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    ProtocolTable,
    allowed_after,
)
from repro.core.spec import AckMode, ProtocolSpec
from repro.verify.abstract import (
    CompiledTable,
    ModelConfig,
    home_class_for,
    initial_state,
    obligations,
    quiescent_findings,
    successors,
)
from repro.verify.report import Finding, Report

__all__ = [
    "ConfigResult",
    "DEFAULT_CONFIGS",
    "check_config",
    "coverage_findings",
    "run_model_check",
    "static_table_findings",
]

#: Exploration ceiling per configuration.  The default configurations
#: all complete exhaustively well below it; hitting the cap is itself
#: a finding (the config is too big to verify, shrink it).
MAX_STATES = 1_000_000

#: Acceptance floor: a configuration that explores fewer states than
#: this is too small to mean anything.
MIN_STATES = 1_000


def _spec(**kw) -> ProtocolSpec:
    return ProtocolSpec(**kw)


def default_configs() -> List[ModelConfig]:
    """The shipped verification suite.

    Small enough to finish exhaustively, together covering every live
    row of both tables: full-map (with migratory detection), the
    one-pointer software-extended protocols under all three ack modes,
    software broadcast, sequential invalidation (needs three nodes so
    a write sees two targets), and the software-only directory.  The
    local bit is disabled in the two-node configs so pointer overflow
    — the whole point of the software extension — is reachable with
    one remote cacher.
    """
    return [
        ModelConfig(
            "full-map, 2 nodes, migratory",
            _spec(hw_pointers=0, full_map=True),
            n_nodes=2, migratory_detection=True),
        ModelConfig(
            "1 hw pointer, no local bit, hardware acks, 2 nodes",
            _spec(hw_pointers=1, sw_extension=True, local_bit=False,
                  ack_mode=AckMode.HARDWARE),
            n_nodes=2),
        ModelConfig(
            "1 hw pointer, no local bit, ,ACK software acks, 2 nodes",
            _spec(hw_pointers=1, sw_extension=True, local_bit=False,
                  ack_mode=AckMode.SOFTWARE),
            n_nodes=2),
        ModelConfig(
            "1 hw pointer, no local bit, ,LACK last-ack trap, 2 nodes",
            _spec(hw_pointers=1, sw_extension=True, local_bit=False,
                  ack_mode=AckMode.LAST_SOFTWARE),
            n_nodes=2),
        ModelConfig(
            "software broadcast (Dir1..B), no local bit, 2 nodes",
            _spec(hw_pointers=1, sw_extension=False, sw_broadcast=True,
                  local_bit=False, ack_mode=AckMode.LAST_SOFTWARE),
            n_nodes=2),
        ModelConfig(
            "1 hw pointer + local bit, ,LACK, sequential "
            "invalidation, 3 nodes",
            _spec(hw_pointers=1, sw_extension=True, local_bit=True,
                  ack_mode=AckMode.LAST_SOFTWARE),
            n_nodes=3, drop_budget=0, invalidation_mode="sequential"),
        ModelConfig(
            "software-only directory, 2 nodes",
            _spec(hw_pointers=0, sw_extension=True, local_bit=False,
                  ack_mode=AckMode.SOFTWARE),
            n_nodes=2),
        ModelConfig(
            "software-only directory, 3 nodes",
            _spec(hw_pointers=0, sw_extension=True, local_bit=False,
                  ack_mode=AckMode.SOFTWARE),
            n_nodes=3, drop_budget=0),
    ]


#: Evaluated lazily by :func:`run_model_check` so table overrides in
#: tests never leak between calls.
DEFAULT_CONFIGS = default_configs()


@dataclasses.dataclass
class ConfigResult:
    """Exploration outcome for one configuration."""

    cfg: ModelConfig
    states: int = 0
    steps: int = 0
    fired_rows: Set[int] = dataclasses.field(default_factory=set)
    findings: List[Finding] = dataclasses.field(default_factory=list)
    capped: bool = False


def _trace(parents: Dict[tuple, Tuple[Optional[tuple], str]],
           state: tuple, last_label: Optional[str] = None) -> Tuple[str, ...]:
    steps: List[str] = [] if last_label is None else [last_label]
    cursor: Optional[tuple] = state
    while cursor is not None:
        parent, label = parents[cursor]
        if label:
            steps.append(label)
        cursor = parent
    return tuple(reversed(steps))


def check_config(cfg: ModelConfig,
                 table: Optional[ProtocolTable] = None,
                 home_cls=None,
                 max_states: int = MAX_STATES,
                 max_findings: int = 10) -> ConfigResult:
    """Exhaustively explore ``cfg`` and collect findings.

    ``table`` and ``home_cls`` override the shipped table / abstract
    home — the mutation tests use this to prove seeded corruptions are
    caught.  Exploration stops early once ``max_findings`` distinct
    findings exist (a corrupt table can make *every* state a finding).
    """
    if table is None:
        table = cfg.table
    if home_cls is None:
        home_cls = home_class_for(cfg)
    program = CompiledTable(table)
    result = ConfigResult(cfg)
    where = f"model config [{cfg.label}]"

    init = initial_state(cfg)
    parents: Dict[tuple, Tuple[Optional[tuple], str]] = {init: (None, "")}
    queue = deque([init])
    seen_messages: Set[Tuple[str, str]] = set()

    def add(code: str, message: str, trace: Tuple[str, ...]) -> None:
        # One finding per (code, message) pair keeps the report small
        # and deterministic while still covering every failure class.
        if (code, message) in seen_messages:
            return
        seen_messages.add((code, message))
        result.findings.append(
            Finding("modelcheck", code, where, message, trace))

    while queue and len(result.findings) < max_findings:
        state = queue.popleft()
        result.states += 1
        succ = successors(cfg, state, program, home_cls)
        internal = [s for s in succ if s[1] == "internal"]
        if not internal:
            if obligations(cfg, state):
                add("stuck",
                    "protocol work outstanding but no delivery or "
                    "handler step is enabled",
                    _trace(parents, state))
            else:
                for code, message in quiescent_findings(
                        cfg, state, home_cls):
                    add(code, message, _trace(parents, state))
        for label, _kind, outcome in succ:
            result.steps += 1
            if outcome[0] == "violation":
                violation = outcome[1]
                result.fired_rows.update(outcome[2])
                add(violation.code, str(violation),
                    _trace(parents, state, last_label=label))
                continue
            _tag, nxt, fired = outcome
            result.fired_rows.update(fired)
            if nxt not in parents:
                parents[nxt] = (state, label)
                queue.append(nxt)
        if len(parents) > max_states:
            result.capped = True
            add("limit",
                f"state space exceeds {max_states} states — "
                f"shrink the configuration",
                ())
            break

    # A clean run over a tiny state space proves nothing; a run cut
    # short by findings is small *because* it found something.
    if not result.capped and not result.findings \
            and result.states < MIN_STATES:
        add("thin-config",
            f"only {result.states} states explored "
            f"(need >= {MIN_STATES} for a meaningful check)",
            ())
    return result


# ----------------------------------------------------------------------
# Static table checks
# ----------------------------------------------------------------------


def _real_backends_for(table: ProtocolTable):
    from repro.core.protocol import backends

    if table is SOFTWARE_ONLY_TABLE or table.name == "software-only":
        return [backends.SoftwareOnlyBackend]
    return [backends.FullMapBackend, backends.LimitedPointerBackend]


def _abstract_homes_for(table: ProtocolTable):
    from repro.verify import abstract

    if table is SOFTWARE_ONLY_TABLE or table.name == "software-only":
        return [abstract.AbstractSoftwareOnlyHome]
    return [abstract.AbstractHardwareHome]


def static_table_findings(table: ProtocolTable) -> List[Finding]:
    """Checks that need no exploration: name resolution, label
    grammar, per-event dispatch policies."""
    findings: List[Finding] = []
    classes = _real_backends_for(table) + _abstract_homes_for(table)
    for index, row in enumerate(table.transitions):
        where = (f"table {table.name} row {index} "
                 f"({row.event}/{row.action})")
        for cls in classes:
            if not callable(getattr(cls, row.action, None)):
                findings.append(Finding(
                    "modelcheck", "unresolved-name", where,
                    f"action {row.action!r} is not defined on "
                    f"{cls.__name__}"))
            if row.guard is not None \
                    and not callable(getattr(cls, row.guard, None)):
                findings.append(Finding(
                    "modelcheck", "unresolved-name", where,
                    f"guard {row.guard!r} is not defined on "
                    f"{cls.__name__}"))
        try:
            allowed_after(row.next_state)
        except Exception as exc:  # pragma: no cover - defensive
            findings.append(Finding(
                "modelcheck", "bad-claim", where,
                f"next_state label {row.next_state!r} does not "
                f"parse: {exc}"))
        if row.event not in table.policies:
            findings.append(Finding(
                "modelcheck", "orphan-row", where,
                f"event {row.event!r} has no dispatch policy — the "
                f"engine would never evaluate this row"))
    return findings


def coverage_findings(table: ProtocolTable, fired: Set[int],
                      coverage: bool = True) -> List[Finding]:
    """Row-reachability verdicts given the union of ``fired`` row
    indices; ``coverage=False`` limits this to refuting wrong
    ``unreachable=True`` annotations (see below)."""
    findings: List[Finding] = []
    for index, row in enumerate(table.transitions):
        where = (f"table {table.name} row {index} "
                 f"({row.event}/{row.action})")
        if index in fired and row.unreachable:
            # Valid on any subset: one firing refutes the claim.
            findings.append(Finding(
                "modelcheck", "unreachable-fired", where,
                "row is annotated unreachable=True but fires in the "
                "explored state space — the defensive claim is wrong"))
        elif coverage and index not in fired and not row.unreachable:
            # Only meaningful against the full suite — a subset not
            # designed to cover every row proves nothing dead.
            findings.append(Finding(
                "modelcheck", "dead-row", where,
                "row never fires across the configuration suite — "
                "delete it or annotate unreachable=True with a "
                "justification"))
    return findings


def run_model_check(configs: Optional[Sequence[ModelConfig]] = None,
                    max_states: int = MAX_STATES,
                    coverage: Optional[bool] = None) -> Report:
    """Full pass: static table checks, per-config exploration,
    cross-config row-coverage verdicts.

    ``coverage`` controls dead-row reporting; it defaults to on only
    when running the shipped (full) configuration suite.
    """
    if coverage is None:
        coverage = configs is None
    if configs is None:
        configs = default_configs()
    report = Report()
    report.passes.append("modelcheck")
    tables: List[ProtocolTable] = []
    for cfg in configs:
        if cfg.table not in tables:
            tables.append(cfg.table)
    for table in tables:
        report.findings.extend(static_table_findings(table))

    fired_by_table: Dict[str, Set[int]] = {}
    total_states = 0
    for cfg in configs:
        result = check_config(cfg, max_states=max_states)
        report.findings.extend(result.findings)
        fired_by_table.setdefault(cfg.table.name, set()).update(
            result.fired_rows)
        total_states += result.states
        key = f"modelcheck.states[{cfg.label}]"
        report.stats[key] = result.states

    for table in tables:
        fired = fired_by_table.get(table.name, set())
        report.findings.extend(
            coverage_findings(table, fired, coverage))
        report.stats[f"modelcheck.rows_fired[{table.name}]"] = (
            f"{len(fired)}/{len(table.transitions)}")
    report.stats["modelcheck.configs"] = len(list(configs))
    report.stats["modelcheck.states_total"] = total_states
    return report
