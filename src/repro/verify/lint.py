"""Determinism linter: AST pass over the package source.

The repo guarantees byte-identical output for identical configurations
(CI diffs serial vs. parallel runs, warm vs. cold caches).  That
guarantee dies quietly the first time somebody iterates a ``set``,
reads the wall clock, or orders anything by ``id()`` — so this pass
flags the hazard *classes* rather than waiting for a workload to
expose one:

========  ==========================================================
code      hazard
========  ==========================================================
RND01     iteration over a set (set literal/constructor/comprehension,
          or a local variable bound to one) without ``sorted``
RND02     wall-clock or RNG in library code (``time.time``,
          ``time.perf_counter``/``monotonic`` and their ``_ns``
          twins, ``datetime.now``/``utcnow``/``today``, the
          ``random`` module)
RND03     directory listing in filesystem order (``os.listdir`` /
          ``os.scandir`` not wrapped in ``sorted``; ``os.walk`` loops
          that neither sort ``dirnames`` in place nor sort
          ``filenames`` before use)
RND04     ``dict.popitem()`` with no arguments (LIFO on insertion
          order of a dict that may itself be populated
          nondeterministically; ``OrderedDict.popitem(last=False)``
          is deterministic and not flagged)
RND05     ``id()`` used anywhere — object identity as an ordering or
          dictionary key is address-space dependent
RND06     ``exec``/``eval`` — dynamic code is invisible to this AST
          pass, so it must carry a suppression *and* register its
          generated text for linting (see below); also flags a
          registered generated source missing the
          ``# repro: generated-by(compile)`` header
RND00     a suppression comment with an empty reason
========  ==========================================================

A finding on line *N* is suppressed by an inline comment on the same
line::

    now = time.time()  # repro: allow-nondet(cache aging is wall-clock)

The reason is mandatory; an empty ``allow-nondet()`` is itself a
finding (RND00).  Suppressions are deliberate, grep-able admissions —
the linter is a gate, not a style preference.

**Generated code.**  The protocol table compiler
(:mod:`repro.core.protocol.compile`) builds dispatch functions with
``exec``.  Rather than trusting its suppression blindly, the linter
closes the loop: every generated module is registered under a
deterministic pseudo-filename with a ``# repro: generated-by(compile)``
header, and :func:`run_lint` lints the registered *text* with exactly
the rules applied to checked-in files (the built-in tables are
force-generated so the gate does not depend on a machine having been
constructed first).  A nondeterministic construct that sneaks into
generated source is therefore caught the same way it would be in
hand-written source — ``tests/test_lint.py`` proves it by mutation.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Set

from repro.verify.report import Finding, Report

__all__ = ["lint_file", "lint_source", "lint_tree", "run_lint"]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow-nondet\(([^)]*)\)")

#: Call names treated as producing a set value.
_SET_CONSTRUCTORS = {"set", "frozenset"}

#: ``random`` module attributes are all RNG; these bare names are the
#: common ``from random import ...`` spellings.
_RANDOM_NAMES = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "getrandbits", "seed",
}

_CLOCK_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    """Syntactically a set value: literal, comprehension, constructor
    call, a known set-typed local, or a union/intersection of such."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _SET_CONSTRUCTORS:
        return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_vars)
                or _is_set_expr(node.right, set_vars))
    return False


class _Scope:
    """One function (or module) body: tracks locals bound to sets."""

    def __init__(self) -> None:
        self.set_vars: Set[str] = set()


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: List[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[Finding] = []
        self.scopes: List[_Scope] = [_Scope()]
        self.used_suppressions: Set[int] = set()

    # -- plumbing ------------------------------------------------------

    def _suppression(self, lineno: int) -> Optional[str]:
        if 1 <= lineno <= len(self.lines):
            m = _SUPPRESS_RE.search(self.lines[lineno - 1])
            if m:
                self.used_suppressions.add(lineno)
                return m.group(1).strip()
        return None

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        reason = self._suppression(lineno)
        if reason is not None:
            if not reason:
                self.findings.append(Finding(
                    "lint", "RND00", f"{self.path}:{lineno}",
                    "allow-nondet() suppression needs a reason"))
            return
        self.findings.append(Finding(
            "lint", code, f"{self.path}:{lineno}", message))

    @property
    def _scope(self) -> _Scope:
        return self.scopes[-1]

    def _in_scope_set_vars(self) -> Set[str]:
        return self._scope.set_vars

    # -- scope tracking ------------------------------------------------

    def _visit_function(self, node) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if names:
            is_set = _is_set_expr(node.value, self._in_scope_set_vars())
            for name in names:
                if is_set:
                    self._scope.set_vars.add(name)
                else:
                    self._scope.set_vars.discard(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value, self._in_scope_set_vars()):
                self._scope.set_vars.add(node.target.id)
            else:
                self._scope.set_vars.discard(node.target.id)
        self.generic_visit(node)

    # -- RND01: set iteration ------------------------------------------

    def _check_iteration(self, node: ast.AST, iter_expr: ast.AST) -> None:
        if _is_set_expr(iter_expr, self._in_scope_set_vars()):
            self._flag(node, "RND01",
                       "iteration over a set — wrap in sorted() or "
                       "iterate a list/dict instead")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self._check_os_walk(node)
        self.generic_visit(node)

    def visit_comprehension_like(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_like
    visit_SetComp = visit_comprehension_like
    visit_DictComp = visit_comprehension_like
    visit_GeneratorExp = visit_comprehension_like

    # -- RND02/03/04/05: calls -----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            tail = tuple(dotted.split(".")[-2:])
            if tail in _CLOCK_ATTRS:
                self._flag(node, "RND02",
                           f"wall clock ({dotted}) in library code — "
                           f"derive times from simulated cycles, or "
                           f"suppress with a reason")
            head = dotted.split(".", 1)[0]
            if head == "random":
                self._flag(node, "RND02",
                           f"RNG ({dotted}) in library code — thread "
                           f"an explicit seeded generator instead")
            if tail in (("os", "listdir"), ("os", "scandir")) \
                    and not self._sorted_wrapped(node):
                self._flag(node, "RND03",
                           f"{dotted} returns entries in filesystem "
                           f"order — wrap in sorted()")
        if isinstance(node.func, ast.Name):
            if node.func.id in _RANDOM_NAMES \
                    and node.func.id != "random":
                # bare names from ``from random import ...``; a bare
                # ``random()`` call is far more likely a local.
                pass
            if node.func.id == "id":
                self._flag(node, "RND05",
                           "id() is address-space dependent — key or "
                           "order by a stable identifier instead")
            if node.func.id in ("exec", "eval"):
                self._flag(node, "RND06",
                           f"{node.func.id}() hides code from this "
                           f"lint — register the generated text (see "
                           f"repro.core.protocol.compile) and suppress "
                           f"with a reason")
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "popitem" and not node.args \
                and not node.keywords:
            self._flag(node, "RND04",
                       "popitem() pops in insertion order of a dict "
                       "that may be populated nondeterministically — "
                       "pop an explicit key (OrderedDict.popitem("
                       "last=False) is fine)")
        self.generic_visit(node)

    def _sorted_wrapped(self, node: ast.Call) -> bool:
        parent = getattr(node, "_repro_parent", None)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("sorted", "len", "set",
                                       "frozenset"))

    # -- RND03: os.walk ------------------------------------------------

    def _check_os_walk(self, node: ast.For) -> None:
        if not (isinstance(node.iter, ast.Call)
                and _dotted(node.iter.func) in ("os.walk", "walk")):
            return
        # for root, dirs, files in os.walk(...): the loop is
        # deterministic iff dirs is sorted in place (that also fixes
        # traversal order) and files is consumed through sorted().
        names: List[Optional[str]] = [None, None, None]
        if isinstance(node.target, ast.Tuple) \
                and len(node.target.elts) == 3:
            for i, elt in enumerate(node.target.elts):
                if isinstance(elt, ast.Name):
                    names[i] = elt.id
        dirs_name, files_name = names[1], names[2]
        body_src = ast.dump(ast.Module(body=node.body, type_ignores=[]))
        ok_dirs = dirs_name is None or dirs_name.startswith("_") or (
            f"attr='sort'" in body_src
            and f"id='{dirs_name}'" in body_src)
        ok_files = files_name is None or self._files_sorted(
            node.body, files_name)
        if not (ok_dirs and ok_files):
            self._flag(node, "RND03",
                       "os.walk yields names in filesystem order — "
                       "sort dirnames in place and iterate "
                       "sorted(filenames)")

    @staticmethod
    def _files_sorted(body: List[ast.stmt], files_name: str) -> bool:
        sorted_ok = True
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id == files_name:
                    parent = getattr(sub, "_repro_parent", None)
                    wrapped = (isinstance(parent, ast.Call)
                               and isinstance(parent.func, ast.Name)
                               and parent.func.id in ("sorted", "len"))
                    in_place = (isinstance(parent, ast.Attribute)
                                and parent.attr == "sort")
                    if not (wrapped or in_place):
                        sorted_ok = False
        return sorted_ok


def _link_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint python ``source``; ``path`` labels the findings."""
    tree = ast.parse(source)
    _link_parents(tree)
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    # Suppression comments that never matched a finding are stale —
    # surface them so they cannot mask future regressions silently.
    # Lines inside string literals (docstrings quoting the syntax)
    # are not comments and are skipped.
    literal_lines: Set[int] = set()
    for sub in ast.walk(tree):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            end = getattr(sub, "end_lineno", sub.lineno)
            literal_lines.update(range(sub.lineno, end + 1))
    for lineno, line in enumerate(source.splitlines(), start=1):
        if lineno in literal_lines:
            continue
        m = _SUPPRESS_RE.search(line)
        if m and lineno not in linter.used_suppressions:
            linter.findings.append(Finding(
                "lint", "RND00", f"{path}:{lineno}",
                "allow-nondet suppression matches no finding — "
                "remove it"))
    return sorted(linter.findings,
                  key=lambda f: (f.location, f.code, f.message))


def lint_file(path: str) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def lint_tree(root: str, rel_to: Optional[str] = None) -> List[Finding]:
    """Lint every ``.py`` file under ``root`` (deterministic order)."""
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            label = os.path.relpath(path, rel_to) if rel_to else path
            with open(path, "r", encoding="utf-8") as fh:
                findings.extend(lint_source(fh.read(), label))
    return findings


def lint_generated_sources() -> "tuple[List[Finding], int]":
    """Lint every exec-compiled protocol dispatch module.

    Generates the built-in tables directly (so the gate holds without a
    machine ever having been constructed), merges in whatever else this
    process compiled via the registry, checks each module for the
    ``# repro: generated-by(compile)`` header, and runs the full lint
    rule set over the generated text.  Returns ``(findings, count)``.
    """
    from repro.core.protocol import compile as protocol_compile
    from repro.core.protocol.table import (
        HARDWARE_TABLE,
        SOFTWARE_ONLY_TABLE,
    )

    sources: Dict[str, str] = {
        protocol_compile.generated_filename(table):
            protocol_compile.generate_source(table)
        for table in (HARDWARE_TABLE, SOFTWARE_ONLY_TABLE)
    }
    sources.update(protocol_compile.generated_sources())
    findings: List[Finding] = []
    for filename in sorted(sources):
        text = sources[filename]
        if not text.startswith(protocol_compile.GENERATED_HEADER):
            findings.append(Finding(
                "lint", "RND06", f"{filename}:1",
                "generated module lacks the "
                "'# repro: generated-by(compile)' header"))
        findings.extend(lint_source(text, filename))
    return findings, len(sources)


def run_lint(root: Optional[str] = None) -> Report:
    """Lint the installed ``repro`` package source tree.

    Also lints the exec-compiled protocol dispatch modules through
    :func:`lint_generated_sources` — generated code passes the same
    gate as checked-in code.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    rel_root = os.path.dirname(os.path.dirname(root))
    report = Report()
    report.passes.append("lint")
    report.findings.extend(lint_tree(root, rel_to=rel_root))
    generated, n_generated = lint_generated_sources()
    report.findings.extend(generated)
    files = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        files += sum(1 for n in sorted(filenames) if n.endswith(".py"))
    report.stats["lint.files"] = files
    report.stats["lint.generated"] = n_generated
    report.stats["lint.findings"] = len(report.findings)
    return report
