"""Static verification of the coherence protocol and the codebase.

Two analyses, both exposed through ``repro check``:

- :mod:`repro.verify.modelcheck` — exhaustive exploration of the
  protocol transition tables over an abstract machine
  (:mod:`repro.verify.abstract`): safety, totality, declared-state
  soundness, row reachability, stuck-freedom.
- :mod:`repro.verify.lint` — an AST pass flagging nondeterminism
  hazards that would break the repo's byte-identical-output
  guarantee.

Findings from both passes share the :mod:`repro.verify.report` types
so CI and tooling consume one JSON shape.
"""

from repro.verify.report import (  # noqa: F401
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    Report,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Finding",
    "Report",
]
