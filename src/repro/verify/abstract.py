"""Abstract protocol-level machine for the offline model checker.

This module rebuilds just enough of the simulator to explore every
interleaving of protocol events for one memory block — no clocks, no
cost models, no workloads.  The abstraction keeps exactly the artifacts
the protocol depends on for correctness:

- **Per-channel FIFO network.**  The real fabric clamps deliveries so a
  ``(src, dst)`` pair never reorders (``_pair_last`` in
  ``repro.network.fabric``); the protocol leans on that (a write-back
  always beats its sender's next request, an INV never passes the grant
  it chases).  The abstract network is therefore a FIFO queue per
  directed node pair, with *arbitrary* interleaving across channels.
- **FIFO handler queue.**  Software handlers post to the home
  processor's trap queue and complete in order; mutations that the real
  code defers to handler completion are deferred here too (hardware
  table), while the software-only table mutates at delivery and defers
  only its sends — both exactly as in ``backends.py``.
- **Blocking caches.**  One outstanding transaction per node, BUSY
  means re-send, INV/FETCH answered exactly as
  ``repro.core.cache_ctrl`` does, clean conflict evictions are silent.

Timing is erased: every enabled step may happen next.  That makes the
exploration an *over*-approximation of the timed simulator — any safety
violation of the real machine shows up here, plus possibly schedules
the timed simulator cannot produce.  Counters that only saturate
(migratory evidence) are capped at their threshold so the state space
stays finite; the cap is behaviour-equivalent because no guard reads
values past the threshold.

Messages carry a *purpose tag* alongside their kind: invalidations are
tagged ``"wt"`` (part of a write transaction) or ``"flush"`` (the
software-only directory flushing the home's own copy), and an ACK
carries back the tag of the INV it answers.  The protocol itself never
sees tags — dispatch uses only the kind, as in the real engine — but
the safety checks use them to tell an acceptable grant/flush overlap
from a lost invalidation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.common.types import DirState
from repro.core import messages as msg
from repro.core.protocol.table import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    ProtocolTable,
)
from repro.core.software.handlers import SEQUENTIAL_THRESHOLD
from repro.core.spec import AckMode, ProtocolSpec

__all__ = [
    "ModelConfig",
    "ModelViolation",
    "World",
    "AbstractHardwareHome",
    "AbstractSoftwareOnlyHome",
    "home_class_for",
    "successors",
    "initial_state",
    "obligations",
    "quiescent_findings",
]

#: Cache states, small ints for cheap hashing.
C_INV, C_RO, C_RW = 0, 1, 2
#: Outstanding-transaction kinds per node.
O_NONE, O_READ, O_WRITE = 0, 1, 2

#: Message purpose tags (second element of a channel item).
TAG_WT = "wt"
TAG_FLUSH = "flush"


class ModelViolation(Exception):
    """A safety/consistency check failed while applying a step."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """One small configuration the checker explores exhaustively."""

    label: str
    spec: ProtocolSpec
    n_nodes: int = 3
    home: int = 0
    #: machine-wide invalidation mode ("parallel"/"sequential"/"dynamic")
    invalidation_mode: str = "parallel"
    migratory_detection: bool = False
    #: silent clean-drop budget per node (bounds untracked-copy growth)
    drop_budget: int = 1

    @property
    def table(self) -> ProtocolTable:
        return (SOFTWARE_ONLY_TABLE if self.spec.is_software_only
                else HARDWARE_TABLE)


# ----------------------------------------------------------------------
# Abstract directory entries (mirrors of DirectoryEntry /
# SoftwareDirEntry, parameterized by the config instead of a machine)
# ----------------------------------------------------------------------


class HwEntry:
    """Abstract mirror of :class:`repro.core.directory.DirectoryEntry`."""

    __slots__ = (
        "state", "pointers", "local_bit", "extended", "untracked",
        "ack_count", "pending_requester", "pending_owner",
        "pending_is_read", "fetch_is_inv", "sw_pending", "sw_write",
        "seq_targets", "migratory", "mig_evidence", "mig_conflicts",
        "last_writer", "ext_sharers", "ext_ack",
    )

    def __init__(self) -> None:
        self.state = DirState.ABSENT
        self.pointers: List[int] = []
        self.local_bit = False
        self.extended = False
        self.untracked = 0
        self.ack_count = 0
        self.pending_requester: Optional[int] = None
        self.pending_owner: Optional[int] = None
        self.pending_is_read = False
        self.fetch_is_inv = False
        self.sw_pending = False
        self.sw_write = False
        self.seq_targets: Optional[List[int]] = None
        self.migratory = False
        self.mig_evidence = 0
        self.mig_conflicts = 0
        self.last_writer: Optional[int] = None
        #: software extension record (None = not allocated)
        self.ext_sharers: Optional[FrozenSet[int]] = None
        self.ext_ack = 0

    def freeze(self) -> tuple:
        return (
            self.state, tuple(self.pointers), self.local_bit,
            self.extended, self.untracked, self.ack_count,
            self.pending_requester, self.pending_owner,
            self.pending_is_read, self.fetch_is_inv, self.sw_pending,
            self.sw_write,
            None if self.seq_targets is None else tuple(self.seq_targets),
            self.migratory, self.mig_evidence, self.mig_conflicts,
            self.last_writer, self.ext_sharers, self.ext_ack,
        )

    @classmethod
    def thaw(cls, frozen: tuple) -> "HwEntry":
        entry = cls()
        (entry.state, pointers, entry.local_bit, entry.extended,
         entry.untracked, entry.ack_count, entry.pending_requester,
         entry.pending_owner, entry.pending_is_read, entry.fetch_is_inv,
         entry.sw_pending, entry.sw_write, seq, entry.migratory,
         entry.mig_evidence, entry.mig_conflicts, entry.last_writer,
         entry.ext_sharers, entry.ext_ack) = frozen
        entry.pointers = list(pointers)
        entry.seq_targets = None if seq is None else list(seq)
        return entry

    @property
    def idle(self) -> bool:
        return not self.state.transient and not self.sw_pending


class SwEntry:
    """Abstract mirror of
    :class:`repro.core.software.extdir.SoftwareDirEntry` (plus the
    backend's per-block flush-ack counter)."""

    __slots__ = ("state", "sharers", "owner", "sw_ack_count",
                 "pending_requester", "remote_bit", "flush_acks")

    def __init__(self) -> None:
        self.state = DirState.ABSENT
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None
        self.sw_ack_count = 0
        self.pending_requester: Optional[int] = None
        self.remote_bit = False
        self.flush_acks = 0

    def freeze(self) -> tuple:
        return (self.state, frozenset(self.sharers), self.owner,
                self.sw_ack_count, self.pending_requester,
                self.remote_bit, self.flush_acks)

    @classmethod
    def thaw(cls, frozen: tuple) -> "SwEntry":
        entry = cls()
        (entry.state, sharers, entry.owner, entry.sw_ack_count,
         entry.pending_requester, entry.remote_bit,
         entry.flush_acks) = frozen
        entry.sharers = set(sharers)
        return entry

    @property
    def idle(self) -> bool:
        return not self.state.transient


# ----------------------------------------------------------------------
# The mutable world one step operates on
# ----------------------------------------------------------------------


class World:
    """Thawed global state: entry + caches + channels + handler queue."""

    __slots__ = ("cfg", "entry", "caches", "outstanding", "budgets",
                 "channels", "handlers", "fired")

    def __init__(self, cfg: ModelConfig) -> None:
        self.cfg = cfg
        self.entry = None  # type: Optional[object]
        self.caches = [C_INV] * cfg.n_nodes
        self.outstanding = [O_NONE] * cfg.n_nodes
        self.budgets = [cfg.drop_budget] * cfg.n_nodes
        #: (src, dst) -> FIFO list of (kind, tag)
        self.channels: Dict[Tuple[int, int], List[tuple]] = {}
        #: FIFO handler queue at the home processor
        self.handlers: List[tuple] = []
        #: table-row indices fired while applying the current step
        self.fired: List[int] = []

    # -- state <-> hashable key ---------------------------------------

    def freeze(self) -> tuple:
        chans = tuple(sorted(
            (pair, tuple(queue))
            for pair, queue in self.channels.items() if queue
        ))
        return (
            None if self.entry is None else self.entry.freeze(),
            tuple(self.caches), tuple(self.outstanding),
            tuple(self.budgets), chans, tuple(self.handlers),
        )

    @classmethod
    def thaw(cls, cfg: ModelConfig, frozen: tuple) -> "World":
        world = cls(cfg)
        entry, caches, outstanding, budgets, chans, handlers = frozen
        if entry is not None:
            entry_cls = (SwEntry if cfg.spec.is_software_only else HwEntry)
            world.entry = entry_cls.thaw(entry)
        world.caches = list(caches)
        world.outstanding = list(outstanding)
        world.budgets = list(budgets)
        world.channels = {pair: list(queue) for pair, queue in chans}
        world.handlers = list(handlers)
        return world

    # -- network -------------------------------------------------------

    def send(self, src: int, dst: int, kind: str,
             tag: Optional[str] = None) -> None:
        self.channels.setdefault((src, dst), []).append((kind, tag))

    def in_flight_to(self, dst: int, kind: str,
                     tag: Optional[str] = None) -> bool:
        """Any (kind[, tag]) message queued toward ``dst``?"""
        for (_, to), queue in self.channels.items():
            if to != dst:
                continue
            for mkind, mtag in queue:
                if mkind == kind and (tag is None or mtag == tag):
                    return True
        return False

    def readable(self, node: int) -> bool:
        return self.caches[node] != C_INV

    def writable(self, node: int) -> bool:
        return self.caches[node] == C_RW


# ----------------------------------------------------------------------
# Abstract homes: guard/action methods mirroring backends.py, operating
# on the abstract world.  Method names match the tables exactly, so the
# same dispatch-by-name the engine uses works here.
# ----------------------------------------------------------------------

from repro.core.protocol.backends import MIGRATORY_THRESHOLD  # noqa: E402


class AbstractHardwareHome:
    """Mirror of ``LimitedPointerBackend`` (+ ``ProtocolSoftware``)."""

    TABLE = HARDWARE_TABLE

    def __init__(self, world: World) -> None:
        self.w = world
        self.cfg = world.cfg
        self.spec = world.cfg.spec
        self.home = world.cfg.home

    # -- entry management (mirrors DirectoryEntry) ---------------------

    @property
    def capacity(self) -> int:
        return 0 if self.spec.full_map else self.spec.hw_pointers

    @property
    def use_local_bit(self) -> bool:
        return self.spec.local_bit and not self.spec.full_map

    def ensure_entry(self) -> HwEntry:
        if self.w.entry is None:
            self.w.entry = HwEntry()
        return self.w.entry

    def has_pointer(self, e: HwEntry, node: int) -> bool:
        if self.use_local_bit and node == self.home and e.local_bit:
            return True
        return node in e.pointers

    def can_record(self, e: HwEntry, node: int) -> bool:
        if self.has_pointer(e, node):
            return True
        if self.use_local_bit and node == self.home:
            return True
        return self.spec.full_map or len(e.pointers) < self.capacity

    def record_node(self, e: HwEntry, node: int) -> None:
        if self.has_pointer(e, node):
            return
        if self.use_local_bit and node == self.home:
            e.local_bit = True
            return
        if not self.spec.full_map and len(e.pointers) >= self.capacity:
            raise ModelViolation(
                "wellformed",
                f"hardware directory overflow recording node {node} "
                f"(capacity {self.capacity})",
            )
        e.pointers.append(node)

    def drop_node(self, e: HwEntry, node: int) -> None:
        if self.use_local_bit and node == self.home:
            e.local_bit = False
        while node in e.pointers:
            e.pointers.remove(node)

    def sharer_set(self, e: HwEntry) -> Set[int]:
        sharers = set(e.pointers)
        if self.use_local_bit and e.local_bit:
            sharers.add(self.home)
        return sharers

    def owner_of(self, e: HwEntry) -> int:
        if e.state is not DirState.READ_WRITE:
            raise ModelViolation(
                "state-error", f"no owner in state {e.state.value}")
        if self.use_local_bit and e.local_bit:
            return self.home
        if len(e.pointers) != 1:
            raise ModelViolation(
                "wellformed",
                f"READ_WRITE entry with {len(e.pointers)} pointers")
        return e.pointers[0]

    def reset_to_exclusive(self, e: HwEntry, owner: int) -> None:
        e.pointers = []
        e.local_bit = False
        e.extended = False
        e.state = DirState.READ_WRITE
        if self.use_local_bit and owner == self.home:
            e.local_bit = True
        else:
            e.pointers.append(owner)
        e.ack_count = 0
        e.pending_requester = None
        e.sw_write = False
        e.seq_targets = None
        e.untracked = 0

    def reset_to_absent(self, e: HwEntry) -> None:
        e.pointers = []
        e.local_bit = False
        e.extended = False
        e.state = DirState.ABSENT
        e.ack_count = 0
        e.pending_requester = None
        e.sw_write = False
        e.seq_targets = None
        e.untracked = 0

    # -- guards (same names, same semantics as LimitedPointerBackend) --

    def busy(self, e, src):
        return not e.idle

    def reader_fits(self, e, src):
        return self.has_pointer(e, src) or self.can_record(e, src)

    def broadcast_mode(self, e, src):
        return self.spec.sw_broadcast

    def from_owner(self, e, src):
        return self.owner_of(e) == src

    def migratory_block(self, e, src):
        return e.migratory

    def extended_broadcast(self, e, src):
        return e.extended and self.spec.sw_broadcast

    def extended_dir(self, e, src):
        return e.extended

    def sole_sharer(self, e, src):
        targets = self.sharer_set(e)
        targets.discard(src)
        return not targets

    def seq_invalidation(self, e, src):
        return e.sw_write and e.seq_targets is not None

    def sw_counted_acks(self, e, src):
        return e.sw_write and self.spec.ack_mode is AckMode.SOFTWARE

    def acks_remaining(self, e, src):
        return e.ack_count > 1

    def final_lack(self, e, src):
        return (e.ack_count == 1 and e.sw_write
                and self.spec.ack_mode is AckMode.LAST_SOFTWARE)

    def final_ack(self, e, src):
        return e.ack_count == 1

    def from_pending_owner(self, e, src):
        return e.pending_owner == src

    def tracked_sharer(self, e, src):
        return self.has_pointer(e, src)

    def untracked_copies(self, e, src):
        return e.untracked > 0

    # -- grant helpers with the safety checks --------------------------

    def _check_no_stale_grant(self, dst: int) -> None:
        for (_, to), queue in self.w.channels.items():
            if to != dst:
                continue
            for kind, _tag in queue:
                if kind in (msg.RDATA, msg.WDATA):
                    raise ModelViolation(
                        "safety",
                        f"second grant launched at node {dst} while "
                        f"one is already in flight")

    def _grant_rdata(self, dst: int) -> None:
        for n in range(self.cfg.n_nodes):
            if n != dst and self.w.writable(n):
                raise ModelViolation(
                    "safety",
                    f"RDATA granted to node {dst} while node {n} "
                    f"holds a dirty copy")
        self._check_no_stale_grant(dst)
        self.w.send(self.home, dst, msg.RDATA)

    def _grant_wdata(self, dst: int) -> None:
        for n in range(self.cfg.n_nodes):
            if n == dst or not self.w.readable(n):
                continue
            if self.w.in_flight_to(n, msg.INV, TAG_FLUSH):
                # The software-only directory's home-copy flush may
                # overlap a grant (the documented H0 concession); a
                # write-transaction INV may not.
                continue
            raise ModelViolation(
                "safety",
                f"WDATA granted to node {dst} while node {n} still "
                f"holds a readable copy (lost invalidation)")
        self._check_no_stale_grant(dst)
        self.w.send(self.home, dst, msg.WDATA)

    def _send_busy(self, dst: int) -> None:
        self.w.send(self.home, dst, msg.BUSY)

    # -- read actions --------------------------------------------------

    def read_busy(self, e, src):
        if (e.migratory and e.state is DirState.WRITE_TRANSACTION
                and e.pending_owner is not None):
            e.mig_conflicts += 1
            if e.mig_conflicts >= MIGRATORY_THRESHOLD:
                e.migratory = False
                e.mig_evidence = 0
                e.mig_conflicts = 0
        self._send_busy(src)

    def read_absent(self, e, src):
        e.state = DirState.READ_ONLY
        self.record_node(e, src)
        self._grant_rdata(src)

    def read_record(self, e, src):
        self.record_node(e, src)
        self._grant_rdata(src)

    def read_untracked(self, e, src):
        e.extended = True
        e.untracked += 1
        self._grant_rdata(src)

    def read_overflow(self, e, src):
        e.sw_pending = True
        self.w.handlers.append(("read_overflow", src))

    def read_fetch_exclusive(self, e, src):
        self._start_fetch(e, src, self.owner_of(e), is_read=False)

    def read_fetch_shared(self, e, src):
        self._start_fetch(e, src, self.owner_of(e), is_read=True)

    # -- write actions -------------------------------------------------

    def write_absent(self, e, src):
        self.complete_write(e, src)

    def write_broadcast(self, e, src):
        e.sw_pending = True
        self.w.handlers.append(("write_broadcast", src))

    def write_extended(self, e, src):
        # Targets are computed at trap-post time, exactly as
        # ProtocolSoftware.on_write_extended captures them.
        e.sw_pending = True
        targets = self.sharer_set(e)
        if e.ext_sharers is not None:
            targets |= e.ext_sharers
        targets.discard(src)
        self.w.handlers.append(("write_extended", src, frozenset(targets)))

    def write_sole_sharer(self, e, src):
        if self.cfg.migratory_detection:
            self._observe_upgrade(e, src)
        self.complete_write(e, src)

    def write_invalidate(self, e, src):
        if self.cfg.migratory_detection:
            self._observe_upgrade(e, src)
        targets = self.sharer_set(e)
        targets.discard(src)
        self._hw_invalidate(e, src, targets)

    def write_fetch_exclusive(self, e, src):
        self._start_fetch(e, src, self.owner_of(e), is_read=False)

    # -- acknowledgement actions ---------------------------------------

    def ack_sequential(self, e, src):
        # Mirrors ProtocolSoftware.on_ack_sequential: the target pops at
        # trap-post time; the INV (or the grant) launches on completion.
        if e.seq_targets is None:
            raise ModelViolation("state-error", "sequential ack lost chain")
        writer = e.pending_requester
        if writer is None:
            raise ModelViolation(
                "state-error", "sequential ack lost its requester")
        if e.seq_targets:
            target = e.seq_targets.pop(0)
            self.w.handlers.append(("ack_seq_next", target))
        else:
            self.w.handlers.append(("ack_seq_finish", writer))

    def ack_software(self, e, src):
        # Mirrors on_ack_software: the extension-record count decrements
        # at trap-post time; only the last ack's completion acts.
        if e.ext_sharers is None or e.ext_ack <= 0:
            raise ModelViolation(
                "state-error",
                "software ack with no outstanding count")
        e.ext_ack -= 1
        if e.ext_ack == 0:
            self.w.handlers.append(("ack_sw_last",))

    def ack_countdown(self, e, src):
        e.ack_count -= 1

    def ack_last_trap(self, e, src):
        e.ack_count -= 1
        writer = e.pending_requester
        if writer is None:
            raise ModelViolation(
                "state-error", "last ack with no pending requester")
        self.w.handlers.append(("ack_last", writer))

    def ack_complete(self, e, src):
        e.ack_count -= 1
        requester = e.pending_requester
        if requester is None:
            raise ModelViolation(
                "state-error", "no pending requester at final ack")
        self.complete_write(e, requester)

    def ack_underflow(self, e, src):
        raise ModelViolation(
            "state-error", "more acknowledgements than invalidations")

    # -- fetch responses / evictions -----------------------------------

    def fetch_complete_read(self, e, src):
        self._finish_fetch(e, src)

    def fetch_complete_write(self, e, src):
        self._finish_fetch(e, src)

    def writeback_release(self, e, src):
        self.reset_to_absent(e)

    def writeback_completes_read(self, e, src):
        e.fetch_is_inv = True
        self._finish_fetch(e, src)

    def writeback_completes_write(self, e, src):
        e.fetch_is_inv = True
        self._finish_fetch(e, src)

    # -- CICO check-ins ------------------------------------------------

    def relinq_drop(self, e, src):
        self.drop_node(e, src)
        self._settle_relinquish(e)

    def relinq_checkin(self, e, src):
        e.untracked -= 1
        if e.untracked == 0 and self.spec.sw_broadcast:
            e.extended = False
        self._settle_relinquish(e)

    def relinq_stale(self, e, src):
        self._settle_relinquish(e)

    def _settle_relinquish(self, e):
        if not e.extended and not self.sharer_set(e) and e.idle:
            self.reset_to_absent(e)

    def reply_busy(self, e, src):
        self._send_busy(src)

    # -- shared helpers (mirror backends.py) ---------------------------

    def _observe_upgrade(self, e, requester):
        others = self.sharer_set(e) - {requester}
        migrationlike = not others or others == {e.last_writer}
        if migrationlike:
            if e.last_writer is not None and e.last_writer != requester:
                # Saturate at the threshold: nothing reads larger values
                # and the cap keeps the abstract state space finite.
                e.mig_evidence = min(e.mig_evidence + 1,
                                     MIGRATORY_THRESHOLD)
                e.mig_conflicts = 0
                if e.mig_evidence >= MIGRATORY_THRESHOLD:
                    e.migratory = True
        elif len(others) >= 2:
            e.mig_evidence = 0
            e.migratory = False

    def _hw_invalidate(self, e, requester, targets):
        for target in sorted(targets):
            self.w.send(self.home, target, msg.INV, TAG_WT)
        e.state = DirState.WRITE_TRANSACTION
        e.pending_requester = requester
        e.ack_count = len(targets)
        e.sw_write = False

    def _start_fetch(self, e, requester, owner, is_read):
        fetch_inv = not is_read
        if is_read and not self.spec.full_map:
            slots_needed = sum(
                1 for node in (owner, requester)
                if not (self.use_local_bit and node == self.home)
            )
            if slots_needed > self.capacity:
                fetch_inv = True
        e.state = (DirState.READ_TRANSACTION if is_read
                   else DirState.WRITE_TRANSACTION)
        e.pending_requester = requester
        e.pending_owner = owner
        e.pending_is_read = is_read
        e.fetch_is_inv = fetch_inv
        e.ack_count = 0
        e.sw_write = False
        kind = msg.FETCH_INV if fetch_inv else msg.FETCH_RD
        self.w.send(self.home, owner, kind)

    def _finish_fetch(self, e, owner):
        if e.pending_owner != owner:
            raise ModelViolation(
                "state-error",
                f"fetch response from {owner}, "
                f"expected {e.pending_owner}")
        requester = e.pending_requester
        if requester is None:
            raise ModelViolation(
                "state-error", "fetch completion lost its requester")
        if e.pending_is_read:
            e.pointers = []
            e.local_bit = False
            e.state = DirState.READ_ONLY
            e.pending_requester = None
            e.pending_owner = None
            if not e.fetch_is_inv:
                self.record_node(e, owner)
            self.record_node(e, requester)
            self._grant_rdata(requester)
        else:
            self.complete_write(e, requester)

    def complete_write(self, e, requester):
        e.last_writer = requester
        self.reset_to_exclusive(e, requester)
        e.pending_owner = None
        self._grant_wdata(requester)

    # -- software-handler completions (mirror handlers.py closures) ----

    def complete(self, tag: tuple) -> None:
        getattr(self, "_complete_" + tag[0])(*tag[1:])

    def _complete_read_overflow(self, requester):
        e = self.w.entry
        # take_all_pointers: the pointer array empties into the
        # extension record; the local bit stays in hardware.
        taken = frozenset(e.pointers)
        e.ext_sharers = ((e.ext_sharers or frozenset()) | taken)
        e.pointers = []
        self.record_node(e, requester)
        e.extended = True
        e.sw_pending = False
        self._grant_rdata(requester)

    def _complete_write_extended(self, writer, targets):
        e = self.w.entry
        e.ext_sharers = None
        e.ext_ack = 0
        e.pointers = []
        e.local_bit = False
        e.extended = False
        e.sw_pending = False
        if not targets:
            self.complete_write(e, writer)
            return
        self._arm_write(e, writer, set(targets))

    def _complete_write_broadcast(self, writer):
        e = self.w.entry
        targets = {node for node in range(self.cfg.n_nodes)
                   if node != writer}
        e.pointers = []
        e.local_bit = False
        e.extended = False
        e.sw_pending = False
        self._arm_write(e, writer, targets)

    def _arm_write(self, e, writer, targets):
        mode = self.cfg.invalidation_mode
        sequential = mode == "sequential" or (
            mode == "dynamic" and len(targets) <= SEQUENTIAL_THRESHOLD)
        e.state = DirState.WRITE_TRANSACTION
        e.pending_requester = writer
        e.sw_write = True
        if sequential and len(targets) > 1:
            ordered = sorted(targets)
            self.w.send(self.home, ordered[0], msg.INV, TAG_WT)
            e.seq_targets = ordered[1:]
            return
        for target in sorted(targets):
            self.w.send(self.home, target, msg.INV, TAG_WT)
        if self.spec.ack_mode is AckMode.SOFTWARE:
            e.ext_sharers = e.ext_sharers or frozenset()
            e.ext_ack = len(targets)
            e.ack_count = 0
        else:
            e.ack_count = len(targets)

    def _complete_ack_sw_last(self):
        e = self.w.entry
        e.ext_sharers = None
        e.ext_ack = 0
        writer = e.pending_requester
        if writer is None:
            raise ModelViolation(
                "state-error", "ack completion lost requester")
        self.complete_write(e, writer)

    def _complete_ack_seq_next(self, target):
        self.w.send(self.home, target, msg.INV, TAG_WT)

    def _complete_ack_seq_finish(self, writer):
        self.complete_write(self.w.entry, writer)

    def _complete_ack_last(self, writer):
        self.complete_write(self.w.entry, writer)

    # -- well-formedness -----------------------------------------------

    def check_entry(self) -> None:
        e = self.w.entry
        if e is None:
            return
        if len(set(e.pointers)) != len(e.pointers):
            raise ModelViolation("wellformed", "duplicate hardware pointers")
        if not self.spec.full_map and len(e.pointers) > self.capacity:
            raise ModelViolation(
                "wellformed",
                f"{len(e.pointers)} pointers exceed capacity "
                f"{self.capacity}")
        if e.local_bit and not self.use_local_bit:
            raise ModelViolation("wellformed", "local bit set but unused")
        if e.ack_count < 0 or e.ext_ack < 0 or e.untracked < 0:
            raise ModelViolation(
                "wellformed",
                f"negative counter (ack={e.ack_count}, "
                f"ext={e.ext_ack}, untracked={e.untracked})")
        if e.state.transient and e.pending_requester is None:
            raise ModelViolation(
                "wellformed", "transient entry with no pending requester")
        if e.state is DirState.READ_WRITE:
            if len(self.sharer_set(e)) != 1:
                raise ModelViolation(
                    "wellformed",
                    f"READ_WRITE entry tracks "
                    f"{len(self.sharer_set(e))} nodes")
            if e.extended or e.untracked:
                raise ModelViolation(
                    "wellformed", "READ_WRITE entry still extended")
        if e.state is DirState.ABSENT:
            if (e.pointers or e.local_bit or e.extended or e.untracked
                    or e.ext_sharers is not None):
                raise ModelViolation(
                    "wellformed",
                    "ABSENT entry still tracks sharers (pointers="
                    f"{e.pointers}, extended={e.extended}, "
                    f"ext={e.ext_sharers})")
        if e.seq_targets is not None and not (
                e.state is DirState.WRITE_TRANSACTION and e.sw_write):
            raise ModelViolation(
                "wellformed", "sequential chain outside a software write")
        if e.ext_ack > 0 and not (
                e.state is DirState.WRITE_TRANSACTION and e.sw_write):
            raise ModelViolation(
                "wellformed", "software ack count outside a software write")

    # -- quiescence sweep ----------------------------------------------

    def sweep(self) -> List[Tuple[str, str]]:
        findings = []
        w = self.w
        e = w.entry
        readable = [n for n in range(self.cfg.n_nodes) if w.readable(n)]
        writable = [n for n in range(self.cfg.n_nodes) if w.writable(n)]
        if e is None or e.state is DirState.ABSENT:
            if readable:
                findings.append((
                    "safety",
                    f"quiescent: nodes {readable} hold copies but the "
                    f"directory is empty"))
            return findings
        if e.ack_count or e.ext_ack or e.seq_targets is not None:
            findings.append((
                "safety",
                "quiescent: acknowledgement bookkeeping left armed"))
        if e.state is DirState.READ_ONLY:
            if writable:
                findings.append((
                    "safety",
                    f"quiescent: nodes {writable} hold dirty copies "
                    f"under a read-only directory"))
            if e.untracked == 0:
                tracked = self.sharer_set(e) | (e.ext_sharers or frozenset())
                lost = [n for n in readable if n not in tracked]
                if lost:
                    findings.append((
                        "safety",
                        f"quiescent: nodes {lost} hold untracked copies"))
        elif e.state is DirState.READ_WRITE:
            owner = self.owner_of(e)
            stale = [n for n in readable if n != owner]
            if stale:
                findings.append((
                    "safety",
                    f"quiescent: nodes {stale} hold copies alongside "
                    f"exclusive owner {owner} (lost invalidation)"))
            if not w.writable(owner):
                findings.append((
                    "safety",
                    f"quiescent: directory says node {owner} owns the "
                    f"block but its cache does not agree"))
        return findings


class AbstractSoftwareOnlyHome:
    """Mirror of ``SoftwareOnlyBackend``.

    Directory mutations happen atomically at delivery (as in the real
    backend); only the outgoing messages ride behind the FIFO handler
    queue (``_defer_sends``).  Handlers that send nothing are not
    queued — their completions are no-ops, so skipping them only prunes
    duplicate interleavings.
    """

    TABLE = SOFTWARE_ONLY_TABLE

    def __init__(self, world: World) -> None:
        self.w = world
        self.cfg = world.cfg
        self.spec = world.cfg.spec
        self.home = world.cfg.home

    def ensure_entry(self) -> SwEntry:
        if self.w.entry is None:
            self.w.entry = SwEntry()
        return self.w.entry

    def _defer_sends(self, sends) -> None:
        if sends:
            self.w.handlers.append(("sends", tuple(sends)))

    def _note_remote(self, e, src) -> None:
        if src != self.home:
            e.remote_bit = True

    # -- guards --------------------------------------------------------

    def local_private(self, e, src):
        return src == self.home and not e.remote_bit

    def from_owner(self, e, src):
        return e.owner == src

    def no_other_sharers(self, e, src):
        targets = set(e.sharers)
        targets.discard(src)
        return not targets

    def acks_remaining(self, e, src):
        return e.sw_ack_count > 1

    def final_ack(self, e, src):
        return e.sw_ack_count == 1

    def flush_pending(self, e, src):
        return e is not None and e.flush_acks > 0

    def private_writeback(self, e, src):
        return e.owner == src and src == self.home and not e.remote_bit

    # -- request actions -----------------------------------------------

    def local_miss_busy(self, e, src):
        self.w.send(self.home, self.home, msg.BUSY)

    def local_read_grant(self, e, src):
        e.state = DirState.READ_ONLY
        e.sharers.add(self.home)
        self._grant_rdata_now(self.home)

    def local_write_grant(self, e, src):
        e.state = DirState.READ_WRITE
        e.owner = self.home
        e.sharers = {self.home}
        self._grant_wdata_now(self.home)

    def busy_trap(self, e, src):
        self._defer_sends([(msg.BUSY, None, src)])

    def owner_busy_trap(self, e, src):
        self._note_remote(e, src)
        self._defer_sends([(msg.BUSY, None, src)])

    def read_fetch(self, e, src):
        self._note_remote(e, src)
        owner = e.owner
        if owner is None:
            raise ModelViolation("state-error", "read fetch with no owner")
        self._start_fetch(e, src, owner, is_read=True)

    def write_fetch(self, e, src):
        self._note_remote(e, src)
        owner = e.owner
        if owner is None:
            raise ModelViolation("state-error", "write fetch with no owner")
        self._start_fetch(e, src, owner, is_read=False)

    def read_grant(self, e, src):
        self._note_remote(e, src)
        sends = []
        if src != self.home and self.home in e.sharers:
            # Flush the home's own copy (Section 2.3).
            sends.append((msg.INV, TAG_FLUSH, self.home))
            e.flush_acks += 1
            e.sharers.discard(self.home)
        e.state = DirState.READ_ONLY
        e.sharers.add(src)
        sends.append((msg.RDATA, None, src))
        self._defer_sends(sends)

    def write_grant(self, e, src):
        self._note_remote(e, src)
        e.state = DirState.READ_WRITE
        e.owner = src
        e.sharers = {src}
        self._defer_sends([(msg.WDATA, None, src)])

    def write_invalidate(self, e, src):
        self._note_remote(e, src)
        targets = set(e.sharers)
        targets.discard(src)
        # A pending home-copy flush is absorbed into the transaction:
        # its INV is already in flight, and counting its ACK here keeps
        # the grant behind *every* outstanding invalidation.
        absorbed = e.flush_acks
        e.flush_acks = 0
        e.state = DirState.WRITE_TRANSACTION
        e.pending_requester = src
        e.sw_ack_count = len(targets) + absorbed
        e.sharers = set()
        self._defer_sends(
            [(msg.INV, TAG_WT, target) for target in sorted(targets)])

    def _start_fetch(self, e, requester, owner, is_read):
        e.state = (DirState.READ_TRANSACTION if is_read
                   else DirState.WRITE_TRANSACTION)
        e.pending_requester = requester
        e.owner = owner
        e.sw_ack_count = 0
        self._defer_sends([(msg.FETCH_INV, None, owner)])

    # -- response actions ----------------------------------------------

    def ack_countdown(self, e, src):
        e.sw_ack_count -= 1

    def ack_complete(self, e, src):
        e.sw_ack_count -= 1
        requester = e.pending_requester
        if requester is None:
            raise ModelViolation(
                "state-error", "no pending requester at final ack")
        e.state = DirState.READ_WRITE
        e.owner = requester
        e.sharers = {requester}
        e.pending_requester = None
        self._defer_sends([(msg.WDATA, None, requester)])

    def flush_ack(self, e, src):
        if e is None or e.flush_acks <= 0:
            raise ModelViolation(
                "state-error", "flush ack with no flush outstanding")
        e.flush_acks -= 1

    def fetch_complete_read(self, e, src):
        requester = e.pending_requester
        if requester is None:
            raise ModelViolation(
                "state-error", "fetch completion lost its requester")
        e.state = DirState.READ_ONLY
        e.owner = None
        e.sharers = {requester}
        e.pending_requester = None
        self._defer_sends([(msg.RDATA, None, requester)])

    def fetch_complete_write(self, e, src):
        requester = e.pending_requester
        if requester is None:
            raise ModelViolation(
                "state-error", "fetch completion lost its requester")
        e.state = DirState.READ_WRITE
        e.owner = requester
        e.sharers = {requester}
        e.pending_requester = None
        self._defer_sends([(msg.WDATA, None, requester)])

    def writeback_private(self, e, src):
        e.state = DirState.ABSENT
        e.owner = None
        e.sharers = set()

    def writeback_trap(self, e, src):
        e.state = DirState.ABSENT
        e.owner = None
        e.sharers = set()

    def relinq_shared(self, e, src):
        e.sharers.discard(src)
        if not e.sharers:
            e.state = DirState.ABSENT

    def relinq_ack(self, e, src):
        pass

    # -- deferred-send completion with grant checks --------------------

    def complete(self, tag: tuple) -> None:
        assert tag[0] == "sends"
        for kind, mtag, dst in tag[1]:
            if kind == msg.RDATA:
                self._grant_rdata_now(dst)
            elif kind == msg.WDATA:
                self._grant_wdata_now(dst)
            else:
                self.w.send(self.home, dst, kind, mtag)

    def _grant_rdata_now(self, dst):
        for n in range(self.cfg.n_nodes):
            if n != dst and self.w.writable(n):
                raise ModelViolation(
                    "safety",
                    f"RDATA granted to node {dst} while node {n} "
                    f"holds a dirty copy")
        self.w.send(self.home, dst, msg.RDATA)

    def _grant_wdata_now(self, dst):
        for n in range(self.cfg.n_nodes):
            if n == dst or not self.w.readable(n):
                continue
            if self.w.in_flight_to(n, msg.INV, TAG_FLUSH):
                continue  # home-copy flush overlap (Section 2.3 design)
            raise ModelViolation(
                "safety",
                f"WDATA granted to node {dst} while node {n} still "
                f"holds a readable copy (lost invalidation)")
        self.w.send(self.home, dst, msg.WDATA)

    # -- well-formedness -----------------------------------------------

    def check_entry(self) -> None:
        e = self.w.entry
        if e is None:
            return
        if e.sw_ack_count < 0 or e.flush_acks < 0:
            raise ModelViolation(
                "wellformed",
                f"negative counter (acks={e.sw_ack_count}, "
                f"flushes={e.flush_acks})")
        if e.state.transient and e.pending_requester is None:
            raise ModelViolation(
                "wellformed", "transient entry with no pending requester")
        if e.state is DirState.READ_WRITE:
            if e.owner is None or e.sharers != {e.owner}:
                raise ModelViolation(
                    "wellformed",
                    f"READ_WRITE entry with owner {e.owner} and "
                    f"sharers {sorted(e.sharers)}")
        if e.state is DirState.READ_ONLY and not e.sharers:
            raise ModelViolation(
                "wellformed", "READ_ONLY entry with no sharers")
        if e.state in (DirState.READ_ONLY, DirState.ABSENT) \
                and e.owner is not None:
            raise ModelViolation(
                "wellformed", f"stale owner {e.owner} in {e.state.value}")
        if e.state is DirState.ABSENT and e.sharers:
            raise ModelViolation(
                "wellformed",
                f"ABSENT entry with sharers {sorted(e.sharers)}")

    # -- quiescence sweep ----------------------------------------------

    def sweep(self) -> List[Tuple[str, str]]:
        findings = []
        w = self.w
        e = w.entry
        readable = [n for n in range(self.cfg.n_nodes) if w.readable(n)]
        writable = [n for n in range(self.cfg.n_nodes) if w.writable(n)]
        if e is not None and (e.flush_acks or e.sw_ack_count):
            findings.append((
                "safety",
                "quiescent: acknowledgement bookkeeping left armed"))
        if e is None or e.state is DirState.ABSENT:
            if readable:
                findings.append((
                    "safety",
                    f"quiescent: nodes {readable} hold copies but the "
                    f"directory is empty"))
            return findings
        if e.state is DirState.READ_ONLY:
            if writable:
                findings.append((
                    "safety",
                    f"quiescent: nodes {writable} hold dirty copies "
                    f"under a read-only directory"))
            lost = [n for n in readable if n not in e.sharers]
            if lost:
                findings.append((
                    "safety",
                    f"quiescent: nodes {lost} hold untracked copies"))
        elif e.state is DirState.READ_WRITE:
            stale = [n for n in readable if n != e.owner]
            if stale:
                findings.append((
                    "safety",
                    f"quiescent: nodes {stale} hold copies alongside "
                    f"exclusive owner {e.owner} (lost invalidation)"))
            if e.owner is not None and not w.writable(e.owner):
                findings.append((
                    "safety",
                    f"quiescent: directory says node {e.owner} owns "
                    f"the block but its cache does not agree"))
        return findings


def home_class_for(cfg: ModelConfig):
    """The abstract home class matching ``cfg``'s protocol spec."""
    return (AbstractSoftwareOnlyHome if cfg.spec.is_software_only
            else AbstractHardwareHome)


# ----------------------------------------------------------------------
# Table interpreter (mirrors HomeProtocolEngine's compiled dispatch)
# ----------------------------------------------------------------------


class CompiledTable:
    """Per-event/per-state dispatch, compiled exactly as the engine
    compiles it: wildcard rows merged in table order, ``when_missing``
    holding the wildcard rows for get-policy lookups that find no
    entry, first matching guard wins."""

    def __init__(self, table: ProtocolTable) -> None:
        self.table = table
        self.dispatch: Dict[str, tuple] = {}
        indexed = list(enumerate(table.transitions))
        for event, policy in table.policies.items():
            rows = [(i, row) for i, row in indexed if row.event == event]
            by_state = {}
            for state in DirState:
                by_state[state] = [
                    (i, row) for i, row in rows
                    if row.states is None or state in row.states
                ]
            when_missing = [(i, row) for i, row in rows
                            if row.states is None]
            self.dispatch[event] = (
                policy.lookup == "create",
                policy.fallback == "error",
                by_state,
                when_missing,
            )

    def deliver(self, home, world: World, kind: str, src: int) -> None:
        plan = self.dispatch.get(kind)
        if plan is None:
            raise ModelViolation("state-error", f"home received {kind}")
        create, strict, by_state, when_missing = plan
        if create:
            entry = home.ensure_entry()
        else:
            entry = world.entry
        if entry is None:
            before = None
            rows = when_missing
        else:
            before = entry.state
            rows = by_state[before]
        for index, row in rows:
            if row.guard is None or getattr(home, row.guard)(entry, src):
                getattr(home, row.action)(entry, src)
                world.fired.append(index)
                self._check_claim(row, before, world)
                return
        if strict:
            raise ModelViolation(
                "totality",
                f"no transition for {kind} from node {src} in state "
                f"{'<no entry>' if before is None else before.value}")

    @staticmethod
    def _check_claim(row, before, world: World) -> None:
        from repro.core.protocol.table import allowed_after

        claim = allowed_after(row.next_state)
        if claim is None:
            return
        after = None if world.entry is None else world.entry.state
        if claim == "same":
            if after is not before:
                raise ModelViolation(
                    "claim",
                    f"row {row.event}/{row.action} claims 'same' but "
                    f"moved {getattr(before, 'value', None)} -> "
                    f"{getattr(after, 'value', None)}")
        elif after not in claim:
            raise ModelViolation(
                "claim",
                f"row {row.event}/{row.action} claims "
                f"{row.next_state!r} but landed in "
                f"{getattr(after, 'value', None)}")


# ----------------------------------------------------------------------
# Cache-side delivery and environment steps
# ----------------------------------------------------------------------

#: Message kinds the home directory consumes (vs. the caches).
HOME_EVENTS = frozenset({
    msg.RREQ, msg.WREQ, msg.ACK, msg.FETCH_DATA, msg.EVICT_WB, msg.RELINQ,
})


def deliver_cache(world: World, kind: str, tag, src: int,
                  dst: int) -> None:
    """Mirror of ``CacheController.handle`` for the abstract caches."""
    cfg = world.cfg
    cache = world.caches[dst]
    out = world.outstanding[dst]
    if kind == msg.RDATA:
        # A stale read grant cannot satisfy a write miss; with no
        # outstanding miss the grant is stale and ignored.
        if out == O_READ:
            world.caches[dst] = C_RO
            world.outstanding[dst] = O_NONE
    elif kind == msg.WDATA:
        # A read miss accepts an exclusive grant too (migratory data).
        if out in (O_READ, O_WRITE):
            world.caches[dst] = C_RW
            world.outstanding[dst] = O_NONE
    elif kind == msg.BUSY:
        if out != O_NONE:
            req = msg.WREQ if out == O_WRITE else msg.RREQ
            world.send(dst, cfg.home, req)
    elif kind == msg.INV:
        if cache == C_RW:
            raise ModelViolation(
                "safety",
                f"node {dst} received INV for a dirty copy")
        world.caches[dst] = C_INV
        world.send(dst, cfg.home, msg.ACK, tag)
    elif kind in (msg.FETCH_RD, msg.FETCH_INV):
        if cache == C_RW:
            world.caches[dst] = (C_INV if kind == msg.FETCH_INV
                                 else C_RO)
            world.send(dst, cfg.home, msg.FETCH_DATA)
        elif cache == C_INV:
            pass  # our write-back is in flight; home treats it as the reply
        else:
            raise ModelViolation(
                "safety",
                f"node {dst}: fetch found a read-only copy")
    else:
        raise ModelViolation("state-error", f"cache received {kind}")


def initial_state(cfg: ModelConfig) -> tuple:
    """The all-idle starting state."""
    return World(cfg).freeze()


def successors(cfg: ModelConfig, frozen: tuple, program: CompiledTable,
               home_cls) -> List[tuple]:
    """All enabled steps from ``frozen``.

    Returns ``(label, step_kind, outcome)`` triples where ``step_kind``
    is ``"internal"`` (delivery / handler completion) or ``"env"``
    (cache issues a request, evicts, or checks in), and ``outcome`` is
    ``("state", next_frozen, fired_rows)`` or ``("violation",
    ModelViolation, fired_rows)``.
    """
    out = []

    def run(label, step_kind, fn):
        world = World.thaw(cfg, frozen)
        home = home_cls(world)
        try:
            fn(world, home)
            home.check_entry()
        except ModelViolation as violation:
            out.append((label, step_kind,
                        ("violation", violation, tuple(world.fired))))
            return
        out.append((label, step_kind,
                    ("state", world.freeze(), tuple(world.fired))))

    entry_f, caches, outstanding, budgets, chans, handlers = frozen

    if handlers:
        tag = handlers[0]
        def complete(world, home):
            world.handlers.pop(0)
            home.complete(tag)
        run(f"complete {tag[0]}", "internal", complete)

    for (src, dst), queue in chans:
        kind, mtag = queue[0]
        def deliver(world, home, src=src, dst=dst, kind=kind, mtag=mtag):
            world.channels[(src, dst)].pop(0)
            if kind in HOME_EVENTS:
                program.deliver(home, world, kind, src)
            else:
                deliver_cache(world, kind, mtag, src, dst)
        run(f"deliver {kind} {src}->{dst}", "internal", deliver)

    for node in range(cfg.n_nodes):
        if outstanding[node] != O_NONE:
            continue
        cache = caches[node]
        if cache == C_INV:
            def issue_read(world, home, node=node):
                world.outstanding[node] = O_READ
                world.send(node, cfg.home, msg.RREQ)
            run(f"node {node} issues read", "env", issue_read)
        if cache in (C_INV, C_RO):
            def issue_write(world, home, node=node):
                world.outstanding[node] = O_WRITE
                world.send(node, cfg.home, msg.WREQ)
            run(f"node {node} issues write", "env", issue_write)
        if cache == C_RW:
            def evict(world, home, node=node):
                world.caches[node] = C_INV
                world.send(node, cfg.home, msg.EVICT_WB)
            run(f"node {node} evicts dirty copy", "env", evict)
        if cache == C_RO:
            def checkin(world, home, node=node):
                world.caches[node] = C_INV
                world.send(node, cfg.home, msg.RELINQ)
            run(f"node {node} checks in clean copy", "env", checkin)
            if budgets[node] > 0:
                def drop(world, home, node=node):
                    world.caches[node] = C_INV
                    world.budgets[node] -= 1
                run(f"node {node} silently drops clean copy", "env", drop)

    return out


def obligations(cfg: ModelConfig, frozen: tuple) -> bool:
    """Unfinished protocol work that internal steps must resolve."""
    world = World.thaw(cfg, frozen)
    if any(o != O_NONE for o in world.outstanding):
        return True
    e = world.entry
    if e is None:
        return False
    if cfg.spec.is_software_only:
        return (e.state.transient or e.flush_acks > 0
                or e.sw_ack_count > 0)
    return (e.state.transient or e.sw_pending or e.ack_count > 0
            or e.ext_ack > 0 or e.seq_targets is not None)


def quiescent_findings(cfg: ModelConfig, frozen: tuple,
                       home_cls) -> List[Tuple[str, str]]:
    """Coherence sweep over a quiescent state (empty network/handlers,
    no outstanding misses, no obligations)."""
    world = World.thaw(cfg, frozen)
    return home_cls(world).sweep()
