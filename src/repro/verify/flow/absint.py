"""Abstract interpretation primitives shared by the flow passes.

Three layers, each consumed by at least one pass:

- :class:`AbsVal`, an abstract value carrying *may*-taint sources
  (joined by union), *must*-capabilities (joined by intersection —
  e.g. "this value is node-private"), per-element precision for
  tuples, a joined element summary for other containers, a separate
  *structure* taint (what the container's length/order depends on,
  as opposed to its elements), and an opaque ``ref`` payload that
  subclass analyses use for alias tracking.
- :func:`solve_forward`, a worklist fixpoint solver over
  :class:`~repro.verify.flow.cfg.CFG` blocks (used by the taint
  determinism analysis).
- :class:`StructuralInterpreter`, an abstract interpreter that walks a
  function body structurally — branch joins, loop fixpoints, a
  control-dependence context — with hook methods for names, attribute
  and subscript reads, stores, calls, and yields (used by the
  shard-safety inference, which layers method inlining on top).

Nothing here knows about protocols or workloads; the passes encode
their policies entirely through the hooks.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.verify.flow.cfg import CFG, Unit

__all__ = ["AbsVal", "CLEAN", "join_env", "solve_forward",
           "StructuralInterpreter"]

_EMPTY: FrozenSet[str] = frozenset()

#: joins deeper than this collapse nested element structure
_MAX_DEPTH = 4


class AbsVal:
    """One abstract value.  Immutable; compose with :meth:`join`."""

    __slots__ = ("sources", "caps", "elems", "elem", "struct", "ref")

    def __init__(self,
                 sources: FrozenSet[str] = _EMPTY,
                 caps: FrozenSet[str] = _EMPTY,
                 elems: Optional[Tuple["AbsVal", ...]] = None,
                 elem: Optional["AbsVal"] = None,
                 struct: FrozenSet[str] = _EMPTY,
                 ref: object = None) -> None:
        self.sources = sources
        self.caps = caps
        self.elems = elems
        self.elem = elem
        self.struct = struct
        self.ref = ref

    # -- lattice ------------------------------------------------------

    def total(self) -> FrozenSet[str]:
        """Every source this value may carry, elements included."""
        out = self.sources | self.struct
        if self.elems is not None:
            for e in self.elems:
                out |= e.total()
        if self.elem is not None:
            out |= self.elem.total()
        return out

    def collapse(self) -> "AbsVal":
        """Forget structure; keep the union of all sources."""
        return AbsVal(sources=self.total(), caps=self.caps)

    def join(self, other: "AbsVal", depth: int = 0) -> "AbsVal":
        if self is other:
            return self
        if depth >= _MAX_DEPTH:
            return AbsVal(sources=self.total() | other.total(),
                          caps=self.caps & other.caps)
        elems: Optional[Tuple[AbsVal, ...]] = None
        if (self.elems is not None and other.elems is not None
                and len(self.elems) == len(other.elems)):
            elems = tuple(a.join(b, depth + 1)
                          for a, b in zip(self.elems, other.elems))
            spill = _EMPTY
        else:
            # Mismatched shapes: spill element sources into the value.
            spill = _EMPTY
            for side in (self, other):
                if side.elems is not None and (
                        self.elems is None or other.elems is None
                        or len(self.elems) != len(other.elems)):
                    for e in side.elems:
                        spill |= e.total()
        # ``elem is None`` is bottom (no element summary yet), so it is
        # the join identity — substituting a clean *scalar* here would
        # wrongly spill tuple-element structure on the first join.
        elem: Optional[AbsVal] = None
        if self.elem is not None and other.elem is not None:
            elem = self.elem.join(other.elem, depth + 1)
        elif self.elem is not None or other.elem is not None:
            elem = self.elem if self.elem is not None else other.elem
        return AbsVal(
            sources=self.sources | other.sources | spill,
            caps=self.caps & other.caps,
            elems=elems,
            elem=elem,
            struct=self.struct | other.struct,
            ref=self.ref if self.ref == other.ref else None,
        )

    def with_(self, **kw: object) -> "AbsVal":
        fields = {slot: getattr(self, slot) for slot in self.__slots__}
        fields.update(kw)
        return AbsVal(**fields)  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AbsVal)
                and self.sources == other.sources
                and self.caps == other.caps
                and self.elems == other.elems
                and self.elem == other.elem
                and self.struct == other.struct
                and self.ref == other.ref)

    def __hash__(self) -> int:  # pragma: no cover - not used as key
        return hash((self.sources, self.caps, self.struct))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = []
        if self.sources:
            bits.append("sources=" + ",".join(sorted(self.sources)))
        if self.caps:
            bits.append("caps=" + ",".join(sorted(self.caps)))
        if self.struct:
            bits.append("struct=" + ",".join(sorted(self.struct)))
        if self.ref is not None:
            bits.append(f"ref={self.ref!r}")
        return f"AbsVal({' '.join(bits) or 'clean'})"


CLEAN = AbsVal()

Env = Dict[str, AbsVal]


def join_env(a: Env, b: Env) -> Env:
    """Pointwise join; a name bound on one side only keeps that value."""
    out = dict(a)
    for name, val in b.items():
        cur = out.get(name)
        out[name] = val if cur is None else cur.join(val)
    return out


# ----------------------------------------------------------------------
# Worklist solver over CFG blocks
# ----------------------------------------------------------------------

def solve_forward(
    cfg: CFG,
    init: object,
    transfer: Callable[[Unit, object], object],
    join: Callable[[object, object], object],
    equals: Callable[[object, object], bool],
    max_passes: int = 64,
) -> Tuple[Dict[int, object], Dict[int, object]]:
    """Forward fixpoint over ``cfg``.  Returns (in, out) block states.

    ``transfer`` folds one :class:`Unit` into a state; states must be
    treated as immutable by the callback (return a new one).
    """
    order = cfg.rpo()
    in_states: Dict[int, object] = {}
    out_states: Dict[int, object] = {}
    for _ in range(max_passes):
        changed = False
        for bid in order:
            block = cfg.block(bid)
            if bid == cfg.entry:
                state = init
            else:
                preds = [out_states[p] for p in block.preds
                         if p in out_states]
                if not preds:
                    continue
                state = preds[0]
                for other in preds[1:]:
                    state = join(state, other)
            in_states[bid] = state
            for unit in block.units:
                state = transfer(unit, state)
            old = out_states.get(bid)
            if old is None or not equals(old, state):
                out_states[bid] = state
                changed = True
        if not changed:
            return in_states, out_states
    return in_states, out_states  # widened by the pass cap


# ----------------------------------------------------------------------
# Structural abstract interpreter
# ----------------------------------------------------------------------

#: receiver methods that mutate a container in place
_MUTATORS = {"append", "extend", "add", "insert", "update", "setdefault",
             "clear", "pop", "popitem", "remove", "discard", "sort",
             "reverse", "__setitem__"}

#: mutators that also fold an argument into the container's elements
_GROWERS = {"append", "add", "insert", "extend", "update", "setdefault"}

#: maximum loop-body refinement passes before giving up on a fixpoint
_LOOP_PASSES = 6


class StructuralInterpreter:
    """Abstract interpreter over one function body.

    Subclasses override the ``eval_name`` / ``read_attribute`` /
    ``read_subscript`` / ``store`` / ``eval_call`` / ``on_yield`` /
    ``on_jump`` hooks; the base class owns environments, joins, loop
    fixpoints and the control-dependence context.
    """

    def __init__(self) -> None:
        self.env: Env = {}
        self.control: List[FrozenSet[str]] = []
        #: taint governing the *shape* of this function's output stream
        #: (early exits under tainted control in a generator)
        self.struct_taint: FrozenSet[str] = _EMPTY
        self.returns: List[AbsVal] = []

    # -- hooks (subclass API) -----------------------------------------

    def eval_name(self, node: ast.Name) -> AbsVal:
        """An unbound name: module global / builtin.  Default clean."""
        return CLEAN

    def read_attribute(self, node: ast.Attribute, base: AbsVal) -> AbsVal:
        """Attribute read.  Default: the base's scalar taint."""
        return AbsVal(sources=base.sources | base.struct)

    def read_subscript(self, node: ast.Subscript, base: AbsVal,
                       index: AbsVal) -> AbsVal:
        """Subscript read.  Default: one element of the base."""
        out = self.iter_element(base)
        extra = index.total()
        return out if not extra else out.with_(sources=out.sources | extra)

    def store(self, target: ast.expr, value: AbsVal) -> None:
        """Store through an attribute or subscript.  Default no-op."""

    def on_method_call(self, node: ast.Call, base: AbsVal,
                       args: List[AbsVal]) -> Optional[AbsVal]:
        """A ``<expr>.method(...)`` call on a non-local receiver.
        Return an AbsVal to handle it, or None for the default."""
        return None

    def eval_call(self, node: ast.Call, args: List[AbsVal]) -> AbsVal:
        """A non-method call.  Default: join of the argument taints."""
        sources = _EMPTY
        for a in args:
            sources |= a.total()
        return AbsVal(sources=sources)

    def on_yield(self, node: ast.AST, value: AbsVal) -> None:
        """A ``yield`` in the interpreted body."""

    # -- control-dependence context -----------------------------------

    def control_taint(self) -> FrozenSet[str]:
        out = _EMPTY
        for sources in self.control:
            out |= sources
        return out

    # -- driver -------------------------------------------------------

    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    # -- statements ---------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                cur = self.env.get(stmt.target.id, CLEAN)
                self.env[stmt.target.id] = AbsVal(
                    sources=cur.total() | value.total(), caps=cur.caps)
            else:
                # Re-reading the target is implicit; only the store
                # side is interesting to the hooks.
                self.eval(stmt.target)
                self.store(stmt.target, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            value = CLEAN if stmt.value is None else self.eval(stmt.value)
            self.returns.append(value)
            self.on_jump(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Raise)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.eval(stmt.exc)
            self.on_jump(stmt)
        elif isinstance(stmt, ast.If):
            cond = self.eval(stmt.test)
            self.control.append(cond.total())
            try:
                before = dict(self.env)
                self.run(stmt.body)
                after_then = self.env
                self.env = before
                if stmt.orelse:
                    self.env = dict(before)
                    self.run(stmt.orelse)
                self.env = join_env(after_then, self.env)
            finally:
                self.control.pop()
        elif isinstance(stmt, ast.While):
            self._loop(cond_expr=stmt.test, target=None, iter_expr=None,
                       body=stmt.body, orelse=stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._loop(cond_expr=None, target=stmt.target,
                       iter_expr=stmt.iter, body=stmt.body,
                       orelse=stmt.orelse)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.run(stmt.body)
            self.run(stmt.orelse)
            merged = self.env
            for handler in stmt.handlers:
                self.env = dict(before)
                self.run(handler.body)
                merged = join_env(merged, self.env)
            self.env = merged
            self.run(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value)
            self.run(stmt.body)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            self.env[stmt.name] = CLEAN
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Pass / Import / Global / Nonlocal: no dataflow effect.

    def on_jump(self, stmt: ast.stmt) -> None:
        """Early exit (break/continue/return/raise).  If it happens
        under tainted control inside a generator, the *shape* of the
        op stream depends on that taint."""
        taint = self.control_taint()
        if taint:
            self.struct_taint |= taint

    def _loop(self, cond_expr: Optional[ast.expr],
              target: Optional[ast.expr], iter_expr: Optional[ast.expr],
              body: List[ast.stmt], orelse: List[ast.stmt]) -> None:
        for _ in range(_LOOP_PASSES):
            before = dict(self.env)
            if cond_expr is not None:
                control = self.eval(cond_expr).total()
            else:
                iterable = self.eval(iter_expr)  # type: ignore[arg-type]
                control = iterable.struct | iterable.sources
                if target is not None:
                    self.assign(target, self.iter_element(iterable))
            self.control.append(control)
            try:
                self.run(body)
            finally:
                self.control.pop()
            self.env = join_env(before, self.env)
            if self.env == before:
                break
        self.run(orelse)

    # -- assignment ---------------------------------------------------

    def assign(self, target: ast.expr, value: AbsVal) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if (value.elems is not None
                    and len(value.elems) == len(elts)
                    and not any(isinstance(e, ast.Starred) for e in elts)):
                for sub, sub_val in zip(elts, value.elems):
                    self.assign(sub, sub_val)
            else:
                each = self.iter_element(value)
                for sub in elts:
                    if isinstance(sub, ast.Starred):
                        self.assign(sub.value,
                                    AbsVal(sources=each.total(),
                                           elem=each))
                    else:
                        self.assign(sub, each)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value)
        else:
            self.store(target, value)

    # -- expressions --------------------------------------------------

    def iter_element(self, val: AbsVal) -> AbsVal:
        """One element of ``val`` when iterated or indexed."""
        if val.elems is not None:
            out: Optional[AbsVal] = None
            for e in val.elems:
                out = e if out is None else out.join(e)
            return out if out is not None else CLEAN
        if val.elem is not None:
            return val.elem
        return AbsVal(sources=val.sources, caps=val.caps)

    def eval(self, node: ast.expr) -> AbsVal:
        method = getattr(self, "_eval_" + type(node).__name__,
                         self._eval_generic)
        return method(node)

    def _eval_generic(self, node: ast.expr) -> AbsVal:
        sources = _EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                sources |= self.eval(child).total()
        return AbsVal(sources=sources)

    def _eval_Constant(self, node: ast.Constant) -> AbsVal:
        return CLEAN

    def _eval_Name(self, node: ast.Name) -> AbsVal:
        val = self.env.get(node.id)
        return val if val is not None else self.eval_name(node)

    def _eval_Tuple(self, node: ast.Tuple) -> AbsVal:
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return self._eval_generic(node)
        return AbsVal(elems=tuple(self.eval(e) for e in node.elts))

    def _eval_List(self, node: ast.List) -> AbsVal:
        elem: Optional[AbsVal] = None
        for e in node.elts:
            v = self.eval(e)
            elem = v if elem is None else elem.join(v)
        return AbsVal(elem=elem)

    _eval_Set = _eval_List

    def _eval_Dict(self, node: ast.Dict) -> AbsVal:
        elem: Optional[AbsVal] = None
        for key in node.keys:
            if key is not None:
                v = self.eval(key)
                elem = v if elem is None else elem.join(v)
        for value in node.values:
            v = self.eval(value)
            elem = v if elem is None else elem.join(v)
        return AbsVal(elem=elem)

    def _scalar(self, *vals: AbsVal) -> AbsVal:
        sources = _EMPTY
        for v in vals:
            sources |= v.total()
        return AbsVal(sources=sources)

    def _eval_BinOp(self, node: ast.BinOp) -> AbsVal:
        return self._scalar(self.eval(node.left), self.eval(node.right))

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> AbsVal:
        return self._scalar(self.eval(node.operand))

    def _eval_BoolOp(self, node: ast.BoolOp) -> AbsVal:
        return self._scalar(*[self.eval(v) for v in node.values])

    def _eval_Compare(self, node: ast.Compare) -> AbsVal:
        return self._scalar(self.eval(node.left),
                            *[self.eval(c) for c in node.comparators])

    def _eval_IfExp(self, node: ast.IfExp) -> AbsVal:
        cond = self.eval(node.test)
        out = self.eval(node.body).join(self.eval(node.orelse))
        if cond.total():
            out = out.with_(sources=out.sources | cond.total())
        return out

    def _eval_Attribute(self, node: ast.Attribute) -> AbsVal:
        return self.read_attribute(node, self.eval(node.value))

    def _eval_Subscript(self, node: ast.Subscript) -> AbsVal:
        base = self.eval(node.value)
        if isinstance(node.slice, ast.Slice):
            # A slice of a container is a container of the same shape.
            for part in (node.slice.lower, node.slice.upper,
                         node.slice.step):
                if part is not None:
                    self.eval(part)
            return base.with_(elems=None,
                              elem=self.iter_element(base))
        return self.read_subscript(node, base, self.eval(node.slice))

    def _eval_Call(self, node: ast.Call) -> AbsVal:
        args = [self.eval(a) for a in node.args
                if not isinstance(a, ast.Starred)]
        args += [self.eval(a.value) for a in node.args
                 if isinstance(a, ast.Starred)]
        args += [self.eval(kw.value) for kw in node.keywords]
        func = node.func
        if isinstance(func, ast.Attribute):
            # Local-container mutation is generic enough to live here:
            # ``xs.append(v)`` folds v into xs' element summary.
            if (isinstance(func.value, ast.Name)
                    and func.value.id in self.env
                    and func.attr in _MUTATORS):
                name = func.value.id
                cur = self.env[name]
                elem = cur.elem
                if func.attr in _GROWERS:
                    for a in args:
                        grown = (self.iter_element(a)
                                 if func.attr in ("extend", "update")
                                 else a)
                        elem = grown if elem is None else elem.join(grown)
                self.env[name] = cur.with_(
                    elems=None, elem=elem,
                    struct=cur.struct | self.control_taint())
                if func.attr in ("pop", "popitem"):
                    return elem if elem is not None else CLEAN
                return CLEAN
            base = self.eval(func.value)
            handled = self.on_method_call(node, base, args)
            if handled is not None:
                return handled
            return self._scalar(base, *args)
        return self.eval_call(node, args)

    def _eval_Yield(self, node: ast.Yield) -> AbsVal:
        value = CLEAN if node.value is None else self.eval(node.value)
        self.on_yield(node, value)
        return CLEAN

    def _eval_YieldFrom(self, node: ast.YieldFrom) -> AbsVal:
        iterable = self.eval(node.value)
        self.struct_taint |= iterable.struct
        self.on_yield(node, self.iter_element(iterable))
        return CLEAN

    def _eval_Await(self, node: ast.Await) -> AbsVal:
        return self.eval(node.value)

    def _eval_Lambda(self, node: ast.Lambda) -> AbsVal:
        return CLEAN

    def _eval_Starred(self, node: ast.Starred) -> AbsVal:
        return self.eval(node.value)

    def _eval_ListComp(self, node: ast.ListComp) -> AbsVal:
        return self._comprehension(node, [node.elt])

    _eval_SetComp = _eval_ListComp
    _eval_GeneratorExp = _eval_ListComp

    def _eval_DictComp(self, node: ast.DictComp) -> AbsVal:
        return self._comprehension(node, [node.key, node.value])

    def _comprehension(self, node: ast.expr,
                       elts: List[ast.expr]) -> AbsVal:
        saved = dict(self.env)
        struct = _EMPTY
        pushed = 0
        try:
            for gen in node.generators:  # type: ignore[attr-defined]
                iterable = self.eval(gen.iter)
                struct |= iterable.struct | iterable.sources
                self.assign(gen.target, self.iter_element(iterable))
                for cond in gen.ifs:
                    struct |= self.eval(cond).total()
                self.control.append(struct)
                pushed += 1
            elem: Optional[AbsVal] = None
            for e in elts:
                v = self.eval(e)
                elem = v if elem is None else elem.join(v)
        finally:
            for _ in range(pushed):
                self.control.pop()
        self.env = saved
        return AbsVal(elem=elem, struct=struct)
