"""Dataflow analyses over Python ASTs (the ``repro check --flow`` layer).

The runtime A/B gates (17-config compiled-vs-interpreted equivalence,
sharded-vs-serial byte-identity) prove the configurations we happened to
run.  This package makes the same claims *statically and totally*:

- :mod:`repro.verify.flow.cfg` — control-flow graphs over function ASTs,
- :mod:`repro.verify.flow.absint` — an abstract-value lattice, a
  worklist solver, and a structural abstract interpreter,
- :mod:`repro.verify.flow.transval` — translation validation: every
  generated dispatch module is proven row-for-row equivalent to its
  source protocol table,
- :mod:`repro.verify.flow.shardsafe` — purity/escape inference that
  checks each workload's declared ``shard_safe`` flag,
- :mod:`repro.verify.flow.taint` — the dataflow upgrade of the
  per-statement determinism linter.

All passes emit :class:`repro.verify.report.Finding`s and aggregate
into one :class:`repro.verify.report.Report` via :func:`run_flow`.
"""

from __future__ import annotations

from repro.verify.report import Report

__all__ = ["run_flow"]


def run_flow() -> Report:
    """Run translation validation, shard-safety inference, and the
    taint determinism analysis; aggregate into one report."""
    from repro.verify.flow.shardsafe import run_shardsafe
    from repro.verify.flow.taint import run_taint
    from repro.verify.flow.transval import run_transval

    report = Report()
    report.extend(run_transval())
    report.extend(run_shardsafe())
    report.extend(run_taint())
    return report
