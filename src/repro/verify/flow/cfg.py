"""Control-flow graphs over Python function ASTs.

A :class:`CFG` decomposes one ``ast.FunctionDef`` body into basic
blocks of :class:`Unit`\\s.  A unit is either a simple statement
(``role == "stmt"``), the condition of an ``if``/``while``
(``role == "branch"``), or the iteration of a ``for`` loop
(``role == "loop"``, carrying the target and the iterable).  Branch
and loop units end their block; the block's successor order is
(taken, not-taken) for branches and (body, after-loop) for loops.

The graph is deliberately coarse where the analyses do not need
precision: ``try`` bodies are modeled as "handler may run after any
prefix" by giving the body's entry *and* exit an edge into each
handler, and ``with`` is inlined.  Clients: the taint determinism
analysis (worklist dataflow over blocks) and translation validation
(the all-paths-terminate check on generated dispatch handlers).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

__all__ = ["Unit", "Block", "CFG", "build_cfg"]


class Unit:
    """One atomic step: a simple statement, branch test, or loop step."""

    __slots__ = ("role", "node")

    def __init__(self, role: str, node: ast.AST) -> None:
        self.role = role  # "stmt" | "branch" | "loop"
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Unit({self.role}, line {getattr(self.node, 'lineno', '?')})"


class Block:
    """A straight-line run of units with explicit successor edges."""

    __slots__ = ("bid", "units", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.units: List[Unit] = []
        self.succs: List[int] = []
        self.preds: List[int] = []


class CFG:
    """Blocks of one function; ``entry`` and ``exit`` are block ids."""

    def __init__(self, fn: ast.AST) -> None:
        self.fn = fn
        self.blocks: Dict[int, Block] = {}
        self.entry = 0
        self.exit = 1

    def block(self, bid: int) -> Block:
        return self.blocks[bid]

    def rpo(self) -> List[int]:
        """Block ids in reverse postorder from the entry (unreachable
        blocks excluded) — the canonical forward-dataflow order."""
        seen = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            seen.add(bid)
            for succ in self.blocks[bid].succs:
                if succ not in seen:
                    visit(succ)
            order.append(bid)

        visit(self.entry)
        order.reverse()
        return order


class _Builder:
    def __init__(self, fn: ast.AST) -> None:
        self.cfg = CFG(fn)
        self._next = 0
        self._new()  # entry
        self._new()  # exit

    def _new(self) -> Block:
        block = Block(self._next)
        self.cfg.blocks[self._next] = block
        self._next += 1
        return block

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].succs.append(dst)
        self.cfg.blocks[dst].preds.append(src)

    def build(self) -> CFG:
        end = self._body(self.cfg.fn.body, self.cfg.entry, loops=[])
        if end is not None:
            self._edge(end, self.cfg.exit)
        return self.cfg

    def _body(self, body: List[ast.stmt], cur: Optional[int],
              loops: List[Tuple[int, int]]) -> Optional[int]:
        """Thread ``body`` starting at block ``cur``.  Returns the block
        the fall-through path ends in, or None if every path jumped."""
        for stmt in body:
            if cur is None:
                # Dead code after a jump: still build its subgraph so
                # units exist, but leave it unreachable.
                cur = self._new().bid
            cur = self._stmt(stmt, cur, loops)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int,
              loops: List[Tuple[int, int]]) -> Optional[int]:
        blocks = self.cfg.blocks
        if isinstance(stmt, ast.If):
            blocks[cur].units.append(Unit("branch", stmt.test))
            then_entry = self._new().bid
            self._edge(cur, then_entry)
            then_end = self._body(stmt.body, then_entry, loops)
            if stmt.orelse:
                else_entry = self._new().bid
                self._edge(cur, else_entry)
                else_end = self._body(stmt.orelse, else_entry, loops)
            else:
                else_end = cur
            if then_end is None and else_end is None:
                return None
            join = self._new().bid
            if then_end is not None:
                self._edge(then_end, join)
            if else_end is not None:
                self._edge(else_end, join)
            return join
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new().bid
            self._edge(cur, header)
            if isinstance(stmt, ast.While):
                blocks[header].units.append(Unit("branch", stmt.test))
            else:
                blocks[header].units.append(Unit("loop", stmt))
            body_entry = self._new().bid
            after = self._new().bid
            self._edge(header, body_entry)
            self._edge(header, after)
            loops.append((header, after))
            body_end = self._body(stmt.body, body_entry, loops)
            loops.pop()
            if body_end is not None:
                self._edge(body_end, header)
            if stmt.orelse:
                # ``else`` runs on normal loop exit; fold into ``after``.
                after = self._body(stmt.orelse, after, loops)
                if after is None:
                    return None
            return after
        if isinstance(stmt, ast.Break):
            blocks[cur].units.append(Unit("stmt", stmt))
            if loops:
                self._edge(cur, loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            blocks[cur].units.append(Unit("stmt", stmt))
            if loops:
                self._edge(cur, loops[-1][0])
            return None
        if isinstance(stmt, (ast.Return, ast.Raise)):
            blocks[cur].units.append(Unit("stmt", stmt))
            self._edge(cur, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Try):
            body_entry = self._new().bid
            self._edge(cur, body_entry)
            body_end = self._body(stmt.body, body_entry, loops)
            if body_end is not None and stmt.orelse:
                body_end = self._body(stmt.orelse, body_end, loops)
            ends = [] if body_end is None else [body_end]
            for handler in stmt.handlers:
                h_entry = self._new().bid
                # The handler may run after any prefix of the body:
                # approximate with edges from the body's entry and end.
                self._edge(body_entry, h_entry)
                if body_end is not None:
                    self._edge(body_end, h_entry)
                h_end = self._body(handler.body, h_entry, loops)
                if h_end is not None:
                    ends.append(h_end)
            if stmt.finalbody:
                f_entry = self._new().bid
                for end in ends:
                    self._edge(end, f_entry)
                if not ends:
                    self._edge(body_entry, f_entry)
                return self._body(stmt.finalbody, f_entry, loops)
            if not ends:
                return None
            join = self._new().bid
            for end in ends:
                self._edge(end, join)
            return join
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            blocks[cur].units.append(Unit("stmt", stmt))
            return self._body(stmt.body, cur, loops)
        # Simple statement (including nested function/class defs, which
        # the analyses treat as opaque values).
        blocks[cur].units.append(Unit("stmt", stmt))
        return cur


def build_cfg(fn: ast.AST) -> CFG:
    """Build the CFG of one ``ast.FunctionDef``/``AsyncFunctionDef``."""
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg needs a function node, got {fn!r}")
    return _Builder(fn).build()
