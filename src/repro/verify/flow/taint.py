"""Taint determinism analysis: the dataflow upgrade of the linter.

The per-statement linter (:mod:`repro.verify.lint`) pattern-matches
hazard *sites*: a ``for`` over a set expression, an unsorted
``os.listdir`` call.  This pass tracks the hazard *values* through one
module with a forward dataflow analysis over
:mod:`repro.verify.flow.cfg` graphs (solved by
:func:`repro.verify.flow.absint.solve_forward`):

- **Unordered values** (set literals/comprehensions/constructors,
  set-algebra results, and the *returns of module functions and
  methods that produce them* — the laundering case the linter cannot
  see) are flagged when iterated (``RND10``).
- **Directory listings** (``os.listdir``/``os.scandir``) are flagged
  only when a listing *reaches* an iteration still unsorted
  (``RND11``) — an intermediate ``names.sort()`` or ``sorted(...)``
  provably sanitizes the value, killing the linter's false positive
  on that shape.
- **Wall clock / RNG** (``RND12``) and **exec/eval** (``RND13``) are
  intrinsically nondeterministic at the call site; they are flagged
  where they fire, at the same lines as the linter's RND02/RND06, so
  every existing suppression stays load-bearing under this pass alone.

Suppression comments (``# repro: allow-nondet(reason)``) work exactly
as in the linter: on the sink line for iteration findings, on the call
line for source findings.  :func:`stale_suppressions` closes the loop
across both passes: a suppression that neither the linter nor this
analysis uses is dead and must be removed.

Scoping decisions (deliberate, shared with the linter so this pass
reports zero *new* findings on a lint-clean tree): taints propagate
through locals, branches, loops, aliases and intra-module call
returns, but not through module-level constants read inside functions,
container element structure, or ``list``/``tuple`` conversions of
sets — a converted set has a fixed (if arbitrary) order per build, and
"fixing" such sites with ``sorted`` would change simulated op streams
and break the byte-identical baselines.  A flow that genuinely needs a
taint-only suppression should be restructured instead; the linter's
own stale-suppression rule would flag the comment.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.verify.flow.absint import solve_forward
from repro.verify.flow.cfg import CFG, Unit, build_cfg
from repro.verify.report import Finding, Report

__all__ = ["taint_source", "run_taint", "stale_suppressions"]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow-nondet\(([^)]*)\)")

_EMPTY: FrozenSet[str] = frozenset()
_SET: FrozenSet[str] = frozenset(["set"])
_LISTING: FrozenSet[str] = frozenset(["listing"])

#: set algebra operators that keep a set a set
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: receiver methods that return another unordered set
_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference", "copy"}

_CLOCK_ATTRS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "today"), ("date", "today"),
}

_LISTING_ATTRS = {("os", "listdir"), ("os", "scandir")}

Env = Dict[str, FrozenSet[str]]


def _join_env(a: Env, b: Env) -> Env:
    out = dict(a)
    for name, tags in b.items():
        out[name] = out.get(name, _EMPTY) | tags
    return out


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _shallow_functions(body: List[ast.stmt]
                       ) -> List[Tuple[str, ast.FunctionDef]]:
    """(name, def) for module functions and class methods, one level —
    summaries are keyed by bare name, which is how intra-module call
    sites (``helper(...)`` / ``self.helper(...)``) spell them."""
    out: List[Tuple[str, ast.FunctionDef]] = []
    for stmt in body:
        if isinstance(stmt, ast.FunctionDef):
            out.append((stmt.name, stmt))
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, ast.FunctionDef):
                    out.append((item.name, item))
    return out


class _FileTaint:
    """Per-file analysis outcome."""

    __slots__ = ("findings", "used_suppressions")

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.used_suppressions: Set[int] = set()


class _Analyzer:
    def __init__(self, tree: ast.Module, lines: List[str],
                 path: str) -> None:
        self.tree = tree
        self.lines = lines
        self.path = path
        self.out = _FileTaint()
        self.functions = _shallow_functions(tree.body)
        #: bare function/method name -> taint tags of its return value
        self.summaries: Dict[str, FrozenSet[str]] = {
            name: _EMPTY for name, _ in self.functions}

    # -- suppressions --------------------------------------------------

    def _suppressed(self, lineno: int) -> bool:
        if 1 <= lineno <= len(self.lines):
            m = _SUPPRESS_RE.search(self.lines[lineno - 1])
            if m:
                self.out.used_suppressions.add(lineno)
                return True
        return False

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self._suppressed(lineno):
            return
        self.out.findings.append(Finding(
            "taint", code, f"{self.path}:{lineno}", message))

    # -- expression taint ----------------------------------------------

    def taint_of(self, node: ast.expr, env: Env) -> FrozenSet[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            if self._suppressed(node.lineno):
                return _EMPTY
            return _SET
        if isinstance(node, ast.Name):
            return env.get(node.id, _EMPTY)
        if isinstance(node, ast.Call):
            return self._call_taint(node, env)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            left = self.taint_of(node.left, env)
            right = self.taint_of(node.right, env)
            return (left | right) & _SET
        if isinstance(node, (ast.BoolOp,)):
            out = _EMPTY
            for value in node.values:
                out |= self.taint_of(value, env)
            return out
        if isinstance(node, ast.IfExp):
            return (self.taint_of(node.body, env)
                    | self.taint_of(node.orelse, env))
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value, env)
        if isinstance(node, ast.Await):
            return self.taint_of(node.value, env)
        return _EMPTY

    def _call_taint(self, node: ast.Call, env: Env) -> FrozenSet[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                if self._suppressed(node.lineno):
                    return _EMPTY
                return _SET
            if func.id in ("sorted", "list", "tuple"):
                return _EMPTY
            if func.id in self.summaries and func.id not in env:
                return self.summaries[func.id]
            return _EMPTY
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted:
                tail = tuple(dotted.split(".")[-2:])
                if tail in _LISTING_ATTRS:
                    if self._suppressed(node.lineno):
                        return _EMPTY
                    return _LISTING
            if func.attr in _SET_METHODS:
                base = self.taint_of(func.value, env)
                if "set" in base:
                    return _SET
                return _EMPTY
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in self.summaries):
                return self.summaries[func.attr]
        return _EMPTY

    # -- transfer function ---------------------------------------------

    def _assign_names(self, target: ast.expr, tags: FrozenSet[str],
                      env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking a container: elements are scalars here.
            for elt in target.elts:
                self._assign_names(elt, _EMPTY, env)
        elif isinstance(target, ast.Starred):
            self._assign_names(target.value, _EMPTY, env)

    def transfer(self, unit: Unit, env: Env) -> Env:
        env = dict(env)
        node = unit.node
        if unit.role == "loop":
            # for <target> in <iter>: elements of sets/listings are
            # plain values; the *iteration* is the sink, checked in
            # the reporting pass.
            self._assign_names(node.target, _EMPTY, env)
            return env
        if unit.role == "branch":
            return env
        if isinstance(node, ast.Assign):
            tags = self.taint_of(node.value, env)
            for target in node.targets:
                self._assign_names(target, tags, env)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign_names(node.target,
                                   self.taint_of(node.value, env), env)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                if isinstance(node.op, _SET_OPS):
                    env[node.target.id] = (
                        env.get(node.target.id, _EMPTY)
                        | (self.taint_of(node.value, env) & _SET))
                else:
                    env[node.target.id] = _EMPTY
        elif isinstance(node, ast.Expr):
            value = node.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "sort"
                    and isinstance(value.func.value, ast.Name)):
                # names.sort() sanitizes the listing in place.
                env[value.func.value.id] = _EMPTY
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    self._assign_names(item.optional_vars, _EMPTY, env)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            # Leave the name unbound so call sites still consult the
            # return-taint summary (an env entry would shadow it).
            env.pop(node.name, None)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return env

    # -- sinks and sources ---------------------------------------------

    def _unit_exprs(self, unit: Unit) -> List[ast.expr]:
        node = unit.node
        if unit.role == "branch":
            return [node]  # the test expression itself
        if unit.role == "loop":
            return [node.iter]
        out: List[ast.expr] = []
        for field in ("value", "exc", "test", "msg"):
            sub = getattr(node, field, None)
            if isinstance(sub, ast.expr):
                out.append(sub)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            out.extend(item.context_expr for item in node.items)
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Subscript):
                        out.append(sub.slice)
        return out

    def _flag_iteration(self, node: ast.AST, tags: FrozenSet[str],
                        what: str) -> None:
        if "set" in tags:
            self._flag(node, "RND10",
                       f"{what} iterates an unordered set-derived "
                       f"value — order it (sorted) before iterating")
        elif "listing" in tags:
            self._flag(node, "RND11",
                       f"{what} iterates a directory listing that was "
                       f"never sorted — call .sort() or wrap the "
                       f"listing in sorted()")

    def check_unit(self, unit: Unit, env: Env) -> None:
        if unit.role == "loop":
            tags = self.taint_of(unit.node.iter, env)
            self._flag_iteration(unit.node, tags, "for loop")
        for expr in self._unit_exprs(unit):
            self._check_expr(expr, env)

    def _check_expr(self, expr: ast.expr, env: Env) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_call_site(node)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    tags = self.taint_of(gen.iter, env)
                    self._flag_iteration(node, tags, "comprehension")
            elif isinstance(node, ast.YieldFrom):
                tags = self.taint_of(node.value, env)
                self._flag_iteration(node, tags, "yield from")

    def _check_call_site(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted(func)
        if dotted:
            tail = tuple(dotted.split(".")[-2:])
            if tail in _CLOCK_ATTRS:
                self._flag(node, "RND12",
                           f"wall clock ({dotted}) — a nondeterministic "
                           f"source; derive times from simulated cycles "
                           f"or suppress with a reason")
            if dotted.split(".", 1)[0] == "random":
                self._flag(node, "RND12",
                           f"RNG ({dotted}) — thread an explicit seeded "
                           f"generator instead")
        if isinstance(func, ast.Name) and func.id in ("exec", "eval"):
            self._flag(node, "RND13",
                       f"{func.id}() runs code this dataflow analysis "
                       f"cannot see — register the generated text and "
                       f"suppress with a reason")

    # -- per-function driver -------------------------------------------

    def _run_function(self, fn: ast.FunctionDef,
                      report: bool) -> FrozenSet[str]:
        cfg = build_cfg(fn)
        in_states, _ = solve_forward(
            cfg, {},
            lambda unit, env: self.transfer(unit, env),
            _join_env, lambda a, b: a == b)
        returned: FrozenSet[str] = _EMPTY
        for bid in cfg.rpo():
            env = in_states.get(bid)
            if env is None:
                continue
            env = dict(env)
            for unit in cfg.block(bid).units:
                if report:
                    self.check_unit(unit, env)
                node = unit.node
                if (unit.role == "stmt" and isinstance(node, ast.Return)
                        and node.value is not None):
                    returned |= self.taint_of(node.value, env)
                env = self.transfer(unit, env)
        return returned

    def analyze(self) -> _FileTaint:
        # Phase 1: return-taint summaries to a fixpoint, so laundering
        # through call chains (a() returns b()'s set) converges.
        for _ in range(3):
            changed = False
            for name, fn in self.functions:
                tags = self._run_function(fn, report=False)
                if tags != self.summaries[name]:
                    self.summaries[name] = tags
                    changed = True
            if not changed:
                break
        # Phase 2: report sinks in every function and at module level.
        for _, fn in self.functions:
            self._run_function(fn, report=True)
        module_fn = ast.parse("def _module_(): pass").body[0]
        module_fn.body = list(self.tree.body)
        self._run_function(module_fn, report=True)
        self.out.findings.sort(
            key=lambda f: (f.location, f.code, f.message))
        return self.out


def taint_source(source: str, path: str = "<string>") -> _FileTaint:
    """Analyze one module's source.  Returns findings plus the set of
    suppression lines this analysis relied on (for the stale sweep)."""
    tree = ast.parse(source)
    return _Analyzer(tree, source.splitlines(), path).analyze()


# ----------------------------------------------------------------------
# Tree drivers
# ----------------------------------------------------------------------

def _iter_tree(root: str, rel_to: Optional[str]):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            label = os.path.relpath(path, rel_to) if rel_to else path
            with open(path, "r", encoding="utf-8") as fh:
                yield label, fh.read()


def _default_root() -> Tuple[str, str]:
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    return root, os.path.dirname(os.path.dirname(root))


def run_taint(root: Optional[str] = None) -> Report:
    """Taint-analyze the package tree plus the generated dispatch
    modules; report flow findings."""
    from repro.core.protocol import compile as compmod

    if root is None:
        root, rel_to = _default_root()
    else:
        rel_to = None
    report = Report()
    report.passes.append("taint")
    files = 0
    for label, text in _iter_tree(root, rel_to):
        files += 1
        report.findings.extend(taint_source(text, label).findings)
    compmod.ensure_builtin_tables_compiled()
    generated = compmod.generated_sources()
    for filename in sorted(generated):
        report.findings.extend(
            taint_source(generated[filename], filename).findings)
    report.stats["taint.files"] = files
    report.stats["taint.generated"] = len(generated)
    report.stats["taint.findings"] = len(report.findings)
    return report


def stale_suppressions(root: Optional[str] = None) -> List[str]:
    """Suppression comments used by *neither* the linter nor the taint
    analysis — dead weight that could mask a future regression.

    Returns ``path:lineno`` strings; CI asserts the list is empty.
    """
    from repro.verify.lint import lint_source

    if root is None:
        root, rel_to = _default_root()
    else:
        rel_to = None
    stale: List[str] = []
    for label, text in _iter_tree(root, rel_to):
        lint_findings = lint_source(text, label)
        unused_by_lint = set()
        for finding in lint_findings:
            if (finding.code == "RND00"
                    and "matches no finding" in finding.message):
                unused_by_lint.add(int(finding.location.rsplit(":", 1)[1]))
        if not unused_by_lint:
            continue
        used_by_taint = taint_source(text, label).used_suppressions
        for lineno in sorted(unused_by_lint - used_by_taint):
            stale.append(f"{label}:{lineno}")
    return stale
