"""Shard-safety inference for workloads (purity/escape analysis).

The ``shard_safe`` contract (:class:`repro.workloads.base.Workload`):
a thread's *yielded ops* must depend only on the machine parameters
and its own ``node_id``; Python-side aggregates may couple threads
freely because they never reach ``RunStats``.  Until now the flag was
declared by hand and audited by eye.  This pass checks it.

The analysis abstractly interprets ``thread()`` (inlining ``self``
method calls, module functions, and generator helpers) and answers:
which instance attributes does thread-reachable code *mutate*, and do
any of those mutations flow into a yielded op — as the op's value, as
the condition guarding the yield, or as an early exit that changes the
stream's shape?

Precision features, each load-bearing for one of the eight stock
workloads:

- **Mutation scope.**  A store at a node-private index
  (``self._partials[node_id] = x``, or through an object taken from a
  node-partitioned container like ``owned = self._owned[node_id]``)
  only couples a thread to itself.  Reads back through a node-private
  path stay clean (MP3D's particles, WATER's molecules); whole-
  container or globally-indexed reads of the same attribute are
  tainted (AQ's reduction over ``self._partials``).
- **Field sensitivity.**  Mutations are tracked as (attribute, field)
  pairs, so SMGRID's ``level.u`` / ``level.new_rows`` updates do not
  taint reads of ``level.seg_addr`` / ``level.tile_points`` on the
  same objects.
- **Tuple-element precision.**  WATER appends ``(mine, fx, fy)`` with
  tainted forces; unpacking must keep ``mine`` clean so the publish
  ops stay provably node-local.
- **Control and shape dependence.**  EVOLVE's visit-counter cadence
  (``if self.steps % 2 == 0: yield ...``) is unsafe precisely because
  the *presence* of ops depends on globally-mutated state; likewise a
  ``break``/``return`` under tainted control in a generator.
- **Interprocedural.**  Generator helpers (SMGRID's ``_sweep``), plain
  helpers (WATER's ``_force_on``), recursion (AQ's ``_refine``, via a
  fixpoint summary), and method calls on non-workload objects
  (``level.active_nodes()``, summarized by the fields they read).

The verdict is cross-checked against the declared flag: *declared safe
but inferred unsafe* is a finding (code ``SHD01``); a conservative
declared-unsafe flag on a provably safe workload is reported in stats
only, never as a finding.
"""

from __future__ import annotations

import ast
import inspect
import os
import sys
from typing import Dict, FrozenSet, List, Optional, Tuple, Type

from repro.verify.flow.absint import AbsVal, CLEAN, StructuralInterpreter
from repro.verify.report import Finding, Report

__all__ = ["Inference", "infer", "run_shardsafe", "DEFAULT_WORKLOADS"]

#: capability: this value is derived from node_id / a node partition
CAP_NODE = "node-scoped"

#: capability: iterating/indexing this container yields node-private data
CAP_PRIVATE = "node-private-elems"

_EMPTY: FrozenSet[str] = frozenset()

#: maximum method-inline depth before giving up (conservative join)
_MAX_INLINE = 24

#: container methods that read one element (like a subscript)
_ELEMENT_READERS = {"get", "pop", "popitem", "setdefault"}

#: container methods that view the whole container (global-scope read)
_WHOLE_READERS = {"items", "values", "keys", "copy", "index", "count"}

_MUTATOR_METHODS = {"append", "extend", "add", "insert", "update",
                    "setdefault", "clear", "pop", "popitem", "remove",
                    "discard", "sort", "reverse"}


class _Ref:
    """Where an abstract value lives relative to ``self``."""

    __slots__ = ("root", "field", "scope")

    def __init__(self, root: str, field: Optional[str],
                 scope: str) -> None:
        self.root = root      # instance attribute name
        self.field = field    # one level of field sensitivity
        self.scope = scope    # "whole" | "node" | "global"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _Ref) and self.root == other.root
                and self.field == other.field
                and self.scope == other.scope)

    def __hash__(self) -> int:
        return hash((self.root, self.field, self.scope))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        field = f".{self.field}" if self.field else ""
        return f"self.{self.root}{field}@{self.scope}"


SELF_REF = _Ref("", None, "self")

#: (attribute, field-or-None) -> ("node" | "global", first line seen).
#: field ``"[]"`` means element stores / container-level mutators.
Mutations = Dict[Tuple[str, Optional[str]], Tuple[str, int]]


def _join_scope(a: str, b: str) -> str:
    return "node" if a == b == "node" else "global"


class _ClassModel:
    """Parsed module + class: everything the interpreter resolves."""

    def __init__(self, cls: Type) -> None:
        self.cls = cls
        module = sys.modules[cls.__module__]
        self.filename = inspect.getsourcefile(module) or "<unknown>"
        tree = ast.parse(inspect.getsource(module))
        self.class_node: Optional[ast.ClassDef] = None
        self.methods: Dict[str, ast.FunctionDef] = {}
        self.module_functions: Dict[str, ast.FunctionDef] = {}
        #: method name -> self-attribute names read, for classes other
        #: than the workload (e.g. SMGRID's Level.active_nodes)
        self.helper_reads: Dict[str, FrozenSet[str]] = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.module_functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                if node.name == cls.__name__:
                    self.class_node = node
                    for item in node.body:
                        if isinstance(item, ast.FunctionDef):
                            self.methods[item.name] = item
                else:
                    self._summarize_helper(node)
        if self.class_node is None:
            raise ValueError(
                f"class {cls.__name__} not found in module source")
        if "thread" not in self.methods:
            raise ValueError(f"{cls.__name__} defines no thread() method")

    def _summarize_helper(self, node: ast.ClassDef) -> None:
        direct: Dict[str, FrozenSet[str]] = {}
        calls: Dict[str, FrozenSet[str]] = {}
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            reads = set()
            called = set()
            for sub in ast.walk(item):
                if (isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and isinstance(sub.ctx, ast.Load)):
                    reads.add(sub.attr)
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == "self"):
                    called.add(sub.func.attr)
            direct[item.name] = frozenset(reads)
            calls[item.name] = frozenset(called)
        # One transitive closure pass per method (depth-2 is plenty for
        # the helper classes in this repo; deeper chains just widen).
        for name, reads in direct.items():
            closure = set(reads)
            for callee in calls.get(name, ()):
                closure |= direct.get(callee, _EMPTY)
            merged = self.helper_reads.get(name, _EMPTY) | closure
            self.helper_reads[name] = frozenset(merged)


class _Hazard:
    __slots__ = ("lineno", "kind", "sources")

    def __init__(self, lineno: int, kind: str,
                 sources: FrozenSet[str]) -> None:
        self.lineno = lineno
        self.kind = kind  # "value" | "control" | "shape"
        self.sources = sources


class _WorkloadInterp(StructuralInterpreter):
    """One frame of the shard-safety interpretation."""

    def __init__(self, model: _ClassModel, mutations: Mutations,
                 summaries: Dict[str, AbsVal], stack: Tuple[str, ...],
                 record_yields: bool) -> None:
        super().__init__()
        self.model = model
        self.mutations = mutations
        self.summaries = summaries
        self.stack = stack
        self.record_yields = record_yields
        self.hazards: List[_Hazard] = []
        #: (value, control) pairs for generator summaries
        self.yielded: List[Tuple[AbsVal, FrozenSet[str]]] = []

    # -- mutation bookkeeping -----------------------------------------

    def _record(self, root: str, field: Optional[str], scope: str,
                lineno: int) -> None:
        key = (root, field)
        cur = self.mutations.get(key)
        if cur is None:
            self.mutations[key] = (scope, lineno)
        elif scope == "global" and cur[0] == "node":
            self.mutations[key] = ("global", cur[1])

    def _label(self, root: str, field: Optional[str]) -> str:
        if field and field != "[]":
            return f"self.{root}.{field}"
        return f"self.{root}"

    def _mutation_taint(self, root: str, field: Optional[str],
                        read_scope: str) -> FrozenSet[str]:
        """Taint of reading (root, field) through a ``read_scope`` path."""
        entry = self.mutations.get((root, field))
        if entry is None:
            return _EMPTY
        scope, _line = entry
        if scope == "node" and read_scope == "node":
            return _EMPTY
        return frozenset([self._label(root, field)])

    def _index_scope(self, index: AbsVal) -> str:
        return "node" if CAP_NODE in index.caps else "global"

    def _globally_mutated_container(self, root: str) -> bool:
        for (r, field), (scope, _line) in self.mutations.items():
            if r == root and scope == "global" and field in (None, "[]"):
                return True
        return False

    # -- reads --------------------------------------------------------

    def eval_name(self, node: ast.Name) -> AbsVal:
        # Module globals and builtins: setup-determined constants.
        return CLEAN

    def read_attribute(self, node: ast.Attribute, base: AbsVal) -> AbsVal:
        if base.ref is SELF_REF:
            root = node.attr
            if root in self.model.methods:
                return CLEAN  # bound method value; calls are inlined
            sources = self._mutation_taint(root, None, "global")
            return AbsVal(sources=sources,
                          ref=_Ref(root, None, "whole"))
        ref = base.ref
        if isinstance(ref, _Ref):
            # Field read on an object rooted at self.<ref.root>.
            read_scope = "node" if ref.scope == "node" else "global"
            sources = (base.sources
                       | self._mutation_taint(ref.root, node.attr,
                                              read_scope))
            return AbsVal(sources=sources,
                          caps=base.caps & frozenset([CAP_NODE]),
                          ref=_Ref(ref.root, node.attr, ref.scope))
        return AbsVal(sources=base.sources | base.struct)

    def _element_read(self, base: AbsVal, index: AbsVal) -> AbsVal:
        ref = base.ref
        extraction = self._index_scope(index)
        if CAP_PRIVATE in base.caps:
            extraction = "node"
        if isinstance(ref, _Ref) and ref is not SELF_REF:
            if ref.field is None:
                read_scope = ("node" if (extraction == "node"
                                         or ref.scope == "node")
                              else "global")
                sources = (base.sources | index.sources
                           | self._mutation_taint(ref.root, None, "global")
                           | self._mutation_taint(ref.root, "[]",
                                                  read_scope))
                caps = _EMPTY
                if (read_scope == "node"
                        and not self._globally_mutated_container(ref.root)):
                    caps = frozenset([CAP_NODE, CAP_PRIVATE])
                return AbsVal(sources=sources, caps=caps,
                              ref=_Ref(ref.root, None, read_scope))
            # Element of a field container (level.u[i]): the taint was
            # applied at the field read; keep the ref for deeper stores.
            return AbsVal(sources=base.sources | index.sources,
                          ref=ref)
        out = self.iter_element(base)
        extra = index.total()
        if extra:
            out = out.with_(sources=out.sources | extra)
        return out

    def read_subscript(self, node: ast.Subscript, base: AbsVal,
                       index: AbsVal) -> AbsVal:
        return self._element_read(base, index)

    def iter_element(self, val: AbsVal) -> AbsVal:
        ref = val.ref
        if isinstance(ref, _Ref) and ref is not SELF_REF:
            return self._element_read(val, CLEAN)
        out = super().iter_element(val)
        if CAP_PRIVATE in val.caps:
            out = out.with_(caps=out.caps
                            | frozenset([CAP_NODE, CAP_PRIVATE]))
        return out

    # -- stores -------------------------------------------------------

    def store(self, target: ast.expr, value: AbsVal) -> None:
        lineno = getattr(target, "lineno", 0)
        if isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            ref = base.ref
            if ref is SELF_REF:
                self._record(target.attr, None, "global", lineno)
            elif isinstance(ref, _Ref):
                scope = "node" if ref.scope == "node" else "global"
                self._record(ref.root, target.attr, scope, lineno)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            index = self.eval(target.slice)
            ref = base.ref
            if ref is SELF_REF:
                return
            if isinstance(ref, _Ref):
                if ref.field is None and ref.scope == "whole":
                    # self.X[i] = v
                    self._record(ref.root, "[]",
                                 self._index_scope(index), lineno)
                elif ref.field is None:
                    # element-of-element store: node-private only if the
                    # object itself was reached through a node path
                    scope = "node" if ref.scope == "node" else "global"
                    self._record(ref.root, "[]", scope, lineno)
                else:
                    scope = "node" if ref.scope == "node" else "global"
                    self._record(ref.root, ref.field, scope, lineno)

    # -- calls --------------------------------------------------------

    def on_method_call(self, node: ast.Call, base: AbsVal,
                       args: List[AbsVal]) -> Optional[AbsVal]:
        attr = node.func.attr  # type: ignore[attr-defined]
        ref = base.ref
        if ref is SELF_REF:
            if attr in self.model.methods:
                return self._inline(self.model.methods[attr], node, args,
                                    is_method=True)
            return None  # inherited/unknown self-method: join args
        if isinstance(ref, _Ref):
            lineno = getattr(node, "lineno", 0)
            if attr in _MUTATOR_METHODS:
                if ref.field is None:
                    scope = "node" if ref.scope == "node" else "global"
                    self._record(ref.root, "[]", scope, lineno)
                else:
                    scope = "node" if ref.scope == "node" else "global"
                    self._record(ref.root, ref.field, scope, lineno)
                if attr in ("pop", "popitem", "setdefault"):
                    return self._element_read(
                        base, args[0] if args else CLEAN)
                return CLEAN
            if attr in _ELEMENT_READERS:
                out = self._element_read(base,
                                         args[0] if args else CLEAN)
                for default in args[1:]:
                    out = out.join(default)
                return out
            if attr in _WHOLE_READERS:
                return AbsVal(elem=self._element_read(base, CLEAN),
                              struct=base.sources)
            if attr in self.model.helper_reads:
                # Method on a helper object (Level.active_nodes):
                # tainted iff it reads a mutated field of that object.
                read_scope = "node" if ref.scope == "node" else "global"
                sources = base.sources
                for field in self.model.helper_reads[attr]:
                    sources |= self._mutation_taint(ref.root, field,
                                                    read_scope)
                for a in args:
                    sources |= a.total()
                return AbsVal(sources=sources)
        return None

    def eval_call(self, node: ast.Call, args: List[AbsVal]) -> AbsVal:
        func = node.func
        if isinstance(func, ast.Name):
            handler = getattr(self, "_builtin_" + func.id, None)
            if handler is not None:
                return handler(node, args)
            target = self.model.module_functions.get(func.id)
            if target is not None and func.id not in self.env:
                return self._inline(target, node, args, is_method=False)
        return super().eval_call(node, args)

    # Builtins with container-shape consequences.  Everything else
    # falls through to the scalar-join default.

    def _builtin_enumerate(self, node: ast.Call,
                           args: List[AbsVal]) -> AbsVal:
        seq = args[0] if args else CLEAN
        elem = self.iter_element(seq)
        return AbsVal(elem=AbsVal(elems=(CLEAN, elem)),
                      struct=seq.struct | seq.sources)

    def _builtin_zip(self, node: ast.Call, args: List[AbsVal]) -> AbsVal:
        elems = tuple(self.iter_element(a) for a in args)
        struct = _EMPTY
        for a in args:
            struct |= a.struct | a.sources
        return AbsVal(elem=AbsVal(elems=elems), struct=struct)

    def _builtin_range(self, node: ast.Call,
                       args: List[AbsVal]) -> AbsVal:
        struct = _EMPTY
        for a in args:
            struct |= a.total()
        return AbsVal(struct=struct)

    def _builtin_reversed(self, node: ast.Call,
                          args: List[AbsVal]) -> AbsVal:
        return args[0] if args else CLEAN

    def _builtin_sorted(self, node: ast.Call,
                        args: List[AbsVal]) -> AbsVal:
        # Sorting is an ordering sanitizer for the *taint* pass; for
        # shard safety the data dependencies are unchanged.
        seq = args[0] if args else CLEAN
        return AbsVal(elem=self.iter_element(seq),
                      struct=seq.struct | seq.sources,
                      caps=seq.caps)

    _builtin_tuple = _builtin_sorted
    _builtin_list = _builtin_sorted
    _builtin_set = _builtin_sorted
    _builtin_frozenset = _builtin_sorted

    def _builtin_divmod(self, node: ast.Call,
                        args: List[AbsVal]) -> AbsVal:
        scalar = self._scalar(*args)
        return AbsVal(elems=(scalar, scalar))

    # -- inlining -----------------------------------------------------

    def _qualname(self, fn: ast.FunctionDef, is_method: bool) -> str:
        return (f"{self.model.cls.__name__}.{fn.name}" if is_method
                else fn.name)

    def _inline(self, fn: ast.FunctionDef, node: ast.Call,
                args: List[AbsVal], is_method: bool) -> AbsVal:
        qual = self._qualname(fn, is_method)
        if qual in self.stack or len(self.stack) >= _MAX_INLINE:
            # Recursion (AQ's _refine) or runaway depth: use the
            # summary from the previous fixpoint iteration.
            return self.summaries.get(qual, AbsVal())
        sub = _WorkloadInterp(self.model, self.mutations, self.summaries,
                              self.stack + (qual,), record_yields=False)
        sub.env = self._bind(fn, args, is_method)
        sub.run(fn.body)
        is_generator = any(isinstance(n, (ast.Yield, ast.YieldFrom))
                           for n in ast.walk(fn)
                           if not isinstance(n, (ast.FunctionDef,
                                                 ast.AsyncFunctionDef,
                                                 ast.Lambda)))
        if is_generator:
            elem = CLEAN
            struct = sub.struct_taint
            for value, control in sub.yielded:
                elem = elem.join(value)
                struct |= control
            result = AbsVal(elem=elem, struct=struct)
        else:
            result = AbsVal()
            for value in sub.returns:
                result = result.join(value)
            if sub.struct_taint:
                result = result.with_(
                    sources=result.sources | sub.struct_taint)
        self.summaries[qual] = self.summaries.get(qual,
                                                  AbsVal()).join(result)
        return result

    def _bind(self, fn: ast.FunctionDef, args: List[AbsVal],
              is_method: bool) -> Dict[str, AbsVal]:
        params = [a.arg for a in fn.args.args]
        env: Dict[str, AbsVal] = {}
        values = list(args)
        if is_method and params and params[0] == "self":
            env["self"] = AbsVal(ref=SELF_REF)
            params = params[1:]
        for name, value in zip(params, values):
            env[name] = value
        for name in params[len(values):]:
            env[name] = CLEAN
        if fn.args.vararg is not None:
            env[fn.args.vararg.arg] = CLEAN
        for kwonly in fn.args.kwonlyargs:
            env.setdefault(kwonly.arg, CLEAN)
        return env

    # -- sinks --------------------------------------------------------

    def on_yield(self, node: ast.AST, value: AbsVal) -> None:
        control = self.control_taint()
        self.yielded.append((value, control))
        if not self.record_yields:
            return
        lineno = getattr(node, "lineno", 0)
        val_taint = value.total()
        if val_taint:
            self.hazards.append(_Hazard(lineno, "value", val_taint))
        if control:
            self.hazards.append(_Hazard(lineno, "control", control))


class Inference:
    """Outcome of analysing one workload class."""

    __slots__ = ("cls", "name", "declared_safe", "inferred_safe",
                 "hazards", "location", "error")

    def __init__(self, cls: Type, name: str, declared_safe: bool,
                 inferred_safe: bool, hazards: Tuple[str, ...],
                 location: str, error: Optional[str] = None) -> None:
        self.cls = cls
        self.name = name
        self.declared_safe = declared_safe
        self.inferred_safe = inferred_safe
        self.hazards = hazards
        self.location = location
        self.error = error


def _relpath(filename: str) -> str:
    try:
        rel = os.path.relpath(filename)
    except ValueError:  # pragma: no cover - cross-drive on Windows
        return filename
    return filename if rel.startswith("..") else rel


def infer(cls: Type) -> Inference:
    """Infer shard safety of ``cls`` from its source."""
    name = getattr(cls, "name", cls.__name__)
    declared = bool(getattr(cls, "shard_safe", True))
    try:
        model = _ClassModel(cls)
    except (OSError, TypeError, ValueError, SyntaxError) as exc:
        return Inference(cls, name, declared, declared, (),
                         location=cls.__name__, error=str(exc))
    thread = model.methods["thread"]
    location = f"{_relpath(model.filename)}:{thread.lineno}"

    mutations: Mutations = {}
    summaries: Dict[str, AbsVal] = {}
    interp = None
    for _ in range(6):
        before_mut = dict(mutations)
        before_sum = dict(summaries)
        interp = _WorkloadInterp(model, mutations, summaries, stack=(),
                                 record_yields=True)
        interp.env = interp._bind(
            thread, [CLEAN, AbsVal(caps=frozenset([CAP_NODE]))],
            is_method=True)
        interp.run(thread.body)
        if mutations == before_mut and summaries == before_sum:
            break
    assert interp is not None

    hazards: List[str] = []
    seen = set()
    for hz in interp.hazards:
        key = (hz.lineno, hz.kind, hz.sources)
        if key in seen:
            continue
        seen.add(key)
        what = ("op value depends on" if hz.kind == "value"
                else "op is yielded under a condition that depends on")
        hazards.append(f"line {hz.lineno}: {what} "
                       f"{', '.join(sorted(hz.sources))} "
                       f"(mutated by thread-reachable code)")
    if interp.struct_taint:
        hazards.append(
            "op stream shape (early loop exit) depends on "
            + ", ".join(sorted(interp.struct_taint)))
    return Inference(cls, name, declared, not hazards, tuple(hazards),
                     location)


def _default_workloads() -> List[Type]:
    """The eight stock workload classes, in name order — the default
    audit set for :func:`run_shardsafe` (imported lazily so the
    analysis layer does not load the workloads at import time)."""
    from repro.workloads.aq import AdaptiveQuadrature
    from repro.workloads.evolve import Evolve
    from repro.workloads.mp3d import MP3D
    from repro.workloads.smgrid import StaticMultigrid
    from repro.workloads.synthetic import SyntheticSharing
    from repro.workloads.tsp import TSP
    from repro.workloads.water import Water
    from repro.workloads.worker import WorkerBenchmark

    return [AdaptiveQuadrature, Evolve, MP3D, StaticMultigrid,
            SyntheticSharing, TSP, Water, WorkerBenchmark]


DEFAULT_WORKLOADS = _default_workloads


def run_shardsafe(classes: Optional[List[Type]] = None) -> Report:
    """Check declared ``shard_safe`` flags against inference."""
    if classes is None:
        classes = _default_workloads()
    report = Report()
    report.passes.append("shardsafe")
    unsafe: List[str] = []
    conservative: List[str] = []
    for cls in classes:
        outcome = infer(cls)
        if outcome.error is not None:
            report.findings.append(Finding(
                analysis="shardsafe",
                code="SHD90",
                location=outcome.location,
                message=(f"workload {outcome.name!r} could not be "
                         f"analysed: {outcome.error}"),
            ))
            continue
        if not outcome.inferred_safe:
            unsafe.append(outcome.name)
        if outcome.declared_safe and not outcome.inferred_safe:
            report.findings.append(Finding(
                analysis="shardsafe",
                code="SHD01",
                location=outcome.location,
                message=(f"workload {outcome.name!r} declares "
                         f"shard_safe=True but its op stream reads "
                         f"shared mutable state"),
                trace=outcome.hazards,
            ))
        elif not outcome.declared_safe and outcome.inferred_safe:
            conservative.append(outcome.name)
    report.stats["shardsafe.workloads"] = len(classes)
    report.stats["shardsafe.inferred_unsafe"] = sorted(unsafe)
    report.stats["shardsafe.conservative_declarations"] = sorted(
        conservative)
    return report
