"""Translation validation for compiled protocol dispatch.

The 17-config runtime fixture proves compiled dispatch equals the
interpreter *for the traffic those configs generate*.  This pass makes
the claim total: it parses each generated module
(:func:`repro.core.protocol.compile.generate_source`), recovers its
(event, directory-state) → guard-cascade → bound-action structure with
a fail-closed structural recognizer, and proves it row-for-row
equivalent to the source :class:`ProtocolTable`:

- the event dispatch covers exactly ``table.events()``, in policy
  declaration order, with the entry lookup of each event's policy;
- every (event, state) guard cascade lists exactly the table's live
  rows for that state, in table order, truncated at the first
  unguarded row (later rows are dead *for that state* and must be
  elided), and terminated per the policy's fallback;
- rows annotated ``unreachable`` are elided everywhere;
- every backend bind is name-faithful (``m_x = backend.x``) and the
  bound set is exactly the guards/actions of the live rows;
- the probe variant differs from the fast variant *only* in probe
  constructs (observer gate, ``_busy``/``txn`` locals, ``emit`` calls
  whose :class:`TransitionApplied` payload claims match the row), and
  the fast variant contains no probe construct at all;
- on the :mod:`repro.verify.flow.cfg` graph of each handler, every
  path returns or falls through the terminal ``unknown_event`` call.

The expectations are derived here, independently, from the table and
:class:`EventPolicy` semantics — the validator shares no emission
helper with the compiler, so a bug (or a seeded mutation) in either
side surfaces as a mismatch.  :func:`compile.generation_manifest`'s
claims are cross-checked against the same derivation.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import DirState
from repro.core.protocol.table import ProtocolTable, Transition
from repro.verify.flow.cfg import build_cfg
from repro.verify.report import Finding, Report

__all__ = ["validate_source", "run_transval"]

_STATES = tuple(DirState)


# ----------------------------------------------------------------------
# Expected structure, derived from the table alone
# ----------------------------------------------------------------------

def _live_rows(table: ProtocolTable, event: str) -> List[Transition]:
    return [r for r in table.rows_for(event) if not r.unreachable]


def _truncate(chain: Sequence[Transition]
              ) -> Tuple[List[Transition], bool]:
    """Rows up to and including the first unguarded row; True if the
    cascade is closed by one (every later row is dead)."""
    out: List[Transition] = []
    for row in chain:
        out.append(row)
        if row.guard is None:
            return out, True
    return out, False


def _specific_states(rows: Sequence[Transition]) -> List[DirState]:
    return [s for s in _STATES
            if any(r.states is not None and s in r.states for r in rows)]


def _expected_methods(table: ProtocolTable) -> List[str]:
    names = {row.guard for event in table.events()
             for row in _live_rows(table, event) if row.guard is not None}
    names |= {row.action for event in table.events()
              for row in _live_rows(table, event)}
    return sorted(names)


class _ChainExpect:
    """What one guard cascade must look like."""

    __slots__ = ("rows", "closed", "strict", "before", "busy", "after")

    def __init__(self, rows: List[Transition], closed: bool, strict: bool,
                 before: str, busy: str, after: str) -> None:
        self.rows = rows
        self.closed = closed
        self.strict = strict
        self.before = before
        self.busy = busy
        self.after = after


def _expected_chain(rows: Sequence[Transition], strict: bool,
                    before: str, busy: str, after: str) -> _ChainExpect:
    live, closed = _truncate(rows)
    return _ChainExpect(live, closed, strict, before, busy, after)


_WILDCARD_BUSY = 'state.transient or getattr(entry, "sw_pending", False)'
_PENDING_BUSY = 'getattr(entry, "sw_pending", False)'


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------

def _dump(node: ast.AST) -> str:
    return ast.dump(node)


def _expr_dump(text: str) -> str:
    return ast.dump(ast.parse(text, mode="eval").body)


def _stmt_dump(text: str) -> str:
    return "; ".join(ast.dump(s) for s in ast.parse(text).body)


def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _assign_to(stmt: ast.stmt, name: str) -> Optional[ast.expr]:
    if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and _is_name(stmt.targets[0], name)):
        return stmt.value
    return None


def _call_of(node: ast.AST, name: str) -> Optional[ast.Call]:
    if (isinstance(node, ast.Call) and _is_name(node.func, name)
            and not node.keywords):
        return node
    return None


def _entry_src_block(call: ast.Call) -> bool:
    return (len(call.args) == 3 and _is_name(call.args[0], "entry")
            and _is_name(call.args[1], "src")
            and _is_name(call.args[2], "block"))


def _line(node: ast.AST) -> str:
    return f"line {getattr(node, 'lineno', '?')}"


# ----------------------------------------------------------------------
# Recognizer: actual structure out of the generated AST
# ----------------------------------------------------------------------

class _Issues(List[str]):
    def add(self, message: str) -> None:
        self.append(message)


class _FiredRow:
    __slots__ = ("guard", "action", "emit")

    def __init__(self, guard: Optional[str], action: str,
                 emit: Optional[ast.Call]) -> None:
        self.guard = guard
        self.action = action
        self.emit = emit


class _FoundChain:
    __slots__ = ("rows", "terminator", "busy", "no_rule_event")

    def __init__(self) -> None:
        self.rows: List[_FiredRow] = []
        #: "closed" | "no_rule" | "return" | "broken"
        self.terminator = "broken"
        self.busy: Optional[str] = None
        self.no_rule_event: Optional[str] = None


def _extract_fire(stmts: Sequence[ast.stmt], probe: bool, where: str,
                  issues: _Issues) -> Tuple[Optional[Tuple[str,
                                            Optional[ast.Call]]], int]:
    """Recognize ``m_action(...); [emit(...);] return`` at ``stmts[0]``.
    Returns ((action, emit-call), consumed) or (None, 0)."""
    if not stmts or not isinstance(stmts[0], ast.Expr):
        return None, 0
    call = stmts[0].value
    if (not isinstance(call, ast.Call) or not isinstance(call.func, ast.Name)
            or not call.func.id.startswith("m_")):
        return None, 0
    if not _entry_src_block(call) or call.keywords:
        issues.add(f"{where}: action call {_line(call)} does not take "
                   f"(entry, src, block)")
        return None, 0
    action = call.func.id[2:]
    consumed = 1
    emit: Optional[ast.Call] = None
    if probe:
        if (len(stmts) > 1 and isinstance(stmts[1], ast.Expr)
                and _call_of(stmts[1].value, "emit") is not None):
            emit = _call_of(stmts[1].value, "emit")
            consumed += 1
        else:
            issues.add(f"{where}: action {action!r} fires without an "
                       f"emit in the probe variant")
    if (len(stmts) <= consumed
            or not isinstance(stmts[consumed], ast.Return)
            or stmts[consumed].value is not None):
        issues.add(f"{where}: action {action!r} does not return "
                   f"immediately after firing")
        return None, 0
    return (action, emit), consumed + 1


def _extract_chain(stmts: Sequence[ast.stmt], probe: bool, where: str,
                   issues: _Issues) -> _FoundChain:
    found = _FoundChain()
    i = 0
    if probe and stmts:
        busy = _assign_to(stmts[0], "_busy")
        if busy is not None:
            found.busy = _dump(busy)
            i = 1
    while i < len(stmts):
        stmt = stmts[i]
        # Guarded row: if m_guard(entry, src, block): fire
        if isinstance(stmt, ast.If):
            test = stmt.test
            if (isinstance(test, ast.Call)
                    and isinstance(test.func, ast.Name)
                    and test.func.id.startswith("m_")
                    and _entry_src_block(test)):
                if stmt.orelse:
                    issues.add(f"{where}: guard {test.func.id} has an "
                               f"else branch")
                    return found
                fired, consumed = _extract_fire(stmt.body, probe,
                                                where, issues)
                if fired is None or consumed != len(stmt.body):
                    issues.add(f"{where}: unrecognized guard body under "
                               f"{test.func.id} ({_line(stmt)})")
                    return found
                found.rows.append(_FiredRow(test.func.id[2:],
                                            fired[0], fired[1]))
                i += 1
                continue
            issues.add(f"{where}: unrecognized if-statement "
                       f"({_line(stmt)})")
            return found
        # Unguarded row closes the cascade.
        fired, consumed = _extract_fire(stmts[i:], probe, where, issues)
        if fired is not None:
            found.rows.append(_FiredRow(None, fired[0], fired[1]))
            found.terminator = "closed"
            if i + consumed != len(stmts):
                issues.add(f"{where}: dead statements after the "
                           f"unguarded row ({_line(stmts[i + consumed])})")
            return found
        # no_rule fallback.
        if isinstance(stmt, ast.Expr):
            call = _call_of(stmt.value, "no_rule")
            if call is not None:
                if (len(call.args) == 4
                        and isinstance(call.args[0], ast.Constant)
                        and _is_name(call.args[1], "entry")
                        and _is_name(call.args[2], "src")
                        and _is_name(call.args[3], "block")):
                    found.no_rule_event = call.args[0].value
                else:
                    issues.add(f"{where}: malformed no_rule call "
                               f"({_line(stmt)})")
                if (i + 1 < len(stmts)
                        and isinstance(stmts[i + 1], ast.Return)
                        and stmts[i + 1].value is None
                        and i + 2 == len(stmts)):
                    found.terminator = "no_rule"
                else:
                    issues.add(f"{where}: no_rule is not followed by a "
                               f"bare return")
                return found
        if (isinstance(stmt, ast.Return) and stmt.value is None
                and i + 1 == len(stmts)):
            found.terminator = "return"
            return found
        issues.add(f"{where}: unrecognized statement in guard cascade "
                   f"({_line(stmt)})")
        return found
    issues.add(f"{where}: guard cascade falls through without a return")
    return found


# ----------------------------------------------------------------------
# Chain comparison
# ----------------------------------------------------------------------

def _render_rows(rows: Sequence[Tuple[Optional[str], str]]) -> str:
    return "[" + ", ".join(
        (f"{guard}->{action}" if guard else f"*->{action}")
        for guard, action in rows) + "]"


_EMIT_KEYWORDS = ("node", "at", "event", "src", "block", "before",
                  "after", "rule", "next_label", "busy", "txn")


def _check_emit(emit: ast.Call, event: str, row: Transition,
                expect: _ChainExpect, where: str, issues: _Issues) -> None:
    if len(emit.args) != 1:
        issues.add(f"{where}: emit takes {len(emit.args)} arguments")
        return
    payload = emit.args[0]
    if (not isinstance(payload, ast.Call)
            or not _is_name(payload.func, "TransitionApplied")
            or payload.args):
        issues.add(f"{where}: emit payload is not a keyword-only "
                   f"TransitionApplied(...) call")
        return
    kwargs: Dict[str, ast.expr] = {}
    names = []
    for kw in payload.keywords:
        if kw.arg is None:
            issues.add(f"{where}: emit payload uses **kwargs")
            return
        kwargs[kw.arg] = kw.value
        names.append(kw.arg)
    if tuple(names) != _EMIT_KEYWORDS:
        issues.add(f"{where}: emit payload fields {names} != "
                   f"{list(_EMIT_KEYWORDS)}")
        return
    checks = (
        ("node", _expr_dump("node_id")),
        ("at", _expr_dump("sim.now")),
        ("event", _expr_dump(repr(event))),
        ("src", _expr_dump("src")),
        ("block", _expr_dump("block")),
        ("before", _expr_dump(expect.before)),
        ("after", _expr_dump(expect.after)),
        ("rule", _expr_dump(repr(row.action))),
        ("next_label", _expr_dump(repr(row.next_state))),
        ("busy", _expr_dump("_busy")),
        ("txn", _expr_dump("txn")),
    )
    for field, expected in checks:
        if _dump(kwargs[field]) != expected:
            issues.add(f"{where}: emit claims a wrong {field!r} for "
                       f"action {row.action!r}")


def _check_chain(stmts: Sequence[ast.stmt], expect: _ChainExpect,
                 event: str, probe: bool, where: str,
                 issues: _Issues) -> None:
    before = len(issues)
    found = _extract_chain(stmts, probe, where, issues)
    if len(issues) > before:
        return  # unrecognized construct: already fail-closed
    exp_rows = [(r.guard, r.action) for r in expect.rows]
    got_rows = [(r.guard, r.action) for r in found.rows]
    if exp_rows != got_rows:
        issues.add(f"{where}: guard cascade {_render_rows(got_rows)} "
                   f"!= table rows {_render_rows(exp_rows)}")
        return
    expected_term = ("closed" if expect.closed
                     else "no_rule" if expect.strict else "return")
    if found.terminator != expected_term:
        issues.add(f"{where}: cascade terminates with "
                   f"{found.terminator!r}, table requires "
                   f"{expected_term!r}")
    if expected_term == "no_rule" and found.no_rule_event != event:
        issues.add(f"{where}: no_rule reports event "
                   f"{found.no_rule_event!r} instead of {event!r}")
    if probe:
        if expect.rows:
            if found.busy is None:
                issues.add(f"{where}: probe cascade never computes _busy")
            elif found.busy != _expr_dump(expect.busy):
                issues.add(f"{where}: _busy is not {expect.busy!r}")
        elif found.busy is not None:
            issues.add(f"{where}: _busy computed for an empty cascade")
        for row, fired in zip(expect.rows, found.rows):
            if fired.emit is not None:
                _check_emit(fired.emit, event, row, expect, where, issues)
    else:
        if found.busy is not None:
            issues.add(f"{where}: probe-off variant computes _busy")
        for fired in found.rows:
            if fired.emit is not None:
                issues.add(f"{where}: probe-off variant emits")


# ----------------------------------------------------------------------
# Event and handler recognition
# ----------------------------------------------------------------------

def _split_elif(top: ast.If, test_of) -> Tuple[List[Tuple[object,
                                               List[ast.stmt]]],
                                               List[ast.stmt],
                                               Optional[str]]:
    """Flatten an if/elif/.../else ladder.  ``test_of`` maps a test
    expression to a key or None (unrecognized).  Returns (arms, else
    body, error)."""
    arms: List[Tuple[object, List[ast.stmt]]] = []
    node: ast.stmt = top
    while isinstance(node, ast.If):
        key = test_of(node.test)
        if key is None:
            return arms, [], f"unrecognized branch test at {_line(node)}"
        arms.append((key, node.body))
        orelse = node.orelse
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            node = orelse[0]
            continue
        return arms, orelse, None
    return arms, [], "empty ladder"


def _event_test(test: ast.expr) -> Optional[str]:
    if (isinstance(test, ast.Compare) and _is_name(test.left, "kind")
            and len(test.ops) == 1 and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.comparators[0], ast.Constant)):
        return test.comparators[0].value
    return None


def _state_test(test: ast.expr) -> Optional[str]:
    if (isinstance(test, ast.Compare) and _is_name(test.left, "state")
            and len(test.ops) == 1 and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Name)
            and test.comparators[0].id.startswith("S_")):
        return test.comparators[0].id[2:]
    return None


def _check_event(table: ProtocolTable, event: str,
                 body: List[ast.stmt], probe: bool, where: str,
                 issues: _Issues) -> None:
    policy = table.policies[event]
    rows = _live_rows(table, event)
    strict = policy.fallback == "error"
    wildcard = [r for r in rows if r.states is None]
    i = 0
    if policy.lookup == "create":
        if not (i < len(body)
                and _dump(body[i]) == _stmt_dump("entry = entry_for(block)")):
            issues.add(f"{where}: 'create' policy must look up via "
                       f"entry_for(block)")
            return
        i += 1
    else:
        if not (i < len(body) and _dump(body[i])
                == _stmt_dump("entry = entries_get(block)")):
            issues.add(f"{where}: 'get' policy must look up via "
                       f"entries.get(block)")
            return
        i += 1
        if not (i < len(body) and isinstance(body[i], ast.If)
                and _dump(body[i].test) == _expr_dump("entry is None")
                and not body[i].orelse):
            issues.add(f"{where}: 'get' policy must handle a missing "
                       f"entry")
            return
        _check_chain(body[i].body,
                     _expected_chain(wildcard, strict, before="None",
                                     busy="False", after="None"),
                     event, probe, f"{where}, missing entry", issues)
        i += 1
    if not (i < len(body)
            and _dump(body[i]) == _stmt_dump("state = entry.state")):
        issues.add(f"{where}: expected 'state = entry.state'")
        return
    i += 1
    rest = body[i:]

    specific = _specific_states(rows)
    after = "entry.state.value"
    if not specific:
        _check_chain(rest,
                     _expected_chain(wildcard, strict, before="state.value",
                                     busy=_WILDCARD_BUSY, after=after),
                     event, probe, f"{where}, any state", issues)
        return
    if len(rest) != 1 or not isinstance(rest[0], ast.If):
        issues.add(f"{where}: expected a state-dispatch ladder")
        return
    arms, orelse, error = _split_elif(rest[0], _state_test)
    if error is not None:
        issues.add(f"{where}: {error}")
        return
    expected_arms = [s.name for s in specific]
    got_arms = [key for key, _ in arms]
    if got_arms != expected_arms:
        issues.add(f"{where}: state arms {got_arms} != states with "
                   f"specific rows {expected_arms} (DirState order)")
        return
    for state, (_, arm_body) in zip(specific, arms):
        chain = [r for r in rows
                 if r.states is None or state in r.states]
        busy = "True" if state.transient else _PENDING_BUSY
        _check_chain(arm_body,
                     _expected_chain(chain, strict,
                                     before=repr(state.value), busy=busy,
                                     after=after),
                     event, probe, f"{where}, state {state.name}", issues)
    if not orelse:
        issues.add(f"{where}: missing wildcard else-arm")
        return
    _check_chain(orelse,
                 _expected_chain(wildcard, strict, before="state.value",
                                 busy=_WILDCARD_BUSY, after=after),
                 event, probe, f"{where}, other states", issues)


_FAST_PRELUDE = ("kind = message.kind", "src = message.src",
                 "payload = message.payload", "block = payload.block")

_PROBE_GATE = ("if obs is None or not obs.on_transition:\n"
               "    handle_fast(message)\n"
               "    return")


def _check_handler(table: ProtocolTable, fn: ast.FunctionDef,
                   probe: bool, issues: _Issues) -> None:
    where = fn.name
    body = list(fn.body)
    prelude = list(_FAST_PRELUDE)
    if probe:
        prelude = (["obs = machine.obs", _PROBE_GATE,
                    "emit = obs.transition"]
                   + prelude + ["txn = payload.txn"])
    if len(body) < len(prelude) + 1:
        issues.add(f"{where}: handler body too short")
        return
    for expected, stmt in zip(prelude, body):
        if _dump(stmt) != _stmt_dump(expected):
            issues.add(f"{where}: expected {expected.splitlines()[0]!r} "
                       f"at {_line(stmt)}")
            return
    rest = body[len(prelude):]
    if len(rest) != 1 or not isinstance(rest[0], ast.If):
        issues.add(f"{where}: expected a single event-dispatch ladder")
        return
    arms, orelse, error = _split_elif(rest[0], _event_test)
    if error is not None:
        issues.add(f"{where}: {error}")
        return
    expected_events = list(table.events())
    got_events = [key for key, _ in arms]
    if got_events != expected_events:
        issues.add(f"{where}: dispatched events {got_events} != "
                   f"table events {expected_events} (policy order)")
        return
    if (len(orelse) != 1
            or _dump(orelse[0]) != _stmt_dump("unknown_event(kind)")):
        issues.add(f"{where}: terminal else must call "
                   f"unknown_event(kind)")
    for event, event_body in arms:
        _check_event(table, event, event_body, probe,
                     f"{where}, event {event!r}", issues)
    _check_termination(fn, issues)


def _check_termination(fn: ast.FunctionDef, issues: _Issues) -> None:
    """CFG check: every path returns, except the single fall-through
    after the terminal unknown_event call."""
    cfg = build_cfg(fn)
    fallthrough: List[int] = []
    for bid in cfg.block(cfg.exit).preds:
        block = cfg.block(bid)
        last = block.units[-1].node if block.units else None
        if isinstance(last, (ast.Return, ast.Raise)):
            continue
        fallthrough.append(bid)
    for bid in fallthrough:
        # Walk back through empty join blocks to the statements that
        # actually fall through; they must be the unknown_event call.
        frontier = [bid]
        seen = set()
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            block = cfg.block(cur)
            if not block.units:
                frontier.extend(block.preds)
                continue
            last = block.units[-1].node
            if (isinstance(last, ast.Expr)
                    and _call_of(last.value, "unknown_event") is not None):
                continue
            issues.add(f"{fn.name}: a path falls off the handler "
                       f"without returning ({_line(last)})")


# ----------------------------------------------------------------------
# Probe-variant stripping
# ----------------------------------------------------------------------

def _is_probe_stmt(stmt: ast.stmt) -> bool:
    for name in ("obs", "emit", "txn", "_busy"):
        if _assign_to(stmt, name) is not None:
            return True
    if (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
            and _is_name(stmt.value.func, "emit")):
        return True
    if (isinstance(stmt, ast.If) and stmt.body
            and isinstance(stmt.body[0], ast.Expr)
            and _call_of(stmt.body[0].value, "handle_fast") is not None):
        return True
    return False


def _strip_probe(stmts: Sequence[ast.stmt]) -> List[str]:
    """Dump of ``stmts`` minus probe constructs, recursively."""
    out: List[str] = []
    for stmt in stmts:
        if _is_probe_stmt(stmt):
            continue
        if isinstance(stmt, ast.If):
            out.append("if " + _dump(stmt.test))
            out.append("then")
            out.extend(_strip_probe(stmt.body))
            out.append("else")
            out.extend(_strip_probe(stmt.orelse))
            out.append("end")
            continue
        out.append(_dump(stmt))
    return out


def _check_probe_delta(fast: ast.FunctionDef, probe: ast.FunctionDef,
                       issues: _Issues) -> None:
    stripped = _strip_probe(probe.body)
    baseline = _strip_probe(fast.body)
    if stripped != baseline:
        for a, b in zip(baseline, stripped):
            if a != b:
                break
        issues.add("handle_probe differs from handle_fast beyond probe "
                   "constructs (observer gate, _busy/txn locals, emit "
                   "calls)")


def _check_fast_purity(fast: ast.FunctionDef, issues: _Issues) -> None:
    banned = {"obs", "emit", "txn", "_busy", "TransitionApplied"}
    for node in ast.walk(fast):
        if isinstance(node, ast.Name) and node.id in banned:
            issues.add(f"handle_fast: probe construct {node.id!r} in the "
                       f"probe-off variant ({_line(node)})")
            return


# ----------------------------------------------------------------------
# Module-level recognition
# ----------------------------------------------------------------------

def validate_source(table: ProtocolTable, source: str) -> List[str]:
    """Prove ``source`` row-for-row equivalent to ``table``.

    Returns a list of human-readable issues; empty means the generated
    module is structurally equivalent to the table.  The recognizer is
    fail-closed: any construct it cannot account for is an issue.
    """
    from repro.core.protocol.compile import GENERATED_HEADER

    issues = _Issues()
    if not source.startswith(GENERATED_HEADER):
        issues.add("generated module is missing the "
                   "generated-by(compile) header")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        issues.add(f"generated module does not parse: {exc}")
        return list(issues)

    body = list(tree.body)
    for state in _STATES:
        if not body or _dump(body[0]) != _stmt_dump(
                f"S_{state.name} = DirState.{state.name}"):
            issues.add(f"missing state prelude S_{state.name} = "
                       f"DirState.{state.name}")
            return list(issues)
        body.pop(0)
    if not (len(body) == 1 and isinstance(body[0], ast.FunctionDef)
            and body[0].name == "bind"):
        issues.add("module must define exactly bind() after the state "
                   "prelude")
        return list(issues)
    bind = body[0]
    params = [a.arg for a in bind.args.args]
    if params != ["backend", "node", "TransitionApplied"]:
        issues.add(f"bind() signature {params} != "
                   f"['backend', 'node', 'TransitionApplied']")

    stmts = list(bind.body)
    for expected in ("entry_for = backend.entry_for",
                     "entries_get = backend.entries.get",
                     "no_rule = backend.no_rule",
                     "unknown_event = backend.unknown_event"):
        if not stmts or _dump(stmts[0]) != _stmt_dump(expected):
            issues.add(f"bind() prelude is missing {expected!r}")
            return list(issues)
        stmts.pop(0)
    binds: List[Tuple[str, str]] = []
    while stmts:
        stmt = stmts[0]
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id.startswith("m_")):
            value = stmt.value
            if (isinstance(value, ast.Attribute)
                    and _is_name(value.value, "backend")):
                binds.append((stmt.targets[0].id, value.attr))
                stmts.pop(0)
                continue
            issues.add(f"method bind at {_line(stmt)} does not read an "
                       f"attribute of the backend")
            return list(issues)
        break
    expected_binds = [(f"m_{name}", name)
                      for name in _expected_methods(table)]
    if binds != expected_binds:
        for (got_m, got_attr), (exp_m, exp_attr) in zip(binds,
                                                        expected_binds):
            if (got_m, got_attr) != (exp_m, exp_attr):
                issues.add(f"backend bind {got_m} = backend.{got_attr} "
                           f"!= expected {exp_m} = backend.{exp_attr}")
                break
        else:
            got = [m for m, _ in binds]
            exp = [m for m, _ in expected_binds]
            issues.add(f"bound methods {got} != live-row guard/action "
                       f"set {exp} (sorted)")
        return list(issues)
    for got_m, got_attr in binds:
        if got_m != f"m_{got_attr}":
            issues.add(f"backend bind {got_m} = backend.{got_attr} is "
                       f"not name-faithful")

    for expected in ("machine = node.machine", "sim = machine.sim",
                     "node_id = node.id"):
        if not stmts or _dump(stmts[0]) != _stmt_dump(expected):
            issues.add(f"bind() prelude is missing {expected!r}")
            return list(issues)
        stmts.pop(0)

    if not (len(stmts) == 3
            and isinstance(stmts[0], ast.FunctionDef)
            and stmts[0].name == "handle_fast"
            and isinstance(stmts[1], ast.FunctionDef)
            and stmts[1].name == "handle_probe"
            and _dump(stmts[2]) == _stmt_dump(
                "return handle_fast, handle_probe")):
        issues.add("bind() must define handle_fast and handle_probe and "
                   "return the pair")
        return list(issues)
    fast, probe = stmts[0], stmts[1]

    _check_fast_purity(fast, issues)
    _check_handler(table, fast, probe=False, issues=issues)
    _check_handler(table, probe, probe=True, issues=issues)
    _check_probe_delta(fast, probe, issues)
    return list(issues)


# ----------------------------------------------------------------------
# The check pass
# ----------------------------------------------------------------------

def run_transval(tables: Optional[List[ProtocolTable]] = None) -> Report:
    """Validate every builtin table's generated module (both variants)."""
    from repro.core.protocol import compile as compmod

    if tables is None:
        tables = list(compmod.ensure_builtin_tables_compiled())
    report = Report()
    report.passes.append("transval")
    registry = compmod.generated_sources()
    rows = 0
    elided = 0
    for table in tables:
        filename = compmod.generated_filename(table)
        source = registry.get(filename)
        if source is None:
            source = compmod.generate_source(table)
        manifest = compmod.generation_manifest(table)
        for event in table.events():
            live = _live_rows(table, event)
            rows += len(live)
            claimed = [r["action"]
                       for r in manifest["events"][event]["rows"]]
            if claimed != [r.action for r in live]:
                report.findings.append(Finding(
                    analysis="transval", code="TV02", location=filename,
                    message=(f"generation manifest for event {event!r} "
                             f"disagrees with the table's live rows"),
                ))
        elided += len(manifest["elided_rows"])
        for issue in validate_source(table, source):
            report.findings.append(Finding(
                analysis="transval", code="TV01",
                location=filename, message=issue,
            ))
    report.stats["transval.tables"] = len(tables)
    report.stats["transval.rows"] = rows
    report.stats["transval.elided_rows"] = elided
    return report
