"""Finding and report types shared by the static analyses.

Both the model checker and the determinism linter emit
:class:`Finding`s; :class:`Report` aggregates them with per-analysis
statistics and renders either human-readable text or a stable JSON
document (no timestamps, no wall-clock — the report itself obeys the
repo's byte-identical-output rule, so CI can diff it).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple

__all__ = ["Finding", "Report", "SCHEMA",
           "EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_ERROR"]

#: ``repro check`` exit codes (also the CI contract).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Version tag of the ``repro check --json`` document.  Consumers pin
#: on this; any field removal or meaning change bumps the suffix.
SCHEMA = "repro-check/1"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One verified problem surfaced by a static analysis.

    ``analysis`` is the pass that produced it (``"modelcheck"`` or
    ``"lint"``); ``code`` the machine-stable class (``"safety"``,
    ``"dead-row"``, ``"RND02"``, ...); ``location`` a human-readable
    anchor (``"hardware row 5 (rreq/reply_busy)"`` or
    ``"src/repro/exec/cache.py:153"``); ``trace`` an optional witness
    — for the model checker, the step labels leading to the bad state.
    """

    analysis: str
    code: str
    location: str
    message: str
    trace: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "analysis": self.analysis,
            "code": self.code,
            "location": self.location,
            "message": self.message,
        }
        if self.trace:
            doc["trace"] = list(self.trace)
        return doc


@dataclasses.dataclass
class Report:
    """Aggregated findings plus per-analysis statistics."""

    findings: List[Finding] = dataclasses.field(default_factory=list)
    stats: Dict[str, object] = dataclasses.field(default_factory=dict)
    passes: List[str] = dataclasses.field(default_factory=list)

    def extend(self, other: "Report") -> None:
        self.findings.extend(other.findings)
        self.stats.update(other.stats)
        for name in other.passes:
            if name not in self.passes:
                self.passes.append(name)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.clean else EXIT_FINDINGS

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "clean": self.clean,
            "exit_code": self.exit_code,
            "passes": list(self.passes),
            "findings": [f.to_json() for f in self.findings],
            "stats": self.stats,
        }

    def dump_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def render_text(self, max_trace: int = 12) -> str:
        """Human-readable report; witness traces are elided to their
        last ``max_trace`` steps (the tail is where the bug is)."""
        lines: List[str] = []
        for f in self.findings:
            lines.append(f"[{f.analysis}:{f.code}] {f.location}")
            lines.append(f"    {f.message}")
            if f.trace:
                steps = list(f.trace)
                elided = len(steps) - max_trace
                if elided > 0:
                    steps = steps[-max_trace:]
                    lines.append(f"    witness (last {max_trace} of "
                                 f"{len(f.trace)} steps):")
                else:
                    lines.append("    witness:")
                for step in steps:
                    lines.append(f"      - {step}")
        for key in sorted(self.stats):
            lines.append(f"{key}: {self.stats[key]}")
        verdict = ("clean" if self.clean
                   else f"{len(self.findings)} finding(s)")
        lines.append(verdict)
        return "\n".join(lines) + "\n"


def write_json(report: Report, path: Optional[str]) -> None:
    """Write the JSON report to ``path`` (``"-"`` = stdout)."""
    text = report.dump_json()
    if path == "-":
        import sys

        sys.stdout.write(text)
    elif path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
