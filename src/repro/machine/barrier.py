"""Machine-wide barrier over a combining tree.

Alewife provides a fast barrier implemented with protocol-extension
support (Section 7).  We model it as a 4-ary combining tree of the node
ids: arrivals propagate up through real fabric messages (so barriers see
network latency and endpoint contention), and the release broadcasts back
down the tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.common.errors import SimulationError
from repro.core import messages as msg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.network.fabric import Message

#: Children per tree node.
ARITY = 4

#: Cycles of local processing per barrier message.
BARRIER_NODE_DELAY = 2


class BarrierManager:
    """Combining-tree barrier across all nodes of the machine."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.n_nodes = machine.params.n_nodes
        #: per-node arrival epoch (how many barriers this node has entered)
        self._epoch: List[int] = [0] * self.n_nodes
        #: per-node, per-epoch count of arrivals (self + subtree)
        self._counts: List[Dict[int, int]] = [dict() for _ in range(self.n_nodes)]
        self.barriers_completed = 0
        #: optional callback invoked when a barrier completes at the
        #: root (a quiescent point — used by the coherence checker)
        self.on_complete = None

    @staticmethod
    def parent(node: int) -> int:
        return (node - 1) // ARITY

    def children(self, node: int) -> List[int]:
        first = node * ARITY + 1
        return [c for c in range(first, first + ARITY) if c < self.n_nodes]

    def expected(self, node: int) -> int:
        return 1 + len(self.children(node))

    # ------------------------------------------------------------------
    # Arrival / release
    # ------------------------------------------------------------------

    def arrive(self, node: int) -> None:
        """The processor at ``node`` reached its next barrier."""
        epoch = self._epoch[node]
        self._epoch[node] += 1
        self._up(node, epoch)

    def _up(self, node: int, epoch: int) -> None:
        counts = self._counts[node]
        counts[epoch] = counts.get(epoch, 0) + 1
        if counts[epoch] < self.expected(node):
            return
        del counts[epoch]
        if node == 0:
            self.barriers_completed += 1
            if self.on_complete is not None:
                self.on_complete()
            self._release(node, epoch)
        else:
            self.machine.nodes[node].send_protocol(
                msg.BAR_UP, self.parent(node), epoch,
                extra_delay=BARRIER_NODE_DELAY,
            )

    def _release(self, node: int, epoch: int) -> None:
        for child in self.children(node):
            self.machine.nodes[node].send_protocol(
                msg.BAR_DOWN, child, epoch,
                extra_delay=BARRIER_NODE_DELAY,
            )
        self.machine.nodes[node].processor.barrier_release()

    def handle(self, message: "Message") -> None:
        epoch = message.payload.block  # epoch rides in the block field
        if message.kind == msg.BAR_UP:
            self._up(message.dst, epoch)
        elif message.kind == msg.BAR_DOWN:
            self._release(message.dst, epoch)
        else:
            raise SimulationError(f"barrier received {message.kind}")
