"""Synchronisation objects built on the protocol extension software.

The paper lists a FIFO lock data type and a fast barrier among the
enhancements implemented with Alewife's protocol extension interface
(Section 7), and its applications use "Alewife's parallel C library for
barriers and reductions".  The barrier lives in
:mod:`repro.machine.barrier`; this module provides the FIFO lock and
the combining-tree global reduction.

A lock is a shared-memory object with a home node.  Acquire/release are
protocol messages handled by the home's extension software: the home
keeps a FIFO queue of waiters and grants the lock in arrival order, so
the lock is fair by construction (unlike test-and-set spin locks, whose
retry traffic the protocol would otherwise have to absorb).  Handling a
lock message occupies the home's processor like any other protocol
handler.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ProtocolStateError
from repro.common.types import TrapKind

from repro.core.software.costmodel import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.network.fabric import Message

#: Lock protocol messages (routed to the LockManager).
LOCK_REQ = "lock_req"
LOCK_GRANT = "lock_grant"
LOCK_REL = "lock_rel"

LOCK_KINDS = frozenset({LOCK_REQ, LOCK_GRANT, LOCK_REL})

#: Reduction protocol messages (combining tree, like the barrier).
REDUCE_UP = "reduce_up"
REDUCE_DOWN = "reduce_down"

REDUCE_KINDS = frozenset({REDUCE_UP, REDUCE_DOWN})


@dataclasses.dataclass
class LockState:
    """Home-side state of one FIFO lock."""

    lock_id: int
    home: int
    holder: Optional[int] = None
    waiters: Deque[int] = dataclasses.field(default_factory=deque)
    acquisitions: int = 0
    max_queue: int = 0
    #: grant history [(node, grant_time)] for fairness checking
    history: List[Tuple[int, int]] = dataclasses.field(default_factory=list)


class LockManager:
    """Machine-wide registry and home-side handling of FIFO locks."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.locks: Dict[int, LockState] = {}
        self._waiting: Dict[Tuple[int, int], Callable[[], None]] = {}

    # ------------------------------------------------------------------
    # Creation (before the run starts)
    # ------------------------------------------------------------------

    def create_lock(self, home: int) -> int:
        """Allocate a lock homed on ``home``; returns its id (a shared
        address, so locks live in the machine's address space)."""
        addr = self.machine.heap.alloc_block(home)
        self.locks[addr] = LockState(lock_id=addr, home=home)
        return addr

    def _state(self, lock_id: int) -> LockState:
        state = self.locks.get(lock_id)
        if state is None:
            raise ConfigurationError(f"unknown lock {lock_id}")
        return state

    # ------------------------------------------------------------------
    # Processor-side operations
    # ------------------------------------------------------------------

    def acquire(self, node_id: int, lock_id: int,
                granted: Callable[[], None]) -> None:
        """Request the lock; ``granted`` fires when this node holds it."""
        state = self._state(lock_id)
        key = (lock_id, node_id)
        if key in self._waiting:
            raise ProtocolStateError(
                f"node {node_id} already waiting on lock {lock_id}")
        self._waiting[key] = granted
        self.machine.nodes[node_id].send_protocol(
            LOCK_REQ, state.home, lock_id)

    def release(self, node_id: int, lock_id: int) -> None:
        """Release the lock (fire-and-forget message to the home)."""
        state = self._state(lock_id)
        self.machine.nodes[node_id].send_protocol(
            LOCK_REL, state.home, lock_id)

    # ------------------------------------------------------------------
    # Message handling (home side runs in extension software)
    # ------------------------------------------------------------------

    def handle(self, message: "Message") -> None:
        lock_id = message.payload.block
        if message.kind == LOCK_REQ:
            self._on_request(lock_id, message.src)
        elif message.kind == LOCK_REL:
            self._on_release(lock_id, message.src)
        elif message.kind == LOCK_GRANT:
            self._on_grant(lock_id, message.dst)
        else:  # pragma: no cover
            raise ProtocolStateError(f"lock manager got {message.kind}")

    def _handler_cost(self, home: int) -> "CostModel":
        node = self.machine.nodes[home]
        if node.interface is not None:
            return node.interface.cost_model
        # Full-map machines have no extension software; model a fixed
        # lightweight system-level handler instead.
        return CostModel("optimized")

    def _run_home_handler(self, home: int, completion: Callable[[], None],
                          forward: bool = False) -> None:
        cost_model = self._handler_cost(home)
        cost = cost_model.ack_forward() if forward else cost_model.ack()
        self.machine.nodes[home].processor.post_trap(
            TrapKind.REMOTE_REQUEST, cost, completion,
            implementation=cost_model.implementation)

    def _on_request(self, lock_id: int, requester: int) -> None:
        state = self._state(lock_id)

        def complete() -> None:
            if state.holder is None:
                state.holder = requester
                self._send_grant(state, requester)
            else:
                state.waiters.append(requester)
                state.max_queue = max(state.max_queue, len(state.waiters))

        self._run_home_handler(state.home, complete, forward=True)

    def _on_release(self, lock_id: int, releaser: int) -> None:
        state = self._state(lock_id)

        def complete() -> None:
            if state.holder != releaser:
                raise ProtocolStateError(
                    f"node {releaser} released lock {lock_id} held by "
                    f"{state.holder}"
                )
            if state.waiters:
                nxt = state.waiters.popleft()
                state.holder = nxt
                self._send_grant(state, nxt)
            else:
                state.holder = None

        self._run_home_handler(state.home, complete, forward=True)

    def _send_grant(self, state: LockState, node: int) -> None:
        state.acquisitions += 1
        state.history.append((node, self.machine.sim.now))
        self.machine.nodes[state.home].send_protocol(
            LOCK_GRANT, node, state.lock_id)

    def _on_grant(self, lock_id: int, node: int) -> None:
        key = (lock_id, node)
        granted = self._waiting.pop(key, None)
        if granted is None:
            raise ProtocolStateError(
                f"grant for lock {lock_id} to node {node} with no waiter")
        granted()


# ----------------------------------------------------------------------
# Global reductions (Alewife's parallel C library provides barriers and
# reductions; the applications of Section 6 use both)
# ----------------------------------------------------------------------

#: children per reduction-tree node (same shape as the barrier tree)
REDUCE_ARITY = 4

#: cycles of local combining per reduction message
REDUCE_NODE_DELAY = 3


@dataclasses.dataclass
class _ReduceEpoch:
    """In-flight state of one reduction epoch at one tree node."""

    arrived: int = 0
    value: object = None


@dataclasses.dataclass
class ReductionState:
    """One named global reduction."""

    reduce_id: int
    combine: Callable[[object, object], object]
    #: per-node, per-epoch partial aggregation state
    pending: Dict[Tuple[int, int], _ReduceEpoch] = dataclasses.field(
        default_factory=dict)
    #: per-node local epoch counters
    epoch: Dict[int, int] = dataclasses.field(default_factory=dict)
    #: most recently completed global result
    result: object = None
    completed_epochs: int = 0


@dataclasses.dataclass
class _ReducePayload:
    """Payload of a reduction message (epoch + partial value)."""

    block: int  # the reduction id rides in the block field
    epoch: int = 0
    value: object = None
    requester: Optional[int] = None


class ReductionManager:
    """Combining-tree global reductions over all nodes."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.n_nodes = machine.params.n_nodes
        self.reductions: Dict[int, ReductionState] = {}
        self._waiting: Dict[Tuple[int, int], Callable[[], None]] = {}
        self._next_id = 1

    def create_reduction(
        self, combine: Callable[[object, object], object]
    ) -> int:
        """Register a reduction with the given combining function."""
        reduce_id = self._next_id
        self._next_id += 1
        self.reductions[reduce_id] = ReductionState(reduce_id, combine)
        return reduce_id

    def _state(self, reduce_id: int) -> ReductionState:
        state = self.reductions.get(reduce_id)
        if state is None:
            raise ConfigurationError(f"unknown reduction {reduce_id}")
        return state

    @staticmethod
    def _parent(node: int) -> int:
        return (node - 1) // REDUCE_ARITY

    def _children(self, node: int) -> List[int]:
        first = node * REDUCE_ARITY + 1
        return [c for c in range(first, first + REDUCE_ARITY)
                if c < self.n_nodes]

    def _expected(self, node: int) -> int:
        return 1 + len(self._children(node))

    # ------------------------------------------------------------------
    # Processor interface
    # ------------------------------------------------------------------

    def contribute(self, node_id: int, reduce_id: int, value: object,
                   done: Callable[[], None]) -> None:
        """Contribute ``value`` and block until the global result is in
        ``ReductionState.result``."""
        state = self._state(reduce_id)
        epoch = state.epoch.get(node_id, 0)
        state.epoch[node_id] = epoch + 1
        self._waiting[(reduce_id, node_id)] = done
        self._up(state, node_id, epoch, value)

    # ------------------------------------------------------------------
    # Tree plumbing
    # ------------------------------------------------------------------

    def _up(self, state: ReductionState, node: int, epoch: int,
            value: object) -> None:
        key = (node, epoch)
        pending = state.pending.get(key)
        if pending is None:
            pending = _ReduceEpoch()
            state.pending[key] = pending
        pending.arrived += 1
        pending.value = (value if pending.value is None
                         else state.combine(pending.value, value))
        if pending.arrived < self._expected(node):
            return
        del state.pending[key]
        if node == 0:
            state.result = pending.value
            state.completed_epochs += 1
            self._down(state, node, epoch)
        else:
            self._send(node, self._parent(node), REDUCE_UP, state,
                       epoch, pending.value)

    def _down(self, state: ReductionState, node: int, epoch: int) -> None:
        for child in self._children(node):
            self._send(node, child, REDUCE_DOWN, state, epoch,
                       state.result)
        done = self._waiting.pop((state.reduce_id, node), None)
        if done is not None:
            done()

    def _send(self, src: int, dst: int, kind: str, state: ReductionState,
              epoch: int, value: object) -> None:
        from repro.network.fabric import Message

        node = self.machine.nodes[src]
        node.stats.messages_sent[kind] += 1
        self.machine.fabric.send(
            Message(src=src, dst=dst, kind=kind,
                    size_flits=self.machine.params.header_flits + 2,
                    payload=_ReducePayload(block=state.reduce_id,
                                           epoch=epoch, value=value)),
            extra_delay=REDUCE_NODE_DELAY,
        )

    def handle(self, message) -> None:
        payload = message.payload
        state = self._state(payload.block)
        if message.kind == REDUCE_UP:
            self._up(state, message.dst, payload.epoch, payload.value)
        elif message.kind == REDUCE_DOWN:
            state.result = payload.value
            self._down(state, message.dst, payload.epoch)
        else:  # pragma: no cover
            raise ProtocolStateError(f"reduction got {message.kind}")
