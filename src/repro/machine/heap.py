"""Shared-memory heap with placement and cache-colour control.

Alewife's shared address space is segmented: each node owns 4 Mbytes of
globally shared memory.  Workloads allocate explicitly on a chosen home
node (location-independent addressing means any node can then access the
data by address alone).

The allocator also supports *cache colouring*: requesting an address
whose block maps to a given direct-mapped cache set.  The TSP case study
(Section 6) hinges on two globally-shared blocks that happen to conflict
with hot instruction lines in the combined direct-mapped cache; colouring
lets the workloads reproduce (or avoid) exactly that layout.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import AllocationError
from repro.machine.params import MachineParams


class SharedHeap:
    """Per-node bump allocator over the segmented shared address space."""

    def __init__(self, params: MachineParams, reserved_blocks: int) -> None:
        self.params = params
        self._reserved_words = reserved_blocks * params.block_words
        if self._reserved_words >= params.local_mem_words:
            raise AllocationError("code region exceeds local memory")
        # Stagger each node's heap origin across a 64-block window.  The
        # segments of different nodes alias to the same direct-mapped
        # cache sets (segment size is a multiple of the cache size), so
        # without staggering, "the same" allocation on every node would
        # conflict machine-wide.  This models the DRAM page mapping the
        # paper identifies as a first-order design factor (Section 8).
        self._next: List[int] = [
            params.node_base_addr(node)
            + self._reserved_words
            + ((node * 17) % 64) * params.block_words
            for node in range(params.n_nodes)
        ]
        self._start = list(self._next)

    def alloc(self, node: int, words: int,
              color: Optional[int] = None) -> int:
        """Allocate ``words`` words homed on ``node``.

        Allocations are block-aligned.  With ``color``, the first block
        of the allocation maps to direct-mapped cache set ``color``.
        """
        if not 0 <= node < self.params.n_nodes:
            raise AllocationError(f"no such node {node}")
        if words <= 0:
            raise AllocationError(f"invalid allocation size {words}")
        block_words = self.params.block_words
        addr = self._next[node]
        addr = -(-addr // block_words) * block_words  # round up to a block
        if color is not None:
            sets = self.params.cache_sets
            if not 0 <= color < sets:
                raise AllocationError(f"invalid cache colour {color}")
            block = addr // block_words
            skip = (color - block) % sets
            addr += skip * block_words
        end = addr + words
        limit = self.params.node_base_addr(node) + self.params.local_mem_words
        if end > limit:
            raise AllocationError(
                f"node {node} out of shared memory ({end - limit} words over)"
            )
        self._next[node] = end
        return addr

    def alloc_block(self, node: int, color: Optional[int] = None) -> int:
        """Allocate exactly one block; returns its first word address."""
        return self.alloc(node, self.params.block_words, color)

    def words_used(self, node: int) -> int:
        return self._next[node] - self._start[node]
