"""Processor model.

Each node's processor executes a *workload thread* — a Python generator
yielding architectural operations:

- ``("compute", cycles)`` or ``("compute", cycles, code_ref)`` — spin the
  ALU; with a code reference, first fetch that code's instruction lines
  through the cache (unless the *perfect ifetch* simulator option is on);
- ``("read", addr)`` / ``("write", addr)`` — a data access;
- ``("barrier",)`` — wait at the machine-wide barrier;
- ``("lock", id)`` / ``("unlock", id)`` — the FIFO lock (Section 7);
- ``("reduce", id, value)`` — a combining-tree global reduction;
- ``("checkin", addr)`` — a CICO check-in annotation (Sections 2.5/7).

The processor is a blocking (Sparcle-style) core: one outstanding memory
transaction, and protocol software pre-empts user code.  Handlers queue
FIFO on the node's single software context; user compute resumes when the
context drains.  Short operations (cache hits, small computes) are batched
into one event to keep the simulation fast; the batch window is small
enough (tens of cycles) that the timing error is negligible relative to
handler and network latencies.

The livelock watchdog of Section 4.1 is implemented here: for protocols
that trap on every acknowledgement, a node whose user code has made no
progress for a threshold period defers further asynchronous traps for a
grace window so user code can run "unmolested".
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

from repro.common.errors import WorkloadError
from repro.common.types import AccessType, TrapKind
from repro.core.software.costmodel import HandlerCost
from repro.obs.events import HandlerSpan, StallSpan, UserSpan
from repro.sim.stats import HandlerSample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import CodeRef
    from repro.machine.node import Node

#: Cycles of cheap work folded into a single simulation event.
BATCH_LIMIT = 48


class ProcState(enum.Enum):
    """What a processor is doing at this instant."""

    IDLE = "idle"
    RUNNING = "running"
    COMPUTING = "computing"  # long preemptible compute in progress
    PREEMPTED = "preempted"  # compute interrupted by a handler
    STALLED = "stalled"  # blocked on a memory transaction
    WAIT_SW = "wait_sw"  # ready to run, software context busy
    BARRIER = "barrier"
    DONE = "done"


class Processor:
    """One node's processor: user thread + protocol software context."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.machine = node.machine
        self.sim = node.machine.sim
        self.params = node.machine.params
        self.state = ProcState.IDLE
        self._thread: Optional[Iterator[tuple]] = None
        #: pending micro-operations of the current architectural op
        self._micro: List[tuple] = []
        self._gen = 0  # invalidates stale scheduled user events
        self._compute_started = 0
        self._compute_remaining = 0
        self._stall_started = 0
        self._stall_kind = ""
        self._stall_block: Optional[int] = None
        self._stall_txn: Optional[int] = None
        # Software context (protocol handlers serialise here).
        self.sw_busy_until = 0
        self._traps_deferred_until = 0
        self._last_progress = 0
        self.watchdog_enabled = False
        self.done_at: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, thread: Iterator[tuple]) -> None:
        self._thread = thread
        self.state = ProcState.RUNNING
        self._last_progress = self.sim.now
        # The start event is owned by this node, not by whatever context
        # called start() (workload setup runs as node 0): a shard that
        # starts only its own nodes must allocate exactly the sequence
        # numbers the serial engine allocates for them.
        self.sim.after(0, self._guarded(self._step), owner=self.node.id)

    @property
    def done(self) -> bool:
        return self.state is ProcState.DONE

    def _guarded(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Wrap a user-side event so stale schedules are ignored."""
        gen = self._gen

        def run() -> None:
            if gen == self._gen:
                fn()

        return run

    def _invalidate_user_events(self) -> None:
        self._gen += 1

    # ------------------------------------------------------------------
    # User execution
    # ------------------------------------------------------------------

    def _next_micro(self) -> Optional[tuple]:
        if self._micro:
            return self._micro.pop(0)
        assert self._thread is not None
        try:
            op = next(self._thread)
        except StopIteration:
            return None
        self._expand(op)
        if not self._micro:
            raise WorkloadError(f"workload yielded empty op {op!r}")
        return self._micro.pop(0)

    def _expand(self, op: tuple) -> None:
        """Translate an architectural op into micro-ops."""
        kind = op[0]
        machine = self.machine
        if kind == "compute":
            cycles = op[1]
            if cycles < 0:
                raise WorkloadError(f"negative compute {op!r}")
            code_ref: Optional["CodeRef"] = op[2] if len(op) > 2 else None
            if code_ref is not None:
                machine.seq_ifetches += len(code_ref.offsets)
                if not self.params.perfect_ifetch:
                    for block in code_ref.blocks(self.node.id):
                        self._micro.append(("ifetch", block))
            machine.seq_compute += cycles
            if cycles:
                self._micro.append(("compute", cycles))
            elif not self._micro:
                self._micro.append(("compute", 0))
        elif kind in ("read", "write"):
            machine.seq_mem_ops += 1
            access = (AccessType.WRITE if kind == "write"
                      else AccessType.READ)
            self._micro.append(("access", access, op[1]))
        elif kind == "barrier":
            self._micro.append(("barrier",))
        elif kind == "lock":
            self._micro.append(("lock", op[1]))
        elif kind == "unlock":
            self._micro.append(("unlock", op[1]))
        elif kind == "reduce":
            self._micro.append(("reduce", op[1], op[2]))
        elif kind == "checkin":
            self._micro.append(("checkin", op[1]))
        else:
            raise WorkloadError(f"unknown workload op {op!r}")

    def _step(self) -> None:
        """Run user micro-ops from ``sim.now``, batching cheap work."""
        now = self.sim.now
        if self.sw_busy_until > now:
            # The software context owns the core; try again when it frees.
            self.state = ProcState.WAIT_SW
            self.node.stats.stall_cycles += self.sw_busy_until - now
            obs = self.machine.obs
            if obs is not None and obs.on_stall:
                obs.stall(StallSpan(self.node.id, now, self.sw_busy_until,
                                    "sw_wait"))
            self.sim.at(self.sw_busy_until, self._guarded(self._step))
            return
        self.state = ProcState.RUNNING
        acc = 0
        stats = self.node.stats
        while True:
            micro = self._next_micro()
            if micro is None:
                self._finish(now + acc, acc)
                return
            kind = micro[0]
            if kind == "compute":
                cycles = micro[1]
                if cycles <= BATCH_LIMIT - acc:
                    acc += cycles
                else:
                    self._consume(acc)
                    self._begin_compute(now + acc, cycles)
                    return
            elif kind == "access":
                _tag, access, addr = micro
                block = addr >> self.params.block_shift
                if access is AccessType.WRITE:
                    stats.stores += 1
                else:
                    stats.loads += 1
                latency = self.node.cache_ctrl.try_hit(access, block)
                if latency is None:
                    self._consume(acc)
                    self._begin_miss(now + acc, access, block)
                    return
                acc += latency
            elif kind == "ifetch":
                block = micro[1]
                stats.ifetches += 1
                latency = self.node.cache_ctrl.try_hit(
                    AccessType.IFETCH, block)
                if latency is None:
                    self._consume(acc)
                    self._begin_ifetch_miss(now + acc, block)
                    return
                acc += latency
            elif kind == "barrier":
                self._consume(acc)
                self._begin_barrier(now + acc)
                return
            elif kind == "lock":
                self._consume(acc)
                self._begin_lock(now + acc, micro[1])
                return
            elif kind == "reduce":
                self._consume(acc)
                self._begin_reduce(now + acc, micro[1], micro[2])
                return
            elif kind == "checkin":
                addr = micro[1]
                block = addr >> self.params.block_shift
                at = now + acc

                def do_checkin(b=block) -> None:
                    self.node.cache_ctrl.check_in(b)

                if at > self.sim.now:
                    self.sim.at(at, do_checkin)
                else:
                    do_checkin()
                acc += 2  # the CICO instruction itself
            elif kind == "unlock":
                lock_id = micro[1]
                at = now + acc

                def send_release(lid=lock_id, t=at) -> None:
                    self.machine.locks.release(self.node.id, lid)

                if at > self.sim.now:
                    self.sim.at(at, send_release)
                else:
                    send_release()
                acc += 2  # compose-and-launch cost
            if acc >= BATCH_LIMIT:
                self._consume(acc)
                self.sim.at(now + acc, self._guarded(self._step))
                return

    def _consume(self, cycles: int,
                 span_start: Optional[int] = None) -> None:
        if cycles:
            self.node.stats.user_cycles += cycles
            self._last_progress = self.sim.now + cycles
            obs = self.machine.obs
            if obs is not None and obs.on_user:
                start = self.sim.now if span_start is None else span_start
                obs.user(UserSpan(self.node.id, start, start + cycles))

    def _finish(self, at: int, acc: int) -> None:
        self._consume(acc)
        self.state = ProcState.DONE
        self.done_at = at
        self.machine.note_processor_done(self.node.id, at)

    # ------------------------------------------------------------------
    # Long (preemptible) compute
    # ------------------------------------------------------------------

    def _begin_compute(self, at: int, cycles: int) -> None:
        """Schedule a preemptible compute burst starting at ``at``."""
        self.state = ProcState.COMPUTING
        self._compute_remaining = cycles

        def begin() -> None:
            self._resume_compute()

        if at > self.sim.now:
            self.sim.at(at, self._guarded(begin))
        else:
            begin()

    def _resume_compute(self) -> None:
        now = self.sim.now
        if self.sw_busy_until > now:
            self.state = ProcState.PREEMPTED
            return  # _on_sw_idle will resume us
        self.state = ProcState.COMPUTING
        self._compute_started = now
        remaining = self._compute_remaining
        self._invalidate_user_events()
        self.sim.at(now + remaining, self._guarded(self._finish_compute))

    def _finish_compute(self) -> None:
        self._consume(self._compute_remaining,
                      span_start=self._compute_started)
        self._compute_remaining = 0
        self.state = ProcState.RUNNING
        self._step()

    def _preempt_compute(self) -> None:
        """A handler arrived while computing: split the burst."""
        now = self.sim.now
        consumed = now - self._compute_started
        self._consume(consumed if consumed > 0 else 0,
                      span_start=self._compute_started)
        self._compute_remaining -= consumed
        self._invalidate_user_events()
        self.state = ProcState.PREEMPTED

    # ------------------------------------------------------------------
    # Memory stalls
    # ------------------------------------------------------------------

    def _begin_miss(self, at: int, access: AccessType, block: int) -> None:
        self.state = ProcState.STALLED
        self._stall_started = at
        self._stall_kind = ("write" if access is AccessType.WRITE
                            else "read")
        self._stall_block = block
        # Every data miss opens a coherence transaction; the id follows
        # the miss through every message/trap/handler it causes.  Ids
        # are allocated from a per-node counter (interleaved modulo
        # n_nodes), so a node's ids depend only on its own deterministic
        # history — identical across runs and across shard counts.
        txn = self.machine.next_txn(self.node.id)
        self._stall_txn = txn

        def issue() -> None:
            self.node.cache_ctrl.start_miss(access, block,
                                            self._memory_done, txn=txn)

        if at > self.sim.now:
            self.sim.at(at, self._guarded(issue))
        else:
            issue()

    def _begin_ifetch_miss(self, at: int, block: int) -> None:
        self.state = ProcState.STALLED
        self._stall_started = at
        self._stall_kind = "ifetch"
        self._stall_block = block
        self._stall_txn = None

        def issue() -> None:
            self.node.cache_ctrl.start_ifetch_miss(block, self._memory_done)

        if at > self.sim.now:
            self.sim.at(at, self._guarded(issue))
        else:
            issue()

    def _memory_done(self) -> None:
        now = self.sim.now
        self.node.stats.stall_cycles += now - self._stall_started
        obs = self.machine.obs
        if obs is not None and obs.on_stall:
            obs.stall(StallSpan(self.node.id, self._stall_started, now,
                                self._stall_kind, self._stall_block,
                                self._stall_txn))
        self.state = ProcState.RUNNING
        self._invalidate_user_events()
        self._step()

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def _begin_barrier(self, at: int) -> None:
        self.state = ProcState.BARRIER

        def arrive() -> None:
            self.machine.barrier.arrive(self.node.id)

        if at > self.sim.now:
            self.sim.at(at, self._guarded(arrive))
        else:
            arrive()

    def _begin_lock(self, at: int, lock_id: int) -> None:
        self.state = ProcState.STALLED
        self._stall_started = at
        self._stall_kind = "lock"
        self._stall_block = None
        self._stall_txn = None

        def request() -> None:
            self.machine.locks.acquire(self.node.id, lock_id,
                                       self._memory_done)

        if at > self.sim.now:
            self.sim.at(at, self._guarded(request))
        else:
            request()

    def _begin_reduce(self, at: int, reduce_id: int,
                      value: object) -> None:
        self.state = ProcState.STALLED
        self._stall_started = at
        self._stall_kind = "reduce"
        self._stall_block = None
        self._stall_txn = None

        def contribute() -> None:
            self.machine.reductions.contribute(
                self.node.id, reduce_id, value, self._memory_done)

        if at > self.sim.now:
            self.sim.at(at, self._guarded(contribute))
        else:
            contribute()

    def barrier_release(self) -> None:
        if self.state is not ProcState.BARRIER:
            return
        self.state = ProcState.RUNNING
        self._invalidate_user_events()
        self._step()

    # ------------------------------------------------------------------
    # Protocol software context
    # ------------------------------------------------------------------

    def post_trap(self, kind: TrapKind, cost: HandlerCost,
                  completion: Callable[[], None], pointers: int = 0,
                  implementation: str = "flexible",
                  txn: Optional[int] = None) -> None:
        """Queue a protocol handler on this node's processor."""
        now = self.sim.now
        if self.state is ProcState.COMPUTING:
            self._preempt_compute()
        start = max(now, self.sw_busy_until, self._traps_deferred_until)

        if (self.watchdog_enabled
                and self.state in (ProcState.PREEMPTED, ProcState.WAIT_SW,
                                   ProcState.RUNNING)
                and start - self._last_progress
                > self.params.watchdog_threshold):
            # Livelock watchdog: shut off asynchronous events for a
            # window so user code can make progress (Section 4.1).
            self._traps_deferred_until = max(
                self._traps_deferred_until,
                now + self.params.watchdog_window,
            )
            start = max(start, self._traps_deferred_until)
            self.node.stats.watchdog_activations += 1
            if self.sw_busy_until <= now:
                self._on_sw_idle()

        latency = cost.latency + self.params.trap_dispatch_overhead
        self.sw_busy_until = start + latency
        stats = self.node.stats
        stats.traps[kind.value] += 1
        stats.handler_cycles += latency
        self.machine.record_handler_sample(HandlerSample(
            kind=_sample_kind(kind),
            implementation=implementation,
            node=self.node.id,
            pointers=pointers,
            latency=cost.latency,
            breakdown=cost.breakdown,
        ))
        obs = self.machine.obs
        if obs is not None and obs.on_handler:
            obs.handler(HandlerSpan(
                node=self.node.id, start=start,
                end=self.sw_busy_until, kind=_sample_kind(kind),
                implementation=implementation, pointers=pointers,
                latency=cost.latency, txn=txn,
            ))

        def complete() -> None:
            completion()
            if self.sw_busy_until <= self.sim.now:
                self._on_sw_idle()

        self.sim.at(self.sw_busy_until, complete)

    def _on_sw_idle(self) -> None:
        """The software context drained; resume pre-empted user work."""
        if self.state is ProcState.PREEMPTED:
            if self._compute_remaining > 0:
                self._resume_compute()
            else:
                self.state = ProcState.RUNNING
                self._invalidate_user_events()
                self._step()
        elif self.state is ProcState.WAIT_SW:
            self._invalidate_user_events()
            self._step()


_SAMPLE_KINDS = {
    TrapKind.READ_OVERFLOW: "read",
    TrapKind.WRITE_EXTENDED: "write",
    TrapKind.ACK_SOFTWARE: "ack",
    TrapKind.ACK_LAST: "last_ack",
    TrapKind.LOCAL_FAULT: "local",
    TrapKind.REMOTE_REQUEST: "remote",
}


def _sample_kind(kind: TrapKind) -> str:
    return _SAMPLE_KINDS[kind]
