"""Machine model: nodes, processor, heap, barrier, and the driver."""

from repro.machine.barrier import BarrierManager
from repro.machine.heap import SharedHeap
from repro.machine.machine import CodeRef, Machine
from repro.machine.node import Node
from repro.machine.params import WORD_BYTES, MachineParams
from repro.machine.processor import ProcState, Processor

__all__ = [
    "BarrierManager",
    "CodeRef",
    "Machine",
    "MachineParams",
    "Node",
    "ProcState",
    "Processor",
    "SharedHeap",
    "WORD_BYTES",
]
