"""The complete machine: NWO-style deterministic simulation driver.

:class:`Machine` wires together the event engine, the mesh fabric, the
nodes (processor + cache + directory + protocol software), the shared
heap, and the barrier tree, then drives a workload to completion and
returns a :class:`~repro.sim.stats.RunStats`.

Usage::

    from repro import Machine, MachineParams
    from repro.workloads import WorkerBenchmark

    machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB")
    stats = machine.run(WorkerBenchmark(worker_set_size=8))
    print(stats.run_cycles, stats.speedup)
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.common.errors import (
    ConfigurationError,
    DeadlockError,
    ProtocolSpecError,
)
from repro.core.software.costmodel import FLEXIBLE, OPTIMIZED
from repro.core.spec import AckMode, ProtocolSpec, spec_of
from repro.machine.barrier import BarrierManager
from repro.machine.heap import SharedHeap
from repro.machine.sync import LockManager, ReductionManager
from repro.machine.node import Node
from repro.machine.params import (
    MachineParams,
    resolve_dispatch,
    resolve_shards,
)
from repro.network.detailed import DetailedFabric
from repro.network.fabric import Fabric
from repro.network.topology import Mesh
from repro.sim.engine import Simulator
from repro.sim.stats import HandlerSample, RunStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import EventBus
    from repro.workloads.base import Workload

#: Cap on stored handler samples (counting continues past the cap).
MAX_HANDLER_SAMPLES = 250_000


@dataclasses.dataclass(frozen=True)
class CodeRef:
    """A region of instruction lines, replicated in every node's local
    memory at identical offsets (so it maps to the same cache sets on
    every node)."""

    name: str
    offsets: tuple  # block offsets within each node's segment
    cache_colors: tuple  # direct-mapped set index of each line
    blocks_per_node: int

    def blocks(self, node_id: int) -> List[int]:
        base = node_id * self.blocks_per_node
        return [base + off for off in self.offsets]


class Machine:
    """A simulated Alewife machine running one coherence protocol."""

    def __init__(
        self,
        params: Optional[MachineParams] = None,
        protocol: "ProtocolSpec | str" = "DirnH5SNB",
        software: str = FLEXIBLE,
        track_worker_sets: bool = False,
        collect_handler_samples: bool = True,
        invalidation_mode: str = "parallel",
        network_model: str = "queues",
        migratory_detection: bool = False,
        dispatch: Optional[str] = None,
        shards: "int | str | None" = None,
    ) -> None:
        self.params = params if params is not None else MachineParams()
        self.spec = spec_of(protocol)
        if software not in (FLEXIBLE, OPTIMIZED):
            raise ConfigurationError(f"unknown software variant {software!r}")
        if self.spec.full_map and software == OPTIMIZED:
            raise ProtocolSpecError("full-map runs no software at all")
        self.software_implementation = software
        if invalidation_mode not in ("parallel", "sequential", "dynamic"):
            raise ConfigurationError(
                f"unknown invalidation mode {invalidation_mode!r}"
            )
        #: how the extension software transmits invalidations (Section 7)
        self.invalidation_mode = invalidation_mode
        #: dynamic detection of migratory data (Section 7)
        self.migratory_detection = migratory_detection
        #: the livelock watchdog matters for the protocols that handle
        #: acknowledgements in software (Section 4.1)
        self.watchdog_enabled = (
            self.spec.needs_software
            and self.spec.ack_mode is AckMode.SOFTWARE
        )

        #: protocol-engine dispatch mode ("compiled" or "interpreted");
        #: an execution knob, not a machine parameter — both modes are
        #: cycle-identical, so it never enters experiment cache keys.
        #: Resolved before the nodes exist: each node's home engine
        #: reads it at construction.
        self.dispatch = resolve_dispatch(dispatch)

        #: shard count for parallel-in-time execution (repro.sim.shard);
        #: an execution knob exactly like dispatch — sharded runs are
        #: byte-identical to serial, so it never enters cache keys.
        #: Capped at one shard per node; "auto" means the CPU count.
        self.shards = min(resolve_shards(shards), self.params.n_nodes)

        #: constructor arguments, kept verbatim so shard workers can
        #: rebuild this machine in their own processes
        self._ctor_args = dict(
            params=self.params,
            protocol=self.spec,
            software=software,
            track_worker_sets=track_worker_sets,
            collect_handler_samples=collect_handler_samples,
            invalidation_mode=invalidation_mode,
            network_model=network_model,
            migratory_detection=migratory_detection,
            dispatch=self.dispatch,
        )

        self.sim = Simulator()
        self.mesh = Mesh(self.params.n_nodes)
        if network_model == "queues":
            # NWO's fidelity: endpoint queue contention only.
            self.fabric: Fabric = Fabric(self.sim, self.mesh,
                                         self.params.hop_latency)
        elif network_model == "links":
            # Beyond NWO: per-link switch contention too.
            self.fabric = DetailedFabric(self.sim, self.mesh,
                                         self.params.hop_latency)
        else:
            raise ConfigurationError(
                f"unknown network model {network_model!r}"
            )
        self.network_model = network_model
        self.heap = SharedHeap(self.params, self.params.code_region_blocks)
        self.barrier = BarrierManager(self)
        self.locks = LockManager(self)
        self.reductions = ReductionManager(self)
        self.nodes: List[Node] = [
            Node(node_id, self) for node_id in range(self.params.n_nodes)
        ]
        for node in self.nodes:
            self.fabric.attach(node.id, node.receive)

        # Code-region bookkeeping
        self._code_cursor = 0
        self._code_refs: Dict[str, CodeRef] = {}

        # Per-block protocol overrides (Section 3.1: Alewife supports
        # dynamic reconfiguration of coherence protocols block-by-block).
        self._block_specs: Dict[int, ProtocolSpec] = {}

        # Sequential-execution accounting (the Figure 4 denominator)
        self.seq_compute = 0
        self.seq_mem_ops = 0
        self.seq_ifetches = 0

        # Instrumentation
        self.track_worker_sets = track_worker_sets
        self._worker_sets: Dict[int, Set[int]] = {}
        self.collect_handler_samples = collect_handler_samples
        self.handler_samples: List[HandlerSample] = []
        self.handler_samples_dropped = 0

        #: optional access profiler (repro.analysis.profiling)
        self.profiler = None

        #: optional ``(shard_id, cycles)`` heartbeat callback for
        #: sharded runs (wired by the exec layer to fleet telemetry)
        self.shard_progress = None

        #: observability event bus (repro.obs); None until observe() is
        #: called, so probe sites are a single None-check by default
        self.obs: Optional["EventBus"] = None

        #: per-node coherence-transaction counters (tracing metadata;
        #: ids interleave modulo n_nodes so they stay unique while each
        #: node's sequence depends only on its own history — a shard
        #: allocates exactly the ids the serial engine would)
        self._txn_counters: List[int] = [0] * self.params.n_nodes

        self._done_at: Dict[int, int] = {}
        self._ran = False

    def next_txn(self, node_id: int) -> int:
        """Allocate ``node_id``'s next coherence-transaction id.

        Ids start at ``node_id + 1`` and stride by ``n_nodes``, so they
        are unique machine-wide without any cross-node coordination.
        """
        count = self._txn_counters[node_id]
        self._txn_counters[node_id] = count + 1
        return count * self.params.n_nodes + node_id + 1

    # ------------------------------------------------------------------
    # Code regions (instruction footprint of workload phases)
    # ------------------------------------------------------------------

    def register_code(self, name: str, lines: int = 2) -> CodeRef:
        """Reserve ``lines`` instruction blocks for a named code region.

        Regions are laid out identically in every node's local memory
        (code is replicated per node, as on Alewife), so a region's cache
        colours are the same machine-wide.
        """
        existing = self._code_refs.get(name)
        if existing is not None:
            return existing
        if lines <= 0:
            raise ConfigurationError("a code region needs at least one line")
        if self._code_cursor + lines > self.params.code_region_blocks:
            raise ConfigurationError("code region exhausted")
        offsets = tuple(range(self._code_cursor, self._code_cursor + lines))
        self._code_cursor += lines
        colors = tuple(self.params.cache_set_of_block(off) for off in offsets)
        ref = CodeRef(name=name, offsets=offsets, cache_colors=colors,
                      blocks_per_node=self.params.local_mem_blocks)
        self._code_refs[name] = ref
        return ref

    def is_code_block(self, block: int) -> bool:
        return (block % self.params.local_mem_blocks
                < self.params.code_region_blocks)

    def create_lock(self, home: int = 0) -> int:
        """Create a FIFO lock homed on ``home`` (Section 7's lock data
        type); workloads acquire it with a ``("lock", id)`` op."""
        return self.locks.create_lock(home)

    def create_reduction(self, combine) -> int:
        """Create a combining-tree global reduction; workloads use a
        ``("reduce", id, value)`` op and read ``reduction_result``."""
        return self.reductions.create_reduction(combine)

    def reduction_result(self, reduce_id: int):
        """Most recently completed global result of a reduction."""
        return self.reductions.reductions[reduce_id].result

    # ------------------------------------------------------------------
    # Per-block protocol configuration (Section 3.1 / Section 7)
    # ------------------------------------------------------------------

    def configure_block(self, addr: int,
                        protocol: "ProtocolSpec | str") -> None:
        """Select a different coherence protocol for one memory block.

        This is Alewife's block-by-block protocol reconfiguration, the
        mechanism behind the paper's "data specific" enhancement
        (Section 7): e.g. widely-shared read-only data can be switched
        to a broadcast protocol whose reads never trap.

        Restrictions mirror the hardware: the machine-wide protocol must
        be software-extended (the handlers must exist), the override
        cannot be the software-only directory (that is a different home
        controller), and a block must be configured before it is first
        referenced.
        """
        override = spec_of(protocol)
        if not self.spec.needs_software:
            raise ConfigurationError(
                "per-block protocols need the software-extended home "
                "controller; the full-map machine has no handlers"
            )
        if self.spec.is_software_only or override.is_software_only:
            raise ConfigurationError(
                "the software-only directory cannot be mixed per block"
            )
        block = addr >> self.params.block_shift
        home = self.params.home_of_block(block)
        if block in self.nodes[home].home.entries:
            raise ConfigurationError(
                f"block {block} was already referenced; configure blocks "
                f"before first use"
            )
        self._block_specs[block] = override

    def configure_range(self, addr: int, words: int,
                        protocol: "ProtocolSpec | str") -> None:
        """Configure every block overlapping ``[addr, addr + words)``."""
        first = addr >> self.params.block_shift
        last = (addr + max(words, 1) - 1) >> self.params.block_shift
        for block in range(first, last + 1):
            self.configure_block(block << self.params.block_shift, protocol)

    def protocol_for_block(self, block: int) -> ProtocolSpec:
        """The effective protocol spec governing ``block``."""
        return self._block_specs.get(block, self.spec)

    # ------------------------------------------------------------------
    # Instrumentation hooks
    # ------------------------------------------------------------------

    def observe(self) -> "EventBus":
        """Create (or return) this machine's observability event bus.

        Probe points in the engine, processors, fabric, and the software
        handler path emit typed events to subscribers on the returned
        bus (see :mod:`repro.obs`).  Observers read state only — they
        never schedule events — so attaching them changes no simulated
        cycle count; until the first subscriber appears, each probe site
        costs a single ``None`` check.
        """
        if self.obs is None:
            from repro.obs.events import EventBus

            self.obs = EventBus()
            self.fabric.obs = self.obs
            self.sim.probe = self.obs.advance
            # Compiled home engines run a probe-free handler while no
            # bus exists; swap them to the probe-on variant now.
            for node in self.nodes:
                node.home.obs_attached()
        return self.obs

    def note_grant(self, block: int, node: int,
                   write: bool = False) -> None:
        """A node received a copy of ``block`` (worker-set tracking and
        the access profiler of Section 7's profile/detect/optimize
        enhancement)."""
        if self.is_code_block(block):
            return
        if self.track_worker_sets:
            members = self._worker_sets.get(block)
            if members is None:
                members = set()
                self._worker_sets[block] = members
            members.add(node)
        if self.profiler is not None:
            self.profiler.record(block, node, write)

    def record_handler_sample(self, sample: HandlerSample) -> None:
        if not self.collect_handler_samples:
            return
        if len(self.handler_samples) >= MAX_HANDLER_SAMPLES:
            self.handler_samples_dropped += 1
            return
        self.handler_samples.append(sample)

    def note_processor_done(self, node_id: int, at: int) -> None:
        self._done_at[node_id] = at

    def worker_set_histogram(self) -> Counter:
        histogram: Counter = Counter()
        for members in self._worker_sets.values():
            histogram[len(members)] += 1
        return histogram

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------

    def run(self, workload: "Workload", max_cycles: Optional[int] = None,
            max_events: Optional[int] = None) -> RunStats:
        """Set up ``workload``, run every node's thread to completion,
        and return the aggregated statistics."""
        if self._ran:
            raise ConfigurationError(
                "a Machine instance runs one workload; build a fresh one"
            )
        self._ran = True
        # A workload whose thread op streams couple through Python
        # state (shard_safe=False) only replays correctly under the
        # serial interleaving; the serial engine is byte-identical by
        # definition, so fall through rather than error — sweeps mix
        # workloads and one serial-only application must not fail the
        # whole run.
        if self.shards > 1 and getattr(workload, "shard_safe", True):
            from repro.sim.shard import run_sharded, sharding_available

            self._check_shardable(max_cycles, max_events)
            if sharding_available():
                return run_sharded(self, workload, self.shards,
                                   progress=self.shard_progress)
            # Daemonic pool workers cannot fork shard processes; the
            # serial engine below is byte-identical, so fall through.
        workload.setup(self)
        for node in self.nodes:
            node.processor.start(workload.thread(self, node.id))

        self.sim.run(until=max_cycles, max_events=max_events,
                     idle_check=self._check_deadlock)
        unfinished = [n.id for n in self.nodes if not n.processor.done]
        if unfinished:
            raise DeadlockError(
                f"run ended at cycle {self.sim.now} with unfinished "
                f"processors {unfinished[:8]}"
            )
        return self._collect()

    def _check_shardable(self, max_cycles: Optional[int],
                         max_events: Optional[int]) -> None:
        """Reject configurations the sharded runtime cannot reproduce
        byte-identically (callers get a clear error, not a silently
        different run)."""
        if self.network_model != "queues":
            raise ConfigurationError(
                "sharded runs require network_model='queues': link "
                "reservations are global state (see repro.network."
                "detailed)"
            )
        if self.profiler is not None:
            raise ConfigurationError(
                "the access profiler accumulates in-process state; "
                "profile with --shards 1"
            )
        if max_cycles is not None or max_events is not None:
            raise ConfigurationError(
                "max_cycles/max_events cannot bound a sharded run; "
                "use --shards 1"
            )
        if ("send" in self.fabric.__dict__
                or "_schedule_arrival" in self.fabric.__dict__):
            raise ConfigurationError(
                "a wrapped fabric (protocol tracer) observes only this "
                "process; trace with --shards 1"
            )

    def _check_deadlock(self) -> None:
        stuck = [
            (node.id, node.processor.state.value)
            for node in self.nodes
            if not node.processor.done
        ]
        if stuck:
            raise DeadlockError(
                f"event queue drained at cycle {self.sim.now} with blocked "
                f"processors: {stuck[:8]}"
            )

    def _collect(self) -> RunStats:
        run_cycles = max(self._done_at.values()) if self._done_at else 0
        sequential = (
            self.seq_compute
            + (self.seq_mem_ops + self.seq_ifetches)
            * self.params.cache_hit_latency
        )
        histogram = (self.worker_set_histogram()
                     if self.track_worker_sets else None)
        return RunStats(
            run_cycles=run_cycles,
            n_nodes=self.params.n_nodes,
            per_node=[node.stats for node in self.nodes],
            handler_samples=self.handler_samples,
            sequential_cycles=sequential,
            worker_set_histogram=histogram,
        )
