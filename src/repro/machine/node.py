"""A processing node: processor + cache controller + home controller.

The node also plays the role of the CMMU's message dispatcher: incoming
fabric messages are routed to the cache side, the memory (home) side, or
the barrier tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import ProtocolStateError
from repro.core import messages as msg
from repro.core.cache_ctrl import CacheController
from repro.core.messages import ProtoPayload, message_size
from repro.core.protocol import HomeProtocolEngine, build_home_engine
from repro.machine.sync import LOCK_KINDS, REDUCE_KINDS
from repro.core.software.interface import CoherenceInterface
from repro.machine.processor import Processor
from repro.network.fabric import Message
from repro.sim.stats import NodeStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

_CACHE_SIDE = frozenset(
    {msg.RDATA, msg.WDATA, msg.BUSY, msg.INV, msg.FETCH_RD, msg.FETCH_INV}
)
_HOME_SIDE = frozenset(
    {msg.RREQ, msg.WREQ, msg.ACK, msg.FETCH_DATA, msg.EVICT_WB, msg.RELINQ}
)
_BARRIER = frozenset({msg.BAR_UP, msg.BAR_DOWN})

HomeController = HomeProtocolEngine


class Node:
    """One Alewife node."""

    def __init__(self, node_id: int, machine: "Machine") -> None:
        self.id = node_id
        self.machine = machine
        self.stats = NodeStats(node=node_id)
        self.processor = Processor(self)
        self.cache_ctrl = CacheController(self)
        spec = machine.spec
        self.interface: Optional[CoherenceInterface] = None
        if spec.needs_software:
            self.interface = CoherenceInterface(
                self, spec, machine.software_implementation
            )
        self.home: HomeController = build_home_engine(
            self, spec, self.interface
        )
        self.processor.watchdog_enabled = machine.watchdog_enabled
        #: flit size per message kind, precomputed from the (frozen)
        #: machine params so send_protocol skips the per-send
        #: message_size call.
        params = machine.params
        self._msg_flits = {
            kind: message_size(kind, params.header_flits,
                               params.data_flits)
            for kind in sorted(_CACHE_SIDE | _HOME_SIDE | _BARRIER
                               | LOCK_KINDS | REDUCE_KINDS)
        }
        #: Transaction id of the coherence message currently being
        #: dispatched (observability metadata; see `repro.obs.spans`).
        #: Set around cache-/home-side dispatch so any message sent
        #: synchronously in response inherits the causing transaction.
        self.current_txn: Optional[int] = None

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send_protocol(self, kind: str, dst: int, block: int,
                      requester: Optional[int] = None,
                      extra_delay: int = 0,
                      txn: Optional[int] = None) -> None:
        """Launch a protocol (or barrier) message into the fabric.

        ``txn`` tags the message with the transaction it serves; when
        omitted it defaults to the transaction whose message is being
        dispatched right now (``current_txn``), which covers every
        synchronous response path (grants, invalidations, acks, busy
        replies, fetches) without the protocol code having to thread it.
        """
        try:
            size = self._msg_flits[kind]
        except KeyError:  # a kind outside the precomputed vocabulary
            params = self.machine.params
            size = message_size(kind, params.header_flits,
                                params.data_flits)
        self.stats.messages_sent[kind] += 1
        if txn is None:
            txn = self.current_txn
        self.machine.fabric.send(
            Message(src=self.id, dst=dst, kind=kind, size_flits=size,
                    payload=ProtoPayload(block=block, requester=requester,
                                         txn=txn)),
            extra_delay=extra_delay,
        )

    def receive(self, message: Message) -> None:
        """Fabric delivery callback: route to the right component."""
        kind = message.kind
        if kind in _CACHE_SIDE:
            self.current_txn = message.payload.txn
            self.cache_ctrl.handle(message)
            self.current_txn = None
        elif kind in _HOME_SIDE:
            self.current_txn = message.payload.txn
            self.home.handle(message)
            self.current_txn = None
        elif kind in _BARRIER:
            self.machine.barrier.handle(message)
        elif kind in LOCK_KINDS:
            self.machine.locks.handle(message)
        elif kind in REDUCE_KINDS:
            self.machine.reductions.handle(message)
        else:
            raise ProtocolStateError(f"node {self.id} received {kind}")
