"""Machine configuration parameters.

The defaults describe an Alewife node as built (Section 3.1 of the paper):
a 33 MHz Sparcle processor, 64 Kbyte direct-mapped combined
instruction/data cache with 16-byte lines, 4 Mbytes of globally shared
memory per node, and a 2-D mesh interconnect.  Contention is modelled at
the network transmit/receive queues only, matching the stated fidelity of
NWO, the simulator the paper's results come from.
"""

from __future__ import annotations

import dataclasses
import math
import os

from repro.common.errors import ConfigurationError

#: Bytes per 32-bit word.  Addresses throughout the simulator count words.
WORD_BYTES = 4

#: Protocol-engine dispatch modes: ``compiled`` exec-compiles each
#: transition table into specialized per-(event, state) code at machine
#: construction (:mod:`repro.core.protocol.compile`); ``interpreted``
#: walks the ``(guard, action, row)`` tuples directly.  Both produce
#: byte-identical cycle counts (gated by the equivalence fixture), so
#: the mode is an *execution* knob like ``check_invariants`` — it is
#: deliberately NOT a :class:`MachineParams` field and never enters
#: experiment cache keys.
DISPATCH_MODES = ("compiled", "interpreted")
DEFAULT_DISPATCH = "compiled"

#: Environment override consulted when no explicit mode is given —
#: lets CI force ``REPRO_DISPATCH=interpreted`` across a whole job
#: without threading a flag through every entry point.
DISPATCH_ENV = "REPRO_DISPATCH"


def resolve_dispatch(value: "str | None" = None) -> str:
    """Resolve the protocol dispatch mode.

    Precedence: explicit ``value`` (CLI/constructor), then the
    ``REPRO_DISPATCH`` environment variable, then
    :data:`DEFAULT_DISPATCH`.
    """
    if value is None:
        value = os.environ.get(DISPATCH_ENV) or DEFAULT_DISPATCH
    if value not in DISPATCH_MODES:
        raise ConfigurationError(
            f"unknown dispatch mode {value!r}; expected one of "
            f"{', '.join(DISPATCH_MODES)}"
        )
    return value


#: Environment override for the shard count, mirroring
#: :data:`DISPATCH_ENV` — sharding is likewise an execution knob
#: (byte-identical results), never a :class:`MachineParams` field and
#: never part of experiment cache keys.
SHARDS_ENV = "REPRO_SHARDS"


def resolve_shards(value: "int | str | None" = None, *,
                   jobs: int = 1) -> int:
    """Resolve a ``--shards`` value to a concrete shard count.

    Precedence: explicit ``value``, then the ``REPRO_SHARDS``
    environment variable, then ``1`` (serial).  ``"auto"`` divides the
    CPU count by ``jobs`` so a sharded run inside a job pool never
    oversubscribes the machine; an explicit count is honoured verbatim
    when ``jobs == 1`` (more shards than cores is legal — the CI
    equivalence gate relies on it) but clamped to the fair share when
    competing with other pool workers.
    """
    if value is None:
        value = os.environ.get(SHARDS_ENV) or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    fair_share = max(1, (os.cpu_count() or 1) // jobs)
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return fair_share
        try:
            value = int(text)
        except ValueError:
            raise ConfigurationError(
                f"--shards expects a positive integer or 'auto', "
                f"got {text!r}"
            ) from None
    if value < 1:
        raise ConfigurationError(f"--shards must be >= 1, got {value}")
    if jobs > 1:
        return min(value, fair_share)
    return value


@dataclasses.dataclass(frozen=True)
class MachineParams:
    """Immutable description of the simulated machine.

    Parameters
    ----------
    n_nodes:
        Number of processing nodes; must be a square (2-D mesh) or 1.
    cache_bytes / block_bytes:
        Geometry of the direct-mapped combined I/D cache.
    victim_cache_entries / victim_cache_enabled:
        Jouppi-style victim cache used by Alewife to add associativity
        (Section 6, TSP case study).
    perfect_ifetch:
        Simulator option granting one-cycle instruction access without
        using the cache (used for Figure 3).
    mem_latency:
        Cycles for a DRAM block access at the home node.
    cache_hit_latency:
        Cycles for a load/store that hits in the cache.
    hop_latency:
        Cycles per mesh hop (switch transit; no switch-internal
        contention is modelled).
    header_flits / data_flits:
        Message sizes in flits; the transmit and receive queues serialise
        one flit per cycle, which is where contention appears.
    trap_dispatch_overhead:
        Cycles for Sparcle to flush its pipeline and reach the first trap
        instruction (the paper notes 3 cycles, excluded from Table 2).
    retry_backoff_base / retry_backoff_step:
        Deterministic backoff, in cycles, before a requester retries
        after receiving a BUSY reply.
    watchdog_threshold / watchdog_window:
        Livelock watchdog (Section 4.1): if user code makes no progress
        for ``watchdog_threshold`` cycles of handler activity, asynchronous
        protocol traps are deferred for ``watchdog_window`` cycles.
    local_mem_words:
        Words of globally-shared memory owned by each node (4 MB default).
    """

    n_nodes: int = 16
    cache_bytes: int = 64 * 1024
    block_bytes: int = 16
    victim_cache_entries: int = 6
    victim_cache_enabled: bool = False
    perfect_ifetch: bool = False
    mem_latency: int = 10
    cache_hit_latency: int = 1
    hop_latency: int = 1
    header_flits: int = 3
    data_flits: int = 8
    trap_dispatch_overhead: int = 3
    retry_backoff_base: int = 12
    retry_backoff_step: int = 6
    watchdog_threshold: int = 4000
    watchdog_window: int = 500
    local_mem_words: int = (4 * 1024 * 1024) // WORD_BYTES
    code_region_blocks: int = 512

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        side = int(math.isqrt(self.n_nodes))
        if side * side != self.n_nodes:
            raise ConfigurationError(
                f"n_nodes must be a perfect square for a 2-D mesh, "
                f"got {self.n_nodes}"
            )
        if self.block_bytes % WORD_BYTES:
            raise ConfigurationError("block_bytes must be a multiple of 4")
        if self.cache_bytes % self.block_bytes:
            raise ConfigurationError(
                "cache_bytes must be a multiple of block_bytes"
            )
        n_sets = self.cache_bytes // self.block_bytes
        if n_sets & (n_sets - 1):
            raise ConfigurationError("cache line count must be a power of 2")
        block_words = self.block_bytes // WORD_BYTES
        if block_words & (block_words - 1):
            raise ConfigurationError("block size in words must be a power of 2")
        local_blocks = self.local_mem_words // block_words
        if local_blocks & (local_blocks - 1):
            raise ConfigurationError(
                "local memory must hold a power-of-two number of blocks"
            )
        if self.code_region_blocks < 0 or self.code_region_blocks >= local_blocks:
            raise ConfigurationError("code region must fit in local memory")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def mesh_side(self) -> int:
        """Width (= height) of the square mesh."""
        return int(math.isqrt(self.n_nodes))

    @property
    def block_words(self) -> int:
        """Words per cache/memory block."""
        return self.block_bytes // WORD_BYTES

    @property
    def block_shift(self) -> int:
        """log2(words per block); ``addr >> block_shift`` is the block id."""
        return self.block_words.bit_length() - 1

    @property
    def cache_sets(self) -> int:
        """Number of lines in the direct-mapped cache."""
        return self.cache_bytes // self.block_bytes

    @property
    def local_mem_blocks(self) -> int:
        """Blocks of shared memory owned by each node."""
        return self.local_mem_words // self.block_words

    def home_of_block(self, block: int) -> int:
        """Home node of a memory block (segmented address space)."""
        return block // self.local_mem_blocks

    def home_of_addr(self, addr: int) -> int:
        """Home node of a word address."""
        return addr // self.local_mem_words

    def node_base_addr(self, node: int) -> int:
        """First word address of ``node``'s local memory segment."""
        return node * self.local_mem_words

    def cache_set_of_block(self, block: int) -> int:
        """Direct-mapped cache set index for a block id."""
        return block & (self.cache_sets - 1)

    def with_updates(self, **changes: object) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)
