"""The experiment-farm service: ``repro serve``.

A stdlib-only asyncio HTTP server that accepts experiment specs as
JSON, coalesces duplicate submissions against the result cache *and*
currently running jobs (every client of one key shares one execution),
fans work out to the persistent :class:`~repro.exec.pool.FarmExecutor`,
and exposes the fleet-telemetry plane live over HTTP: Server-Sent
Events at ``/events``, Prometheus text at ``/metrics``, per-job status
with ETA at ``/jobs/<key>``, and attribution artifacts as completed-job
payloads.

The hard invariant, inherited from the rest of the repository: every
result or artifact served over HTTP is byte-identical to what the CLI
writes for the same spec, at any ``--jobs``/``--shards`` setting.

- :mod:`repro.serve.http` — minimal HTTP/1.1 (keep-alive, chunked
  streaming) on raw asyncio;
- :mod:`repro.serve.specs` — strict JSON spec validation →
  :class:`~repro.exec.jobs.SimJob`;
- :mod:`repro.serve.app` — routes, job records, the SSE relay, and
  the embeddable :class:`~repro.serve.app.ServerThread`.
"""

from repro.serve.app import FarmServer, ServerThread
from repro.serve.http import HttpError, HttpServer, Request, Response
from repro.serve.specs import (
    SERVE_SCHEMA,
    SpecError,
    analyze_request,
    job_from_spec,
    workload_registry,
)

__all__ = [
    "FarmServer",
    "ServerThread",
    "HttpError",
    "HttpServer",
    "Request",
    "Response",
    "SERVE_SCHEMA",
    "SpecError",
    "analyze_request",
    "job_from_spec",
    "workload_registry",
]
