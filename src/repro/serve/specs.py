"""JSON experiment specs for the farm server.

The wire format is a small JSON object naming the experiment by the
same dimensions the CLI exposes.  ``POST /jobs`` takes the general
form::

    {"workload": "water", "protocol": "DirnH5SNB", "nodes": 64,
     "software": "flexible", "victim_cache": true,
     "workload_kwargs": {}}

and ``POST /analyze`` mirrors ``repro analyze`` exactly (same field
names, same defaults — both sides read
:data:`repro.analysis.reportgen.ANALYZE_DEFAULTS`), which is what makes
the server's analyze artifact byte-identical to the CLI's.

Specs are validated *strictly*: unknown fields are a 400, not silently
ignored — a typo like ``"node": 32`` must not run a 64-node default
experiment and cache it as if it were the requested one.  Validation
happens before anything is scheduled, so a bad spec never reaches the
farm, the cache, or the fleet log.
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from repro.analysis.experiments import APPLICATIONS
from repro.analysis.reportgen import ANALYZE_DEFAULTS, analyze_config
from repro.core.spec import ProtocolSpec
from repro.exec.jobs import SimJob, make_job
from repro.workloads.base import Workload
from repro.workloads.worker import WorkerBenchmark

#: Schema tag carried by every structured server response.
SERVE_SCHEMA = "repro-serve/1"

_INVALIDATION_MODES = ("parallel", "sequential", "dynamic")
_SOFTWARE_MODES = ("flexible", "optimized")

_JOB_FIELDS = (
    "workload", "workload_kwargs", "protocol", "nodes",
    "victim_cache", "perfect_ifetch", "software",
    "track_worker_sets", "attribution", "invalidation_mode",
)

_ANALYZE_FIELDS = tuple(sorted(ANALYZE_DEFAULTS))


class SpecError(ValueError):
    """A request spec that cannot describe a valid experiment."""


def workload_registry() -> "OrderedDict[str, Type[Workload]]":
    """Every workload the server accepts, by wire name.

    The six paper applications plus the synthetic ``worker`` benchmark
    (the workload ``repro analyze`` studies).
    """
    registry: "OrderedDict[str, Type[Workload]]" = OrderedDict(APPLICATIONS)
    registry["worker"] = WorkerBenchmark
    return registry


def _require(doc: Mapping[str, Any], allowed: Tuple[str, ...],
             what: str) -> None:
    unknown = [key for key in sorted(doc) if key not in allowed]
    if unknown:
        raise SpecError(
            f"unknown {what} field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(allowed)})")


def _int_field(doc: Mapping[str, Any], name: str, default: int,
               minimum: int = 1) -> int:
    value = doc.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise SpecError(f"{name} must be >= {minimum}, got {value}")
    return value


def _bool_field(doc: Mapping[str, Any], name: str, default: bool) -> bool:
    value = doc.get(name, default)
    if not isinstance(value, bool):
        raise SpecError(f"{name} must be a boolean, got {value!r}")
    return value


def _choice_field(doc: Mapping[str, Any], name: str, default: str,
                  choices: Tuple[str, ...]) -> str:
    value = doc.get(name, default)
    if value not in choices:
        raise SpecError(
            f"{name} must be one of {', '.join(choices)}, got {value!r}")
    return value


def _protocol_field(doc: Mapping[str, Any], default: str) -> str:
    value = doc.get("protocol", default)
    if not isinstance(value, str):
        raise SpecError(f"protocol must be a string, got {value!r}")
    try:
        ProtocolSpec.parse(value)
    except Exception as exc:  # noqa: BLE001 - any parse failure is a 400
        raise SpecError(str(exc))
    return value


def _kwargs_field(doc: Mapping[str, Any],
                  workload_cls: Type[Workload]) -> Dict[str, Any]:
    kwargs = doc.get("workload_kwargs", {})
    if not isinstance(kwargs, dict):
        raise SpecError(
            f"workload_kwargs must be an object, got {kwargs!r}")
    for key, value in sorted(kwargs.items()):
        if not isinstance(key, str):
            raise SpecError(f"workload_kwargs keys must be strings")
        if isinstance(value, (dict, list)):
            raise SpecError(
                f"workload_kwargs[{key!r}] must be a scalar, got {value!r}")
    # Bind against the constructor signature now so a typo fails the
    # request instead of a worker process minutes later.
    try:
        inspect.signature(workload_cls.__init__).bind(None, **kwargs)
    except TypeError as exc:
        raise SpecError(f"workload_kwargs: {exc}")
    return dict(kwargs)


def job_from_spec(doc: Any) -> SimJob:
    """Turn a ``POST /jobs`` body into a :class:`SimJob`.

    Raises :class:`SpecError` (mapped to HTTP 400) on anything that
    does not describe a valid experiment.
    """
    if not isinstance(doc, dict):
        raise SpecError("spec must be a JSON object")
    _require(doc, _JOB_FIELDS, "spec")
    registry = workload_registry()
    name = doc.get("workload")
    if name not in registry:
        known = ", ".join(registry)
        raise SpecError(f"unknown workload {name!r} (known: {known})")
    workload_cls = registry[name]
    return make_job(
        workload_cls,
        _kwargs_field(doc, workload_cls),
        protocol=_protocol_field(doc, "DirnH5SNB"),
        n_nodes=_int_field(doc, "nodes", 64),
        victim_cache=_bool_field(doc, "victim_cache", True),
        perfect_ifetch=_bool_field(doc, "perfect_ifetch", False),
        software=_choice_field(doc, "software", "flexible",
                               _SOFTWARE_MODES),
        track_worker_sets=_bool_field(doc, "track_worker_sets", False),
        attribution=_bool_field(doc, "attribution", False),
        invalidation_mode=_choice_field(doc, "invalidation_mode",
                                        "parallel", _INVALIDATION_MODES),
    )


def analyze_request(doc: Any) -> Tuple[SimJob, Dict[str, Any]]:
    """Turn a ``POST /analyze`` body into a job plus report config.

    Field names, defaults, and the returned config dict all match
    ``repro analyze`` (:data:`ANALYZE_DEFAULTS` is the single source of
    truth), so rendering the resulting stats through
    :func:`repro.analysis.reportgen.analyze_doc` reproduces the CLI
    artifact byte for byte.
    """
    if doc is None:
        doc = {}
    if not isinstance(doc, dict):
        raise SpecError("analyze spec must be a JSON object")
    _require(doc, _ANALYZE_FIELDS, "analyze spec")
    registry = workload_registry()
    app = _choice_field(doc, "app", str(ANALYZE_DEFAULTS["app"]),
                        tuple(registry))
    protocol = _protocol_field(doc, str(ANALYZE_DEFAULTS["protocol"]))
    nodes = _int_field(doc, "nodes", int(ANALYZE_DEFAULTS["nodes"]))
    size = _int_field(doc, "size", int(ANALYZE_DEFAULTS["size"]))
    iterations = _int_field(doc, "iterations",
                            int(ANALYZE_DEFAULTS["iterations"]))
    software = _choice_field(doc, "software",
                             str(ANALYZE_DEFAULTS["software"]),
                             _SOFTWARE_MODES)
    victim_cache = _bool_field(doc, "victim_cache",
                               bool(ANALYZE_DEFAULTS["victim_cache"]))
    perfect_ifetch = _bool_field(doc, "perfect_ifetch",
                                 bool(ANALYZE_DEFAULTS["perfect_ifetch"]))
    invalidation_mode = _choice_field(
        doc, "invalidation_mode", str(ANALYZE_DEFAULTS["invalidation_mode"]),
        _INVALIDATION_MODES)
    if app == "worker":
        kwargs: Dict[str, Any] = {"worker_set_size": size,
                                  "iterations": iterations}
    else:
        kwargs = {}
    job = make_job(
        registry[app],
        kwargs,
        protocol=protocol,
        n_nodes=nodes,
        victim_cache=victim_cache,
        perfect_ifetch=perfect_ifetch,
        software=software,
        attribution=True,
        invalidation_mode=invalidation_mode,
    )
    config = analyze_config(app, protocol, nodes, software,
                            invalidation_mode,
                            worker_set_size=size, iterations=iterations)
    return job, config
