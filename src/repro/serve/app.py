"""The experiment-farm server: HTTP routes over a :class:`FarmExecutor`.

``repro serve`` turns the deterministic runner into a long-lived
service.  Clients POST experiment specs; the server coalesces them
against the on-disk result cache, the in-process memo, and — the part
only a service needs — *currently executing* jobs, so two clients
submitting the same spec concurrently trigger exactly one simulation
and share its result.  Because the simulator is deterministic and all
artifact encodings are canonical, every byte the server returns is
identical to what the CLI writes for the same spec, at any worker
count (CI ``cmp``-gates this).

The observability plane rides the same :class:`FleetMonitor` the CLI
sweeps use:

- ``GET /events`` — Server-Sent Events relaying the live
  ``repro-fleetlog/1`` stream (the exact records the JSONL log gets);
- ``GET /metrics`` — Prometheus text exposition of the fleet summary;
- ``GET /jobs/<key>`` — per-job status with a cycles-based ETA;
- ``GET /jobs/<key>/artifact`` — the ``repro-attribution/1`` document
  of a completed attributed job, in canonical encoding.

Threading model: the asyncio loop owns all server state (records,
stream subscriber queues).  Fleet events arrive on executor threads
under the monitor lock and are bounced onto the loop with
``call_soon_threadsafe``; blocking farm calls run in the loop's
default thread pool.  Nothing here reads a wall clock — job timing
comes from the event envelope timestamps the telemetry layer already
stamps, so the determinism lint holds for this package too.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.analysis.reportgen import PRESETS, SECTIONS, analyze_doc
from repro.exec.jobs import SimJob, canonical_dict, job_key
from repro.exec.pool import FarmExecutor
from repro.obs.export import dumps_json
from repro.obs.fleet import FleetMonitor, prometheus_snapshot
from repro.serve.http import (
    HttpError,
    HttpServer,
    Request,
    Response,
    StreamResponse,
)
from repro.serve.specs import (
    SERVE_SCHEMA,
    SpecError,
    analyze_request,
    job_from_spec,
)

#: Wall seconds between SSE keep-alive comments on an idle stream.
STREAM_KEEPALIVE_S = 15.0

#: Events buffered per /events subscriber before old-drop.
STREAM_QUEUE_SIZE = 4096

_ENDPOINTS = {
    "GET /": "this index",
    "GET /healthz": "liveness probe",
    "GET /status": "farm counters + fleet summary + job table",
    "GET /metrics": "Prometheus text exposition",
    "GET /events": "live fleet event stream (Server-Sent Events)",
    "GET /jobs": "all submitted jobs",
    "POST /jobs": "submit an experiment spec (?wait=1 blocks)",
    "GET /jobs/<key>": "one job's status and result",
    "GET /jobs/<key>/artifact": "repro-attribution/1 artifact",
    "POST /analyze": "run + attribute (byte-identical to repro analyze)",
    "POST /experiments": "render EXPERIMENTS.md through the farm",
}


class _JobRecord:
    """Everything the server knows about one job key."""

    __slots__ = ("key", "spec", "future", "submissions", "sources",
                 "phase", "workload", "n_nodes", "started_t", "last_t",
                 "cycles", "finished_row", "error")

    def __init__(self, key: str) -> None:
        self.key = key
        self.spec: Optional[Dict[str, Any]] = None
        self.future = None
        self.submissions = 0
        self.sources: List[str] = []
        self.phase = "queued"  # event-derived; future wins when present
        self.workload: Optional[str] = None
        self.n_nodes: Optional[int] = None
        self.started_t: Optional[float] = None
        self.last_t: Optional[float] = None
        self.cycles = 0
        self.finished_row: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None


class FarmServer:
    """HTTP front-end binding a farm, a monitor, and a socket."""

    def __init__(self, farm: FarmExecutor, monitor: FleetMonitor,
                 host: str = "127.0.0.1", port: int = 0,
                 rate_hint: Optional[float] = None) -> None:
        self.farm = farm
        self.monitor = monitor
        self.rate_hint = rate_hint
        self._http = HttpServer(self.handle, host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._relay = None
        # Loop-thread-only state:
        self._records: Dict[str, _JobRecord] = {}
        self._order: List[str] = []
        self._streams: List[asyncio.Queue] = []
        #: (workload, n_nodes) -> last observed run_cycles, the ETA
        #: denominator for repeat experiments of the same family.
        self._expected_cycles: Dict[Tuple[str, int], int] = {}

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.host

    @property
    def port(self) -> int:
        return self._http.port

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._relay = self.monitor.subscribe(self._on_fleet_event)
        await self._http.start()

    async def close(self) -> None:
        if self._relay is not None:
            self.monitor.unsubscribe(self._relay)
            self._relay = None
        await self._http.close()
        for queue in list(self._streams):
            _queue_put(queue, None)  # wake streams so they can exit

    async def serve_forever(self) -> None:
        """Start and block until cancelled (the CLI entry point)."""
        await self.start()
        try:
            await asyncio.Event().wait()
        finally:
            await self.close()

    # -- fleet event ingestion ----------------------------------------

    def _on_fleet_event(self, doc: Dict[str, Any]) -> None:
        """Monitor subscriber: runs on farm threads, under the monitor
        lock — just bounce the event to the loop thread."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._ingest, doc)
        except RuntimeError:  # loop shut down mid-flight
            pass

    def _ingest(self, doc: Dict[str, Any]) -> None:
        kind = doc.get("event")
        key = doc.get("key")
        if isinstance(key, str):
            record = self._record_for(key)
            t = doc.get("t")
            record.last_t = t
            if kind == "job_started":
                record.phase = "running"
                record.started_t = t
                record.cycles = 0
                workload = doc.get("workload")
                n_nodes = doc.get("n_nodes")
                if isinstance(workload, str):
                    record.workload = workload
                if isinstance(n_nodes, int):
                    record.n_nodes = n_nodes
            elif kind == "job_progress":
                record.cycles = doc.get("cycles", record.cycles)
            elif kind == "job_finished":
                record.phase = "done"
                record.finished_row = {
                    "wall_s": doc.get("wall_s"),
                    "run_cycles": doc.get("run_cycles"),
                    "sim_cycles_per_sec": doc.get("sim_cycles_per_sec"),
                }
                run_cycles = doc.get("run_cycles")
                if record.workload is not None \
                        and record.n_nodes is not None \
                        and isinstance(run_cycles, int):
                    family = (record.workload, record.n_nodes)
                    self._expected_cycles[family] = run_cycles
            elif kind == "job_failed":
                record.phase = "failed"
                record.error = doc.get("error")
        for queue in list(self._streams):
            _queue_put(queue, doc)

    def _record_for(self, key: str) -> _JobRecord:
        record = self._records.get(key)
        if record is None:
            record = _JobRecord(key)
            self._records[key] = record
            self._order.append(key)
        return record

    # -- derived job state --------------------------------------------

    def _eta_s(self, record: _JobRecord) -> Optional[float]:
        """Remaining wall seconds for a running job, if estimable.

        Expected total cycles come from the last completed job of the
        same (workload, n_nodes) family; the rate is the job's own
        heartbeat-observed cycles/second, falling back to the BENCH
        worker-reference rate hint.  All timing reads event-envelope
        timestamps — the server never samples a clock.
        """
        expected = None
        if record.workload is not None and record.n_nodes is not None:
            expected = self._expected_cycles.get(
                (record.workload, record.n_nodes))
        if expected is None:
            return None
        remaining = max(0, expected - record.cycles)
        rate = None
        if record.cycles > 0 and record.started_t is not None \
                and record.last_t is not None \
                and record.last_t > record.started_t:
            rate = record.cycles / (record.last_t - record.started_t)
        if rate is None or rate <= 0:
            rate = self.rate_hint
        if rate is None or rate <= 0:
            return None
        return round(remaining / rate, 3)

    def _job_doc(self, record: _JobRecord,
                 with_result: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": SERVE_SCHEMA,
            "key": record.key,
            "submissions": record.submissions,
            "sources": list(record.sources),
            "location": f"/jobs/{record.key}",
        }
        if record.spec is not None:
            doc["spec"] = record.spec
        state = record.phase
        stats = None
        future = record.future
        if future is not None and future.done():
            error = (future.exception()
                     if not future.cancelled() else None)
            if future.cancelled():
                state, doc["error"] = "failed", "cancelled"
            elif error is not None:
                state, doc["error"] = "failed", f"{type(error).__name__}: {error}"
            else:
                state, stats = "done", future.result()
        elif state == "failed" and record.error is not None:
            doc["error"] = record.error
        if state == "running":
            doc["cycles"] = record.cycles
            doc["eta_s"] = self._eta_s(record)
        if state == "done" and record.finished_row is not None:
            doc["timing"] = dict(record.finished_row)
        doc["state"] = state
        if stats is not None and with_result:
            doc["result"] = {
                "run_cycles": stats.run_cycles,
                "n_nodes": stats.n_nodes,
                "speedup": round(stats.speedup, 4),
                "utilization": round(stats.processor_utilization, 4),
            }
            if stats.attribution is not None:
                # The completed-job payload carries the attribution
                # artifact itself, plus its canonical-bytes endpoint.
                doc["attribution"] = stats.attribution
                doc["artifact"] = f"/jobs/{record.key}/artifact"
        return doc

    # -- routing -------------------------------------------------------

    async def handle(self, request: Request):
        parts = [part for part in request.path.split("/") if part]
        if not parts:
            return _json({"schema": SERVE_SCHEMA, "endpoints": _ENDPOINTS})
        head = parts[0]
        if head == "healthz" and len(parts) == 1:
            _expect(request, "GET")
            return _json({"ok": True})
        if head == "status" and len(parts) == 1:
            _expect(request, "GET")
            return self._status()
        if head == "metrics" and len(parts) == 1:
            _expect(request, "GET")
            text = prometheus_snapshot(self.monitor.summary())
            return Response(text.encode("utf-8"),
                            content_type="text/plain; version=0.0.4")
        if head == "events" and len(parts) == 1:
            _expect(request, "GET")
            return StreamResponse(self._event_stream())
        if head == "jobs":
            return await self._jobs_route(request, parts)
        if head == "analyze" and len(parts) == 1:
            _expect(request, "POST")
            return await self._analyze(request)
        if head == "experiments" and len(parts) == 1:
            _expect(request, "POST")
            return await self._experiments(request)
        raise HttpError(404, f"no such endpoint: {request.path}")

    # -- endpoints -----------------------------------------------------

    def _status(self) -> Response:
        server: Dict[str, Any] = {"workers": self.farm.n_workers,
                                  "worker_pool": self.farm.worker_pool}
        server.update(self.farm.counters())
        return _json({
            "schema": SERVE_SCHEMA,
            "server": server,
            "summary": self.monitor.summary(),
            "jobs": [self._job_doc(self._records[key], with_result=False)
                     for key in self._order],
        })

    async def _jobs_route(self, request: Request, parts: List[str]):
        if len(parts) == 1:
            if request.method == "POST":
                return await self._submit(request)
            _expect(request, "GET")
            return _json({
                "schema": SERVE_SCHEMA,
                "jobs": [self._job_doc(self._records[key],
                                       with_result=False)
                         for key in self._order],
            })
        record = self._records.get(parts[1])
        if record is None:
            raise HttpError(404, f"unknown job key: {parts[1]}")
        if len(parts) == 2:
            _expect(request, "GET")
            return _json(self._job_doc(record))
        if len(parts) == 3 and parts[2] == "artifact":
            _expect(request, "GET")
            return self._artifact(record)
        raise HttpError(404, f"no such endpoint: {request.path}")

    async def _submit(self, request: Request) -> Response:
        try:
            job = job_from_spec(request.json())
        except SpecError as exc:
            raise HttpError(400, str(exc))
        submission = await self._farm_submit(job)
        record = self._record_for(submission.key)
        record.future = submission.future
        record.submissions += 1
        record.sources.append(submission.source)
        if record.spec is None:
            record.spec = canonical_dict(job)
        if request.flag("wait"):
            await _outcome(submission.future)
            return _json(self._job_doc(record))
        return _json(self._job_doc(record), status=202)

    def _artifact(self, record: _JobRecord) -> Response:
        future = record.future
        if future is None or not future.done():
            raise HttpError(409, f"job {record.key} has not finished")
        if future.cancelled() or future.exception() is not None:
            raise HttpError(409, f"job {record.key} failed; no artifact")
        stats = future.result()
        if stats.attribution is None:
            raise HttpError(
                404,
                f"job {record.key} carries no attribution artifact; "
                f'submit with {{"attribution": true}}')
        return Response(dumps_json(stats.attribution).encode("utf-8"))

    async def _analyze(self, request: Request) -> Response:
        try:
            job, config = analyze_request(request.json(default={}))
        except SpecError as exc:
            raise HttpError(400, str(exc))
        submission = await self._farm_submit(job)
        record = self._record_for(submission.key)
        record.future = submission.future
        record.submissions += 1
        record.sources.append(submission.source)
        if record.spec is None:
            record.spec = canonical_dict(job)
        stats = await _outcome(submission.future)
        doc = analyze_doc(stats.attribution, config,
                          stats.run_cycles, stats.speedup)
        return Response(dumps_json(doc).encode("utf-8"))

    async def _experiments(self, request: Request) -> Response:
        body = request.json(default={})
        if not isinstance(body, dict):
            raise HttpError(400, "experiments spec must be a JSON object")
        unknown = [key for key in sorted(body)
                   if key not in ("preset", "attribution")]
        if unknown:
            raise HttpError(
                400, f"unknown experiments field(s): {', '.join(unknown)}")
        preset = body.get("preset", "quick")
        if preset not in PRESETS:
            raise HttpError(
                400, f"unknown preset {preset!r}; "
                     f"choose from {', '.join(sorted(PRESETS))}")
        attribution = body.get("attribution", False)
        if not isinstance(attribution, bool):
            raise HttpError(400, "attribution must be a boolean")
        runner = _FarmRunnerView(self.farm, attribution)
        label_to_key = {label: key for key, label in SECTIONS}

        def _progress(line: str) -> None:
            section = label_to_key.get(line)
            if section is not None:
                self.monitor.section(section)

        from repro.analysis.reportgen import render_experiments_md

        loop = asyncio.get_running_loop()
        text = await loop.run_in_executor(
            None, lambda: render_experiments_md(
                runner=runner, preset=preset, progress=_progress))
        return Response(text.encode("utf-8"),
                        content_type="text/markdown; charset=utf-8")

    # -- the SSE plane -------------------------------------------------

    async def _event_stream(self) -> AsyncIterator[bytes]:
        queue: asyncio.Queue = asyncio.Queue(maxsize=STREAM_QUEUE_SIZE)
        self._streams.append(queue)
        try:
            yield b": repro-serve fleet event stream\n\n"
            yield _sse("summary", self.monitor.summary())
            while True:
                try:
                    doc = await asyncio.wait_for(
                        queue.get(), timeout=STREAM_KEEPALIVE_S)
                except asyncio.TimeoutError:
                    yield b": keep-alive\n\n"
                    continue
                if doc is None:  # server shutting down
                    return
                yield _sse(doc.get("event", "fleet"), doc,
                           event_id=doc.get("seq"))
        finally:
            try:
                self._streams.remove(queue)
            except ValueError:
                pass

    # -- helpers -------------------------------------------------------

    async def _farm_submit(self, job: SimJob):
        """Run the (locking, possibly disk-touching) submit off-loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.farm.submit, job)


class _FarmRunnerView:
    """JobRunner-shaped view of a farm for the experiment drivers."""

    def __init__(self, farm: FarmExecutor, attribution: bool) -> None:
        self._farm = farm
        self._attribution = attribution

    def run(self, plan):
        return self._farm.run(plan, attribution=self._attribution)


def _json(doc: Dict[str, Any], status: int = 200) -> Response:
    return Response(dumps_json(doc).encode("utf-8"), status=status)


def _sse(event: str, doc: Dict[str, Any],
         event_id: Optional[int] = None) -> bytes:
    data = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    lines.append(f"data: {data}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def _queue_put(queue: "asyncio.Queue", doc) -> None:
    """Non-blocking put; a full (stalled) subscriber drops oldest."""
    try:
        queue.put_nowait(doc)
    except asyncio.QueueFull:
        try:
            queue.get_nowait()
        except asyncio.QueueEmpty:
            pass
        try:
            queue.put_nowait(doc)
        except asyncio.QueueFull:
            pass


async def _outcome(future) -> Any:
    """Await a concurrent future; failures become clean HTTP errors."""
    try:
        return await asyncio.wrap_future(future)
    except Exception as exc:  # noqa: BLE001 - job failure, not a server bug
        raise HttpError(500, f"job failed: {type(exc).__name__}: {exc}")


class ServerThread:
    """Run a :class:`FarmServer` on a dedicated loop thread.

    The embedding story for tests and tools: start, read the bound
    port, talk HTTP from the calling thread, stop.  The server loop is
    private to the thread; stop() trips an event on it and joins.
    """

    def __init__(self, server: FarmServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"server failed to start: {self._failure}")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        loop, stop, thread = self._loop, self._stop, self._thread
        if loop is None or stop is None or thread is None:
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass
        thread.join(timeout)

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        finally:
            self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.close()


def _expect(request: Request, method: str) -> None:
    if request.method != method:
        raise HttpError(
            405, f"{request.path} supports {method}, not {request.method}")
