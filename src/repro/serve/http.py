"""Minimal asyncio HTTP/1.1 layer for ``repro serve``.

Stdlib only, by design: the repository's hard rule is that every
front-end — CLI, tools, and now the server — runs on a bare Python
install, so this module implements the small slice of HTTP/1.1 the
experiment farm needs instead of importing a web framework:

- request parsing (request line, headers, ``Content-Length`` bodies)
  with bounded header and body sizes;
- keep-alive: one connection serves many requests in order;
- fixed responses with ``Content-Length``; and
- **chunked streaming responses** for the live ``/events`` plane: an
  async byte iterator is relayed to the client as HTTP/1.1 chunks as
  fast as it yields, which is what carries Server-Sent Events.

The layer is application-agnostic: :class:`HttpServer` takes one async
``handler(request) -> Response | StreamResponse`` and does the rest.
Handler errors surface as :class:`HttpError` (clean status + message)
or are mapped to 500 without killing the connection loop.
"""

from __future__ import annotations

import asyncio
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import parse_qs, urlsplit

#: Request line + headers must fit in this many bytes.
MAX_HEADER_BYTES = 64 * 1024

#: Largest accepted request body (experiment specs are tiny).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Raise from a handler to answer with a clean error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    def __init__(self, method: str, target: str,
                 headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.target = target
        split = urlsplit(target)
        self.path = split.path or "/"
        self.query: Dict[str, List[str]] = parse_qs(split.query)
        self.headers = headers
        self.body = body

    def json(self, default: object = None) -> object:
        """The body parsed as JSON; 400 on garbage.

        An empty body returns ``default`` so optional-body endpoints
        (``POST /experiments``) accept a bare POST.
        """
        import json

        if not self.body:
            return default
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    def flag(self, name: str) -> bool:
        """True when query parameter ``name`` is present and truthy."""
        values = self.query.get(name)
        if not values:
            return False
        return values[-1].lower() not in ("", "0", "false", "no")


class Response:
    """A complete response: status, body, content type."""

    def __init__(self, body: bytes = b"", status: int = 200,
                 content_type: str = "application/json",
                 headers: Optional[List[Tuple[str, str]]] = None) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = list(headers or [])


class StreamResponse:
    """A chunked streaming response fed by an async byte iterator.

    The connection switches to ``Transfer-Encoding: chunked`` and
    relays every yielded buffer immediately (each is one chunk).  The
    stream ends when the iterator does or the client disconnects —
    either way the iterator is closed, so its ``finally`` blocks run
    (subscription cleanup relies on this).  Streamed connections do not
    keep-alive: the stream is the last response on the socket.
    """

    def __init__(self, source: AsyncIterator[bytes],
                 content_type: str = "text/event-stream") -> None:
        self.source = source
        self.content_type = content_type


Handler = Callable[[Request], Awaitable[Union[Response, StreamResponse]]]


def _head(status: int, content_type: str,
          extra: List[Tuple[str, str]]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}"]
    for name, value in extra:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; ``None`` on clean EOF."""
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"headers exceed {MAX_HEADER_BYTES} bytes")
    try:
        head = raw.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head")
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(method, target, headers, body)


class HttpServer:
    """One handler, one listening socket, many keep-alive connections."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as exc:
                    await self._write_error(writer, exc)
                    return
                if request is None:
                    return
                try:
                    response = await self.handler(request)
                except HttpError as exc:
                    await self._write_error(
                        writer, exc,
                        keep_alive=_wants_keep_alive(request))
                    if not _wants_keep_alive(request):
                        return
                    continue
                except Exception as exc:  # noqa: BLE001 - surface as 500
                    await self._write_error(
                        writer, HttpError(500, f"internal error: {exc}"))
                    return
                if isinstance(response, StreamResponse):
                    await self._write_stream(writer, response)
                    return
                await self._write_response(writer, response)
                if not _wants_keep_alive(request):
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: Response) -> None:
        extra = list(response.headers)
        extra.append(("Content-Length", str(len(response.body))))
        writer.write(_head(response.status, response.content_type, extra))
        writer.write(response.body)
        await writer.drain()

    async def _write_error(self, writer: asyncio.StreamWriter,
                           exc: HttpError,
                           keep_alive: bool = False) -> None:
        import json

        body = (json.dumps({"error": exc.message}, sort_keys=True)
                + "\n").encode("utf-8")
        extra: List[Tuple[str, str]] = [
            ("Content-Length", str(len(body)))]
        if not keep_alive:
            extra.append(("Connection", "close"))
        try:
            writer.write(_head(exc.status, "application/json", extra))
            writer.write(body)
            await writer.drain()
        except ConnectionError:
            pass

    async def _write_stream(self, writer: asyncio.StreamWriter,
                            response: StreamResponse) -> None:
        writer.write(_head(200, response.content_type, [
            ("Transfer-Encoding", "chunked"),
            ("Cache-Control", "no-store"),
            ("Connection", "close"),
        ]))
        source = response.source
        try:
            await writer.drain()
            async for chunk in source:
                if not chunk:
                    continue
                writer.write(b"%x\r\n" % len(chunk))
                writer.write(chunk)
                writer.write(b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            closer = getattr(source, "aclose", None)
            if closer is not None:
                try:
                    await closer()
                except Exception:  # noqa: BLE001 - cleanup only
                    pass


def _wants_keep_alive(request: Request) -> bool:
    return request.headers.get("connection", "").lower() != "close"
