"""Per-transaction span trees reconstructed from the event bus.

Flat probe events (:mod:`repro.obs.events`) answer *what happened*;
this module answers *why a particular access was slow*.  Every data
miss opens a coherence transaction (``Machine.next_txn``, assigned in
``Processor._begin_miss``), and the id rides every message the miss
causes (via ``ProtoPayload.txn``), every directory transition it fires,
every trap it posts, and every handler occupancy it schedules.  A
:class:`SpanCollector` groups those events back into one
:class:`TransactionTrace` per miss — the causal chain

    miss -> request message -> home transition [-> trap -> handler]
         [-> invalidation fan-out -> ack gather] -> data grant -> fill

— which :mod:`repro.obs.attribution` then decomposes cycle-by-cycle.

Determinism: transaction ids are allocated in simulation event order,
which is itself deterministic, so the same configuration produces the
same ids, the same traces, and byte-identical rendered output on every
run (and across ``--jobs`` settings of the experiment runner: ids are
per-:class:`~repro.machine.machine.Machine`, never shared between
processes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.events import (
    HandlerSpan,
    MessageSent,
    StallSpan,
    TransitionApplied,
    TrapPosted,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

__all__ = ["TransactionTrace", "SpanCollector", "format_trace"]


class TransactionTrace:
    """Everything one coherence transaction did, in emission order.

    ``stall`` is filled in when the requesting processor unblocks; a
    trace whose stall is still ``None`` belongs to a transaction that
    had not completed when the run ended (possible only for aborted
    runs — a finished workload has no outstanding misses).
    """

    __slots__ = ("txn", "stall", "messages", "handlers", "traps",
                 "transitions")

    def __init__(self, txn: int) -> None:
        self.txn = txn
        self.stall: Optional[StallSpan] = None
        self.messages: List[MessageSent] = []
        self.handlers: List[HandlerSpan] = []
        self.traps: List[TrapPosted] = []
        self.transitions: List[TransitionApplied] = []

    # Convenience accessors -------------------------------------------

    @property
    def node(self) -> Optional[int]:
        return self.stall.node if self.stall is not None else None

    @property
    def kind(self) -> Optional[str]:
        return self.stall.kind if self.stall is not None else None

    @property
    def latency(self) -> int:
        return self.stall.latency if self.stall is not None else 0

    @property
    def retries(self) -> int:
        """BUSY replies received (each one forced a retry)."""
        return sum(1 for m in self.messages if m.kind == "busy")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TransactionTrace(txn={self.txn}, kind={self.kind!r}, "
                f"latency={self.latency}, msgs={len(self.messages)}, "
                f"handlers={len(self.handlers)})")


class SpanCollector:
    """Subscribes to the bus and groups events by transaction id.

    Also keeps *every* stall span (tagged or not) in emission order, so
    downstream attribution can account for non-miss stalls — ifetch
    fills, lock/reduction waits, and software-context waits — which
    carry no transaction id.
    """

    def __init__(self) -> None:
        self._traces: Dict[int, TransactionTrace] = {}
        #: every StallSpan in emission order (misses and otherwise)
        self.stalls: List[StallSpan] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, machine: "Machine") -> "SpanCollector":
        """Create a collector subscribed to ``machine``'s bus."""
        self = cls()
        bus = machine.observe()
        bus.on_stall.append(self._on_stall)
        bus.on_handler.append(self._on_handler)
        bus.on_trap.append(self._on_trap)
        bus.on_message.append(self._on_message)
        bus.on_transition.append(self._on_transition)
        return self

    def _trace(self, txn: int) -> TransactionTrace:
        trace = self._traces.get(txn)
        if trace is None:
            trace = self._traces[txn] = TransactionTrace(txn)
        return trace

    def _on_stall(self, ev: StallSpan) -> None:
        self.stalls.append(ev)
        if ev.txn is not None:
            self._trace(ev.txn).stall = ev

    def _on_handler(self, ev: HandlerSpan) -> None:
        if ev.txn is not None:
            self._trace(ev.txn).handlers.append(ev)

    def _on_trap(self, ev: TrapPosted) -> None:
        if ev.txn is not None:
            self._trace(ev.txn).traps.append(ev)

    def _on_message(self, ev: MessageSent) -> None:
        if ev.txn is not None:
            self._trace(ev.txn).messages.append(ev)

    def _on_transition(self, ev: TransitionApplied) -> None:
        if ev.txn is not None:
            self._trace(ev.txn).transitions.append(ev)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def transactions(self) -> List[TransactionTrace]:
        """All traces, ordered by transaction id."""
        return [self._traces[txn] for txn in sorted(self._traces)]

    def trace(self, txn: int) -> Optional[TransactionTrace]:
        return self._traces.get(txn)

    def __len__(self) -> int:
        return len(self._traces)


def format_trace(trace: TransactionTrace) -> str:
    """Human-readable timeline of one transaction (debugging / docs).

    Events are listed by start time with per-line arrows; output is
    deterministic (pure function of the trace).
    """
    lines: List[str] = []
    stall = trace.stall
    if stall is not None:
        lines.append(
            f"txn {trace.txn}: node {stall.node} {stall.kind} miss "
            f"block {stall.block} [{stall.start}..{stall.end}) "
            f"= {stall.latency} cycles"
        )
    else:
        lines.append(f"txn {trace.txn}: (incomplete)")
    rows = []
    for m in trace.messages:
        rows.append((m.sent_at, 0,
                     f"  msg  {m.kind:<10} {m.src}->{m.dst} "
                     f"[{m.sent_at}..{m.delivered_at})"))
    for t in trace.transitions:
        rows.append((t.at, 1,
                     f"  dir  {t.event:<10} @home {t.node} "
                     f"{t.before}->{t.after} ({t.rule}) @{t.at}"))
    for p in trace.traps:
        rows.append((p.at, 2,
                     f"  trap {p.kind:<10} node {p.node} @{p.at} "
                     f"cost {p.cost}"))
    for h in trace.handlers:
        rows.append((h.start, 3,
                     f"  sw   {h.kind:<10} node {h.node} "
                     f"[{h.start}..{h.end}) {h.implementation}"))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    lines.extend(text for _, _, text in rows)
    return "\n".join(lines)
