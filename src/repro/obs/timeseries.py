"""Interval time-series: per-node counter snapshots every N cycles.

``RunStats`` tells you *how much* happened; it cannot tell you *when*.
TSP's thrashing phase, WORKER's livelock window, and barrier convoys
are all phase phenomena that disappear in end-of-run totals.  The
:class:`IntervalSampler` subscribes to the engine's ``advance`` probe
and, each time simulated time crosses an interval boundary, records the
delta of every node's counters since the previous boundary plus the
instantaneous transmit/receive queue backlog.

The sampler only *reads* state — it never schedules events — so the
simulation's event stream, and therefore every cycle count, is
identical with or without it (the determinism the paper's NWO
simulator is named for).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine

#: Default sampling interval in cycles.
DEFAULT_INTERVAL = 10_000

#: NodeStats integer fields captured as per-interval deltas.
_DELTA_FIELDS = (
    "user_cycles",
    "stall_cycles",
    "handler_cycles",
    "loads",
    "stores",
    "ifetches",
    "cache_hits",
    "cache_misses",
    "retries",
)


@dataclasses.dataclass
class IntervalRow:
    """Counter deltas over ``[start, end)`` plus queue depths at ``end``.

    Each entry of ``per_node`` maps a counter name to that node's delta
    over the interval; ``traps`` and ``messages`` are the summed deltas
    of the per-kind counters.  ``tx_backlog``/``rx_backlog`` are the
    cycles of work queued at each node's fabric endpoints when the
    boundary was crossed.
    """

    start: int
    end: int
    per_node: List[Dict[str, int]]
    tx_backlog: List[int]
    rx_backlog: List[int]

    def total(self, field: str) -> int:
        return sum(node[field] for node in self.per_node)

    @property
    def cycles(self) -> int:
        return self.end - self.start

    @property
    def utilization(self) -> float:
        """Fraction of the interval's processor-cycles running user
        code (machine-wide)."""
        capacity = self.cycles * len(self.per_node)
        return self.total("user_cycles") / capacity if capacity else 0.0

    @property
    def miss_rate(self) -> float:
        hits = self.total("cache_hits")
        misses = self.total("cache_misses")
        return misses / (hits + misses) if hits + misses else 0.0

    @property
    def traps_per_kcycle(self) -> float:
        return self.total("traps") / self.cycles * 1000 if self.cycles \
            else 0.0


class IntervalSampler:
    """Snapshots per-node counters every ``every`` cycles.

    Usage::

        sampler = IntervalSampler.attach(machine, every=10_000)
        stats = machine.run(workload)
        sampler.finish(stats.run_cycles)
        for row in sampler.rows:
            print(row.start, row.utilization)

    Rows are recorded when simulated time first *crosses* a boundary
    (the engine's clock only moves when events fire), so a row's
    counters are read at the first event at or after ``row.end``; for
    the event densities the simulator produces this skew is a few
    cycles at most.
    """

    def __init__(self, machine: "Machine",
                 every: int = DEFAULT_INTERVAL) -> None:
        if every <= 0:
            raise ValueError(f"sampling interval must be positive: {every}")
        self.machine = machine
        self.every = every
        self.rows: List[IntervalRow] = []
        self._next = every
        self._prev = [self._snapshot_node(i)
                      for i in range(machine.params.n_nodes)]
        self._finished = False

    @classmethod
    def attach(cls, machine: "Machine",
               every: int = DEFAULT_INTERVAL) -> "IntervalSampler":
        sampler = cls(machine, every)
        machine.observe().on_advance.append(sampler._on_advance)
        return sampler

    # ------------------------------------------------------------------
    # Probe plumbing
    # ------------------------------------------------------------------

    def _on_advance(self, now: int) -> None:
        while now >= self._next:
            self._record(self._next - self.every, self._next)
            self._next += self.every

    def finish(self, run_cycles: int) -> None:
        """Record the final partial interval (idempotent)."""
        if self._finished:
            return
        self._finished = True
        start = self._next - self.every
        if run_cycles > start:
            self._record(start, run_cycles)

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------

    def _snapshot_node(self, node_id: int) -> Dict[str, int]:
        stats = self.machine.nodes[node_id].stats
        snap = {field: getattr(stats, field) for field in _DELTA_FIELDS}
        snap["traps"] = sum(stats.traps.values())
        snap["messages"] = sum(stats.messages_sent.values())
        return snap

    def _record(self, start: int, end: int) -> None:
        fabric = self.machine.fabric
        now = self.machine.sim.now
        per_node: List[Dict[str, int]] = []
        tx: List[int] = []
        rx: List[int] = []
        for node_id in range(self.machine.params.n_nodes):
            snap = self._snapshot_node(node_id)
            prev = self._prev[node_id]
            per_node.append({k: snap[k] - prev[k] for k in snap})
            self._prev[node_id] = snap
            tx.append(fabric.tx_backlog(node_id, now))
            rx.append(fabric.rx_backlog(node_id, now))
        self.rows.append(IntervalRow(start=start, end=end,
                                     per_node=per_node,
                                     tx_backlog=tx, rx_backlog=rx))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def summary(self) -> List[Dict[str, object]]:
        """Machine-wide per-interval digest (JSON-friendly)."""
        out: List[Dict[str, object]] = []
        for row in self.rows:
            out.append({
                "start": row.start,
                "end": row.end,
                "utilization": round(row.utilization, 4),
                "miss_rate": round(row.miss_rate, 4),
                "traps": row.total("traps"),
                "messages": row.total("messages"),
                "retries": row.total("retries"),
                "stall_cycles": row.total("stall_cycles"),
                "handler_cycles": row.total("handler_cycles"),
                "max_tx_backlog": max(row.tx_backlog, default=0),
                "max_rx_backlog": max(row.rx_backlog, default=0),
            })
        return out
