"""Typed probe events and the low-overhead event bus.

Design constraints, in order:

1. **Zero perturbation.**  Probes only *read* simulation state; no
   subscriber may schedule events or mutate counters.  Cycle counts are
   identical with and without observers attached (a regression test
   enforces this).
2. **Zero cost when idle.**  A machine starts with ``machine.obs is
   None`` and every probe site is a single attribute load plus a
   ``None`` check.  Even with a bus attached, a site first checks its
   channel's subscriber list and only *then* constructs the event
   object, so unobserved channels stay allocation-free.

Probe points
------------

========== ===================================== ==========================
channel    fired from                            event type
========== ===================================== ==========================
advance    ``sim/engine.py`` run loop            ``int`` (new cycle time)
user       ``machine/processor.py`` `_consume`   :class:`UserSpan`
stall      processor stall completion            :class:`StallSpan`
handler    ``Processor.post_trap``               :class:`HandlerSpan`
trap       ``core/software/interface.py``        :class:`TrapPosted`
message    ``network/fabric.py`` ``send``        :class:`MessageSent`
transition ``core/protocol/engine.py`` dispatch  :class:`TransitionApplied`
========== ===================================== ==========================
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional


@dataclasses.dataclass(frozen=True)
class UserSpan:
    """A contiguous interval of user-code execution on one node."""

    node: int
    start: int
    end: int


@dataclasses.dataclass(frozen=True)
class StallSpan:
    """One processor stall, from issue to completion.

    ``kind`` is ``"read"``/``"write"`` for data misses (end-to-end
    remote-access latency, retries included), ``"ifetch"`` for local
    instruction fills, ``"lock"``/``"reduce"`` for synchronisation, and
    ``"sw_wait"`` for user code waiting on the busy software context.

    ``txn`` is the machine-wide transaction id assigned when a data
    miss is issued; every message, trap, handler span, and directory
    transition caused by that miss carries the same id, so the full
    causal chain can be stitched back together (`repro.obs.spans`).
    Non-miss stalls (``ifetch``/``lock``/``reduce``/``sw_wait``) have
    ``txn is None``.
    """

    node: int
    start: int
    end: int
    kind: str
    block: Optional[int] = None
    txn: Optional[int] = None

    @property
    def latency(self) -> int:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class HandlerSpan:
    """One software-context handler occupancy interval."""

    node: int
    start: int
    end: int
    kind: str  # "read" | "write" | "ack" | "last_ack" | "local" | "remote"
    implementation: str
    pointers: int
    latency: int  # handler cost excluding trap-dispatch overhead
    txn: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class TrapPosted:
    """A protocol trap requested through the flexible interface."""

    node: int
    kind: str  # TrapKind value
    at: int
    cost: int
    pointers: int
    txn: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class MessageSent:
    """One fabric message with its computed delivery time."""

    src: int
    dst: int
    kind: str
    size_flits: int
    sent_at: int
    delivered_at: int
    block: Optional[int] = None
    txn: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class TransitionApplied:
    """One fired rule of the table-driven home protocol engine.

    Directory states are carried as their string values (e.g.
    ``"read_only"``) so observers stay decoupled from the core's enum;
    ``before``/``after`` are ``None`` when the event matched with no
    directory entry (e.g. an acknowledgement for a pure home-copy
    flush).  ``rule`` is the fired action's name, ``next_label`` the
    table row's declared post-state claim, and ``busy`` whether the
    entry was mid-transaction (transient state or queued software
    handler) when the event arrived.
    """

    node: int
    at: int
    event: str
    src: int
    block: int
    before: Optional[str]
    after: Optional[str]
    rule: str
    next_label: Optional[str]
    busy: bool
    txn: Optional[int] = None


class EventBus:
    """Fan-out of probe events to subscribers, one list per channel.

    Usage::

        bus = machine.observe()
        bus.on_handler.append(lambda ev: ...)

    Subscriber callbacks run synchronously inside the probe site; they
    must not schedule simulation events or mutate machine state.
    """

    __slots__ = ("on_advance", "on_user", "on_stall", "on_handler",
                 "on_trap", "on_message", "on_transition")

    CHANNELS = ("advance", "user", "stall", "handler", "trap", "message",
                "transition")

    def __init__(self) -> None:
        self.on_advance: List[Callable[[int], None]] = []
        self.on_user: List[Callable[[UserSpan], None]] = []
        self.on_stall: List[Callable[[StallSpan], None]] = []
        self.on_handler: List[Callable[[HandlerSpan], None]] = []
        self.on_trap: List[Callable[[TrapPosted], None]] = []
        self.on_message: List[Callable[[MessageSent], None]] = []
        self.on_transition: List[Callable[[TransitionApplied], None]] = []

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------

    def subscribe(self, channel: str, fn: Callable) -> Callable:
        """Add ``fn`` to ``channel``; returns ``fn`` for chaining."""
        self._channel(channel).append(fn)
        return fn

    def unsubscribe(self, channel: str, fn: Callable) -> None:
        """Remove ``fn`` from ``channel`` (no-op if absent)."""
        subs = self._channel(channel)
        if fn in subs:
            subs.remove(fn)

    def _channel(self, channel: str) -> List[Callable]:
        if channel not in self.CHANNELS:
            raise ValueError(
                f"unknown channel {channel!r}; one of {self.CHANNELS}"
            )
        return getattr(self, "on_" + channel)

    @property
    def idle(self) -> bool:
        """True when no channel has a subscriber."""
        return not any(getattr(self, "on_" + c) for c in self.CHANNELS)

    # ------------------------------------------------------------------
    # Emission (called from probe sites; sites pre-check the lists)
    # ------------------------------------------------------------------

    def advance(self, time: int) -> None:
        for fn in self.on_advance:
            fn(time)

    def user(self, ev: UserSpan) -> None:
        for fn in self.on_user:
            fn(ev)

    def stall(self, ev: StallSpan) -> None:
        for fn in self.on_stall:
            fn(ev)

    def handler(self, ev: HandlerSpan) -> None:
        for fn in self.on_handler:
            fn(ev)

    def trap(self, ev: TrapPosted) -> None:
        for fn in self.on_trap:
            fn(ev)

    def message(self, ev: MessageSent) -> None:
        for fn in self.on_message:
            fn(ev)

    def transition(self, ev: TransitionApplied) -> None:
        for fn in self.on_transition:
            fn(ev)
