"""Unified observability layer.

The paper's entire evaluation is telemetry — cycle accounting of
software handlers (Tables 1–2), counter aggregates (Figures 2–6), and
NWO's role as a deterministic debugging environment.  This package
provides the machinery to *watch* a run without perturbing it:

- :mod:`repro.obs.events` — a zero-cost-when-idle event bus with typed
  probe points fired from the engine, the processor, the fabric, and
  the software handler path;
- :mod:`repro.obs.timeseries` — an interval sampler snapshotting
  per-node counters every N cycles (phase behaviour inside a run);
- :mod:`repro.obs.hist` — exact integer histograms with p50/p90/p99
  queries over handler and end-to-end remote-access latencies;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and a deterministic metrics dump;
- :mod:`repro.obs.spans` — per-transaction span trees: every data miss
  carries a deterministic transaction id through messages, traps,
  handlers, and directory transitions;
- :mod:`repro.obs.attribution` — exact critical-path cycle accounting:
  every stall cycle lands in one named bucket, and the bucket totals
  sum cycle-for-cycle to the run's stall count;
- :mod:`repro.obs.fleet` — cross-process telemetry for the experiment
  runner: workers stream job lifecycle events over a multiprocessing
  queue, the parent aggregates a live sweep status, appends a
  ``repro-fleetlog/1`` JSONL run log, and snapshots Prometheus text —
  all side-channel only (results and cache keys are byte-identical
  with telemetry on or off).

Observers subscribe to a :class:`~repro.obs.events.EventBus` obtained
from :meth:`Machine.observe() <repro.machine.machine.Machine.observe>`;
probe sites are inert (a single ``None`` check) until a bus exists, and
observers never schedule simulation events, so attaching any of them
changes no simulated cycle count.
"""

from repro.obs.events import (
    EventBus,
    HandlerSpan,
    MessageSent,
    StallSpan,
    TransitionApplied,
    TrapPosted,
    UserSpan,
)
from repro.obs.hist import Histogram, HistogramSet, LatencyRecorder
from repro.obs.timeseries import IntervalRow, IntervalSampler
from repro.obs.export import (
    TraceCollector,
    chrome_trace,
    dumps_json,
    metrics_dict,
    write_json,
)
from repro.obs.spans import SpanCollector, TransactionTrace, format_trace
from repro.obs.attribution import (
    ATTRIBUTION_SCHEMA,
    BUCKETS,
    AttributionReport,
    attribute_stall,
    attribution_dict,
)
from repro.obs.fleet import (
    FLEETLOG_SCHEMA,
    FleetLogWriter,
    FleetMonitor,
    FleetTelemetry,
    ProgressPrinter,
    RunProgress,
    format_fleet_summary,
    load_eta_hints,
    load_rate_hint,
    prometheus_snapshot,
    read_fleet_log,
    replay_fleet_log,
    summarize_fleet_log,
    validate_event,
)

__all__ = [
    "EventBus",
    "HandlerSpan",
    "MessageSent",
    "StallSpan",
    "TransitionApplied",
    "TrapPosted",
    "UserSpan",
    "Histogram",
    "HistogramSet",
    "LatencyRecorder",
    "IntervalRow",
    "IntervalSampler",
    "TraceCollector",
    "chrome_trace",
    "dumps_json",
    "metrics_dict",
    "write_json",
    "SpanCollector",
    "TransactionTrace",
    "format_trace",
    "ATTRIBUTION_SCHEMA",
    "BUCKETS",
    "AttributionReport",
    "attribute_stall",
    "attribution_dict",
    "FLEETLOG_SCHEMA",
    "FleetLogWriter",
    "FleetMonitor",
    "FleetTelemetry",
    "ProgressPrinter",
    "RunProgress",
    "format_fleet_summary",
    "load_eta_hints",
    "load_rate_hint",
    "prometheus_snapshot",
    "read_fleet_log",
    "replay_fleet_log",
    "summarize_fleet_log",
    "validate_event",
]
