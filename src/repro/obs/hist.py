"""Latency histograms with percentile queries.

The paper reports handler latencies as means and medians (Tables 1–2);
tail behaviour — the p99 handler occupancy that actually determines
WORKER's livelock sensitivity — was invisible.  :class:`Histogram`
keeps exact integer-valued counts (latencies here are small bounded
integers, so the distinct-value footprint is tiny compared to sample
count) and answers any percentile exactly and deterministically.

:class:`LatencyRecorder` is the standard observer: it subscribes to the
``handler`` and ``stall`` channels of a machine's event bus and keys
histograms by handler kind and by stall kind, replacing the mean-only
``RunStats.mean_handler_latency`` view with a full distribution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.obs.events import HandlerSpan, StallSpan

#: Percentiles reported by default summaries.
DEFAULT_PERCENTILES = (50, 90, 99)


class Histogram:
    """Exact histogram over non-negative integer values."""

    __slots__ = ("_counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def add(self, value: int, weight: int = 1) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self._counts[value] = self._counts.get(value, 0) + weight
        self.count += weight
        self.total += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        for value, weight in other._counts.items():
            self.add(value, weight)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Smallest recorded value v such that at least ``p`` percent of
        samples are <= v.  Exact, not interpolated: the returned value
        was actually observed."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile {p} outside (0, 100]")
        if self.count == 0:
            return 0
        rank = max(1, -(-self.count * p // 100))  # ceil without floats
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return self.max if self.max is not None else 0  # pragma: no cover

    def percentiles(
        self, ps: Iterable[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, int]:
        return {f"p{p:g}": self.percentile(p) for p in ps}

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted ``(value, count)`` pairs (for export)."""
        return sorted(self._counts.items())

    def summary(self) -> Dict[str, object]:
        """Deterministic JSON-friendly digest."""
        out: Dict[str, object] = {
            "count": self.count,
            "mean": round(self.mean, 3),
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
        }
        out.update(self.percentiles())
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, mean={self.mean:.1f}, "
                f"p50={self.percentile(50)}, p99={self.percentile(99)})")


class HistogramSet:
    """A family of histograms keyed by name (handler kind, stall kind)."""

    def __init__(self) -> None:
        self._hists: Dict[str, Histogram] = {}

    def record(self, key: str, value: int) -> None:
        hist = self._hists.get(key)
        if hist is None:
            hist = Histogram()
            self._hists[key] = hist
        hist.add(value)

    def __getitem__(self, key: str) -> Histogram:
        return self._hists[key]

    def __contains__(self, key: str) -> bool:
        return key in self._hists

    def __len__(self) -> int:
        return len(self._hists)

    def keys(self) -> List[str]:
        return sorted(self._hists)

    def items(self) -> List[Tuple[str, Histogram]]:
        return sorted(self._hists.items())

    def summary(self) -> Dict[str, Dict[str, object]]:
        return {key: hist.summary() for key, hist in self.items()}


class LatencyRecorder:
    """Histogram observer for handler and end-to-end access latencies.

    Usage::

        recorder = LatencyRecorder.attach(machine)
        machine.run(workload)
        recorder.handlers["read"].percentile(99)
        recorder.stalls["write"].percentile(50)
    """

    def __init__(self) -> None:
        #: handler-cost latency per handler kind ("read", "ack", ...)
        self.handlers = HistogramSet()
        #: end-to-end stall latency per stall kind ("read", "write",
        #: "ifetch", "lock", "reduce", "sw_wait")
        self.stalls = HistogramSet()

    @classmethod
    def attach(cls, machine: "Machine") -> "LatencyRecorder":
        recorder = cls()
        bus = machine.observe()
        bus.on_handler.append(recorder._on_handler)
        bus.on_stall.append(recorder._on_stall)
        return recorder

    def _on_handler(self, ev: "HandlerSpan") -> None:
        self.handlers.record(ev.kind, ev.latency)

    def _on_stall(self, ev: "StallSpan") -> None:
        self.stalls.record(ev.kind, ev.end - ev.start)

    def summary(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        return {
            "handlers": self.handlers.summary(),
            "stalls": self.stalls.summary(),
        }
