"""Fleet telemetry: cross-process observability for the experiment runner.

PRs 1 and 5 made the *simulated machine* observable; this module makes
the *fleet that runs it* observable.  A sweep under
:class:`~repro.exec.pool.JobRunner` is a small distributed system —
worker processes, a result cache, a plan with dedup — and until now it
was a black box: a 13-second figure-5 run emitted nothing until it
returned.

The design splits cleanly along the process boundary:

- **Workers emit.**  :class:`FleetTelemetry` is the worker-side handle:
  ``job_started`` / ``job_progress`` (a heartbeat every N *simulated*
  cycles, driven by the obs event bus's ``advance`` probe) /
  ``job_finished`` (wall time, sim-cycles/sec, peak RSS) /
  ``job_failed``.  In a pool, events travel over a ``multiprocessing``
  manager queue; serially, they are delivered in-process.  Emission is
  fire-and-forget: a broken queue is swallowed, never raised into the
  simulation.
- **The parent aggregates.**  :class:`FleetMonitor` consumes events
  from any number of workers plus the runner's own plan/cache events,
  maintains a live sweep status (completed/running/queued jobs,
  aggregate sim throughput, cache hit rate, ETA from the per-driver
  timings in ``BENCH_experiments.json``), renders the opt-in
  ``--progress`` line, appends every event to an append-only JSONL run
  log (one ``repro-fleetlog/1`` event per line), and snapshots the
  whole status in Prometheus text exposition format.
- **Logs replay.**  :func:`read_fleet_log` parses and validates a log;
  :func:`summarize_fleet_log` replays it through a fresh monitor, so
  ``repro status sweep.jsonl`` summarizes a finished (or crashed) run
  from the log alone.

The hard invariant, inherited from the rest of ``repro.obs`` and
CI-gated: **telemetry is a side channel.**  Result dicts, cache keys,
attribution artifacts, and the rendered report are byte-identical with
telemetry on or off, at any ``--jobs`` value.  Telemetry may read wall
clocks and RSS precisely *because* nothing it produces feeds back into
a deterministic artifact; every such call site carries a reasoned
``# repro: allow-nondet(...)`` for the determinism linter.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Optional,
    Sequence,
    TYPE_CHECKING,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.sim.stats import RunStats

#: Schema tag of the JSONL run log; bump when event shapes change.
FLEETLOG_SCHEMA = "repro-fleetlog/1"

#: Default heartbeat interval in *simulated* cycles between
#: ``job_progress`` events.  ~100k cycles is a few heartbeats per
#: second at the engine's measured throughput.
DEFAULT_HEARTBEAT = 100_000

#: Default location of the per-driver timing hints used for ETAs.
DEFAULT_ETA_HINTS = "BENCH_experiments.json"

#: Required fields per event type (beyond the ``event``/``t``
#: envelope).  This *is* the repro-fleetlog/1 schema; the log's first
#: line is a ``fleet_log`` header naming it.
EVENT_FIELDS: Dict[str, Sequence[str]] = {
    "fleet_log": ("schema",),
    "sweep_started": ("jobs",),
    "section_started": ("section",),
    "plan_enqueued": ("planned", "unique", "pending"),
    "job_queued": ("key",),
    "memo_hit": ("key",),
    "cache_hit": ("key",),
    "cache_miss": ("key",),
    "cache_put": ("key",),
    "job_started": ("key", "pid"),
    # job_progress may additionally carry a "shard" field when the job
    # runs under the sharded engine (repro.sim.shard): one heartbeat
    # stream per shard, keyed by shard id.  Optional extra fields are
    # schema-legal (the schema is append-only).
    "job_progress": ("key", "pid", "cycles"),
    "job_finished": ("key", "pid", "wall_s", "run_cycles",
                     "sim_cycles_per_sec"),
    "job_failed": ("key", "pid", "error"),
    "sweep_finished": ("wall_s", "jobs_executed"),
}


def _now() -> float:
    """Wall-clock timestamp for event envelopes."""
    return time.time()  # repro: allow-nondet(telemetry timestamps are wall-clock by definition; the fleet log is a side channel that never reaches results, reports, or cache keys)


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB, or ``None``."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    kb = usage.ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - not CI's platform
        kb //= 1024
    return int(kb)


def event(event_type: str, **fields: Any) -> Dict[str, Any]:
    """Build one fleet-log event: type + wall timestamp + ``fields``."""
    doc: Dict[str, Any] = {"event": event_type, "t": _now()}
    doc.update(fields)
    return doc


def validate_event(doc: Any) -> Dict[str, Any]:
    """Check ``doc`` against the repro-fleetlog/1 schema.

    Returns the event unchanged; raises :class:`ValueError` with a
    pinpointed message otherwise.  Unknown extra fields are allowed
    (the schema is append-only); unknown event *types* are not.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"event must be an object, got {type(doc).__name__}")
    kind = doc.get("event")
    if kind not in EVENT_FIELDS:
        raise ValueError(f"unknown event type {kind!r}")
    if not isinstance(doc.get("t"), (int, float)):
        raise ValueError(f"{kind}: missing numeric timestamp 't'")
    if "seq" in doc and (not isinstance(doc["seq"], int) or doc["seq"] < 0):
        raise ValueError(f"{kind}: 'seq' must be a non-negative integer")
    for field in EVENT_FIELDS[kind]:
        if field not in doc:
            raise ValueError(f"{kind}: missing required field {field!r}")
    if kind == "fleet_log" and doc["schema"] != FLEETLOG_SCHEMA:
        raise ValueError(f"unsupported fleet-log schema {doc['schema']!r} "
                         f"(expected {FLEETLOG_SCHEMA})")
    return doc


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class FleetTelemetry:
    """Worker-side event emitter.

    ``send`` delivers one event dict — directly into a
    :meth:`FleetMonitor.handle` when running in-process, or
    ``queue.put`` when the worker lives in a pool process.  Every send
    is wrapped: telemetry must never raise into the simulation it
    observes, so a full or torn-down queue silently drops events.
    """

    def __init__(self, send: Callable[[Dict[str, Any]], None],
                 heartbeat_every: int = DEFAULT_HEARTBEAT) -> None:
        self._send = send
        self.heartbeat_every = max(1, int(heartbeat_every))
        self._job_t0: Dict[str, float] = {}

    def emit(self, event_type: str, **fields: Any) -> None:
        try:
            self._send(event(event_type, pid=os.getpid(), **fields))
        except Exception:  # noqa: BLE001 - side channel, never propagate
            pass

    # -- job lifecycle -------------------------------------------------

    def job_started(self, key: str, **fields: Any) -> None:
        self._job_t0[key] = time.perf_counter()  # repro: allow-nondet(wall-clock job timing is telemetry only; it is never mixed into simulation results)
        self.emit("job_started", key=key, **fields)

    def job_finished(self, key: str, run_cycles: int) -> None:
        t0 = self._job_t0.pop(key, None)
        wall = 0.0
        if t0 is not None:
            wall = time.perf_counter() - t0  # repro: allow-nondet(wall-clock job timing is telemetry only; it is never mixed into simulation results)
        rate = run_cycles / wall if wall > 0 else 0.0
        self.emit("job_finished", key=key, wall_s=round(wall, 6),
                  run_cycles=run_cycles,
                  sim_cycles_per_sec=round(rate, 1),
                  peak_rss_kb=_peak_rss_kb())

    def job_failed(self, key: str, error: BaseException) -> None:
        self._job_t0.pop(key, None)
        self.emit("job_failed", key=key,
                  error=f"{type(error).__name__}: {error}")

    # -- in-run heartbeat ----------------------------------------------

    def watch(self, machine: "Machine", key: str) -> None:
        """Subscribe a sim-cycle heartbeat to ``machine``'s event bus.

        Fires a ``job_progress`` event each time simulated time crosses
        a ``heartbeat_every`` boundary.  The subscriber only reads the
        clock value the engine hands it — like every observer it
        schedules nothing, so cycle counts are unchanged (the standard
        ``repro.obs`` zero-perturbation contract).
        """
        every = self.heartbeat_every
        last = [0]

        def _tick(now_cycles: int) -> None:
            if now_cycles - last[0] >= every:
                last[0] = now_cycles - (now_cycles % every)
                self.emit("job_progress", key=key, cycles=now_cycles)

        machine.observe().on_advance.append(_tick)

    def watch_shards(self, machine: "Machine", key: str) -> None:
        """Wire per-shard heartbeats for a sharded run.

        The sharded engine cannot drive ``on_advance`` subscribers (no
        global clock ticks in one process), so the window coordinator
        calls ``machine.shard_progress(shard_id, cycles)`` instead;
        this throttles each shard's stream to ``heartbeat_every``
        simulated cycles and emits ``job_progress`` events carrying the
        shard id.
        """
        every = self.heartbeat_every
        last: Dict[int, int] = {}

        def _tick(shard: int, now_cycles: int) -> None:
            if now_cycles - last.get(shard, 0) >= every:
                last[shard] = now_cycles - (now_cycles % every)
                self.emit("job_progress", key=key, cycles=now_cycles,
                          shard=shard)

        machine.shard_progress = _tick


# ----------------------------------------------------------------------
# The JSONL run log
# ----------------------------------------------------------------------

class FleetLogWriter:
    """Append-only JSONL sink: one event per line, header line first.

    Each event is serialized to a single buffer (record plus trailing
    newline) and appended with one ``os.write`` on an ``O_APPEND``
    descriptor.  POSIX makes such appends atomic with respect to both
    concurrent appenders and readers, so a live tailer (``repro status
    --follow``, the ``repro serve`` event stream) never observes a torn
    record, and two writers sharing a path interleave whole lines.  The
    descriptor is unbuffered, so every event is durable on return — no
    separate flush step exists to tear.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd: Optional[int] = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self.write(event("fleet_log", schema=FLEETLOG_SCHEMA))

    def write(self, doc: Dict[str, Any]) -> None:
        if self._fd is None:
            return
        data = (json.dumps(doc, sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")
        os.write(self._fd, data)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def read_fleet_log(path: str,
                   tolerate_partial: bool = False) -> List[Dict[str, Any]]:
    """Parse and validate a fleet log; returns its events in order.

    Raises :class:`ValueError` on a malformed line, an invalid event,
    or a missing/mismatched ``fleet_log`` header.

    With ``tolerate_partial=True`` a truncated *final* line is dropped
    instead of raising, so a log can be read while a writer is still
    appending to it (live tail).  :class:`FleetLogWriter` emits each
    record and its newline in one atomic append, so a final line that
    fails to parse or lacks its newline is a record still in flight —
    never silently-lost data.  Corruption anywhere else still raises.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    complete = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    last = len(lines) - 1
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        is_final = index == last
        if tolerate_partial and is_final and not complete:
            break
        try:
            doc = json.loads(line)
        except ValueError:
            if tolerate_partial and is_final:
                break
            raise ValueError(
                f"{path}:{index + 1}: not valid JSON") from None
        try:
            events.append(validate_event(doc))
        except ValueError as exc:
            if tolerate_partial and is_final:
                break
            raise ValueError(f"{path}:{index + 1}: {exc}") from None
    if not events or events[0]["event"] != "fleet_log":
        raise ValueError(f"{path}: missing fleet_log header line")
    return events


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class FleetMonitor:
    """Aggregates fleet events into a live sweep status.

    One monitor serves a whole sweep: the runner feeds it plan/cache
    events, workers feed it job lifecycle events (relayed from the pool
    queue by the runner's drain thread), and the CLI feeds it section
    markers.  :meth:`handle` is thread-safe.

    Parameters
    ----------
    log_path:
        Append every event (with a monotone ``seq``) to this JSONL
        file; ``None`` disables logging.
    on_line:
        Progress sink: called with the rendered status line whenever it
        changes (heartbeat updates are throttled to ``min_interval``
        wall seconds; lifecycle events always flush).
    sections:
        Planned section keys in run order (e.g. the driver names of
        ``repro experiments``), for the ETA estimate.
    eta_hints:
        ``{section: seconds}`` expected wall time per section, e.g.
        from :func:`load_eta_hints`.
    """

    def __init__(self, log_path: Optional[str] = None,
                 on_line: Optional[Callable[[str], None]] = None,
                 sections: Optional[Sequence[str]] = None,
                 eta_hints: Optional[Dict[str, float]] = None) -> None:
        self._log = FleetLogWriter(log_path) if log_path else None
        self._on_line = on_line
        self._lock = threading.Lock()
        self._seq = 0
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        self.events_handled = 0

        self.workers: Optional[int] = None
        self.planned = 0
        self.unique = 0
        self.queued = 0
        self.completed = 0
        self.failed = 0
        self.running: Dict[str, int] = {}  # key -> latest heartbeat cycles
        #: key -> {shard id -> latest heartbeat cycles} for jobs running
        #: under the sharded engine (heartbeats carrying a "shard" field)
        self.running_shards: Dict[str, Dict[int, int]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_puts = 0
        self.memo_hits = 0
        self.sim_cycles_done = 0
        self.peak_rss_kb: Optional[int] = None
        self.job_rows: List[Dict[str, Any]] = []
        self.sections_seen: List[str] = []
        self.finished: Optional[Dict[str, Any]] = None

        self._pending_sections: List[str] = list(sections or [])
        self._eta_hints = dict(eta_hints) if eta_hints else None
        self._current_section: Optional[str] = None
        self._section_t0: Optional[float] = None
        self._t_first: Optional[float] = None
        self._t_last: Optional[float] = None
        self._last_line = ""
        self._last_flush = 0.0
        self.min_interval = 0.5

    # -- convenience emitters (parent-originated events) ---------------

    def start(self, jobs: int, **fields: Any) -> None:
        """Record the start of a sweep (``sweep_started``)."""
        self.handle(event("sweep_started", jobs=jobs, **fields))

    def section(self, key: str) -> None:
        """Record entry into a named sweep section."""
        self.handle(event("section_started", section=key))

    def finish(self, jobs_executed: Optional[int] = None) -> None:
        """Record ``sweep_finished`` and close the log."""
        wall = 0.0
        if self._t_first is not None and self._t_last is not None:
            wall = max(0.0, self._t_last - self._t_first)
        self.handle(event(
            "sweep_finished",
            wall_s=round(wall, 6),
            jobs_executed=(self.completed if jobs_executed is None
                           else jobs_executed),
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_puts=self.cache_puts,
            sim_cycles=self.sim_cycles_done,
        ))
        self.close()

    def close(self) -> None:
        if self._log is not None:
            self._log.close()

    # -- subscribers ----------------------------------------------------

    def subscribe(
        self, callback: Callable[[Dict[str, Any]], None],
    ) -> Callable[[Dict[str, Any]], None]:
        """Fan every ingested event out to ``callback``.

        Callbacks receive the sequenced event dict (``seq`` assigned),
        after aggregation, in ingestion order — the same stream the
        JSONL log records.  They run on whichever thread called
        :meth:`handle` while the monitor lock is held, so they must be
        quick, must not block, and must not re-enter the monitor; hand
        the event off to a queue for anything heavier (the ``repro
        serve`` SSE stream does exactly that).  A raising subscriber is
        dropped from the stream, never the sweep.  Returns ``callback``
        so the result can be kept for :meth:`unsubscribe`.
        """
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(
        self, callback: Callable[[Dict[str, Any]], None],
    ) -> None:
        """Stop delivering events to ``callback`` (no-op if unknown)."""
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    # -- ingestion ------------------------------------------------------

    def handle(self, doc: Dict[str, Any]) -> None:
        """Ingest one event: validate, sequence, log, aggregate."""
        with self._lock:
            validate_event(doc)
            doc = dict(doc)
            doc["seq"] = self._seq
            self._seq += 1
            self.events_handled += 1
            if self._log is not None:
                self._log.write(doc)
            self._apply(doc)
            self._maybe_render(doc["event"])
            if self._subscribers:
                broken: List[Callable[[Dict[str, Any]], None]] = []
                for callback in list(self._subscribers):
                    try:
                        callback(doc)
                    except Exception:  # noqa: BLE001 - side channel
                        broken.append(callback)
                for callback in broken:
                    try:
                        self._subscribers.remove(callback)
                    except ValueError:
                        pass

    def _apply(self, doc: Dict[str, Any]) -> None:
        kind = doc["event"]
        t = doc["t"]
        if self._t_first is None:
            self._t_first = t
        self._t_last = t
        if kind == "sweep_started":
            self.workers = doc["jobs"]
        elif kind == "section_started":
            section = doc["section"]
            self.sections_seen.append(section)
            if section in self._pending_sections:
                self._pending_sections.remove(section)
            self._section_t0 = t
            self._current_section = section
        elif kind == "plan_enqueued":
            self.planned += doc["planned"]
            self.unique += doc["unique"]
            self.queued += doc["pending"]
        elif kind == "memo_hit":
            self.memo_hits += 1
        elif kind == "cache_hit":
            self.cache_hits += 1
        elif kind == "cache_miss":
            self.cache_misses += 1
        elif kind == "cache_put":
            self.cache_puts += 1
        elif kind == "job_started":
            self.running.setdefault(doc["key"], 0)
        elif kind == "job_progress":
            self.running[doc["key"]] = doc["cycles"]
            shard = doc.get("shard")
            if shard is not None:
                per_shard = self.running_shards.setdefault(doc["key"], {})
                per_shard[shard] = doc["cycles"]
        elif kind == "job_finished":
            self.running.pop(doc["key"], None)
            self.running_shards.pop(doc["key"], None)
            self.completed += 1
            self.queued = max(0, self.queued - 1)
            self.sim_cycles_done += doc["run_cycles"]
            rss = doc.get("peak_rss_kb")
            if rss is not None:
                self.peak_rss_kb = max(self.peak_rss_kb or 0, rss)
            self.job_rows.append({
                "key": doc["key"],
                "wall_s": doc["wall_s"],
                "run_cycles": doc["run_cycles"],
                "sim_cycles_per_sec": doc["sim_cycles_per_sec"],
                "peak_rss_kb": rss,
            })
        elif kind == "job_failed":
            self.running.pop(doc["key"], None)
            self.running_shards.pop(doc["key"], None)
            self.failed += 1
            self.queued = max(0, self.queued - 1)
        elif kind == "sweep_finished":
            self.finished = doc

    # -- derived status -------------------------------------------------

    def elapsed_s(self) -> float:
        """Wall seconds spanned by the events seen so far."""
        if self._t_first is None or self._t_last is None:
            return 0.0
        return max(0.0, self._t_last - self._t_first)

    def throughput(self) -> float:
        """Aggregate simulated cycles per wall second, fleet-wide."""
        elapsed = self.elapsed_s()
        cycles = self.sim_cycles_done + sum(self.running.values())
        return cycles / elapsed if elapsed > 0 else 0.0

    def cache_hit_rate(self) -> Optional[float]:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall time from the BENCH per-section hints."""
        if self._eta_hints is None:
            return None
        remaining = sum(self._eta_hints.get(s, 0.0)
                        for s in self._pending_sections)
        if self._current_section is not None \
                and self._section_t0 is not None \
                and self._t_last is not None:
            hint = self._eta_hints.get(self._current_section, 0.0)
            remaining += max(0.0, hint - (self._t_last - self._section_t0))
        return remaining

    def summary(self) -> Dict[str, Any]:
        """The whole status as one plain dict (see ``repro status``)."""
        return {
            "schema": FLEETLOG_SCHEMA,
            "events": self.events_handled,
            "workers": self.workers,
            "planned": self.planned,
            "unique": self.unique,
            "queued": self.queued,
            "running": len(self.running),
            "completed": self.completed,
            "failed": self.failed,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "puts": self.cache_puts,
                "memo_hits": self.memo_hits,
                "hit_rate": self.cache_hit_rate(),
            },
            "sim_cycles": self.sim_cycles_done,
            "shards": {
                key: [per_shard[s] for s in sorted(per_shard)]
                for key, per_shard in sorted(self.running_shards.items())
            },
            "wall_s": round(self.elapsed_s(), 6),
            "eta_s": (round(self.eta_seconds(), 3)
                      if self.eta_seconds() is not None
                      and self.finished is None else None),
            "sim_cycles_per_sec": round(self.throughput(), 1),
            "peak_rss_kb": self.peak_rss_kb,
            "sections": list(self.sections_seen),
            "jobs": sorted(self.job_rows,
                           key=lambda row: (-row["wall_s"], row["key"])),
        }

    # -- progress line --------------------------------------------------

    def render_progress(self) -> str:
        """One status line: jobs, throughput, cache, ETA."""
        parts = []
        if self._current_section is not None:
            parts.append(f"[{self._current_section}]")
        total = self.completed + self.failed + self.queued \
            + len(self.running)
        parts.append(f"{self.completed}/{total} jobs")
        if self.running:
            parts.append(f"{len(self.running)} running")
        for per_shard in self.running_shards.values():
            # Sharded jobs advance in near-lockstep windows, so the
            # spread is tiny; show each shard's simulated clock.
            cycles = "/".join(_fmt_rate(per_shard[s])
                              for s in sorted(per_shard))
            parts.append(f"shards {cycles} cyc")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        rate = self.throughput()
        if rate:
            parts.append(f"{_fmt_rate(rate)} cyc/s")
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            parts.append(f"cache {self.cache_hits}/{lookups}")
        eta = self.eta_seconds()
        if eta is not None and self.finished is None:
            parts.append(f"ETA ~{eta:.0f}s")
        return "  ".join(parts)

    def _maybe_render(self, event_type: str) -> None:
        if self._on_line is None:
            return
        line = self.render_progress()
        if line == self._last_line:
            return
        if event_type == "job_progress":
            now = time.monotonic()  # repro: allow-nondet(heartbeat render throttling is a display concern; the progress line is never part of a deterministic artifact)
            if now - self._last_flush < self.min_interval:
                return
            self._last_flush = now
        self._last_line = line
        try:
            self._on_line(line)
        except Exception:  # noqa: BLE001 - display must not kill the sweep
            pass


def _fmt_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.0f}k"
    return f"{rate:.0f}"


class ProgressPrinter:
    """Progress sink that rewrites one terminal line (or appends).

    On a TTY the line is redrawn in place with ``\\r``; otherwise each
    update is its own line (CI logs stay readable).  Always writes to
    ``stream`` (default stderr) so stdout artifacts stay clean.
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._width = 0

    def __call__(self, line: str) -> None:
        if self._tty:
            pad = max(0, self._width - len(line))
            self.stream.write("\r" + line + " " * pad)
            self._width = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def done(self) -> None:
        """Terminate the rewritten line before normal output resumes."""
        if self._tty and self._width:
            self.stream.write("\n")
            self.stream.flush()


# ----------------------------------------------------------------------
# Log replay, summaries, exports
# ----------------------------------------------------------------------

def replay_fleet_log(events: Sequence[Dict[str, Any]]) -> FleetMonitor:
    """Replay logged ``events`` through a fresh monitor and return it.

    Elapsed time comes from the event timestamps, so replaying a log is
    itself deterministic given the log.  The returned monitor exposes
    the full live API — :meth:`FleetMonitor.summary`,
    :meth:`FleetMonitor.render_progress` — which is how ``repro status
    --follow`` re-renders the progress line of a sweep it is only
    watching through the log file.
    """
    monitor = FleetMonitor()
    for doc in events:
        if doc.get("event") == "fleet_log":
            continue
        doc = dict(doc)
        doc.pop("seq", None)
        monitor.handle(doc)
    return monitor


def summarize_fleet_log(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Replay ``events`` through a fresh monitor; returns its summary."""
    return replay_fleet_log(events).summary()


def format_fleet_summary(summary: Dict[str, Any],
                         max_jobs: int = 15) -> str:
    """Human-readable rendering of a summary (``repro status``)."""
    lines: List[str] = []
    workers = summary.get("workers")
    lines.append(
        f"jobs: {summary['completed']} completed"
        + (f", {summary['failed']} failed" if summary["failed"] else "")
        + (f", {summary['running']} running" if summary["running"] else "")
        + (f", {summary['queued']} queued" if summary["queued"] else "")
        + f" of {summary['planned']} planned"
        + f" ({summary['unique']} unique)"
        + (f", {workers} worker{'s' if workers != 1 else ''}"
           if workers else ""))
    cache = summary["cache"]
    rate = cache["hit_rate"]
    lines.append(
        f"cache: {cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['puts']} puts, {cache['memo_hits']} memo hits"
        + (f" ({rate:.1%} hit rate)" if rate is not None else ""))
    lines.append(
        f"throughput: {summary['sim_cycles']:,} sim cycles in "
        f"{summary['wall_s']:.2f}s wall "
        f"({_fmt_rate(summary['sim_cycles_per_sec'])} cyc/s aggregate)")
    if summary.get("peak_rss_kb") is not None:
        lines.append(f"peak RSS: {summary['peak_rss_kb']:,} KiB")
    if summary["sections"]:
        lines.append("sections: " + ", ".join(summary["sections"]))
    jobs = summary["jobs"]
    if jobs:
        lines.append("slowest jobs:")
        for row in jobs[:max_jobs]:
            lines.append(
                f"  {row['wall_s']:>8.3f}s  "
                f"{row['run_cycles']:>12,} cyc  "
                f"{_fmt_rate(row['sim_cycles_per_sec']):>7} cyc/s  "
                f"{row['key']}")
        if len(jobs) > max_jobs:
            lines.append(f"  ... and {len(jobs) - max_jobs} more")
    return "\n".join(lines)


#: (metric suffix, summary path, help text, prometheus type)
_PROM_METRICS = (
    ("jobs_planned", ("planned",),
     "Jobs submitted to the runner, duplicates included", "gauge"),
    ("jobs_queued", ("queued",),
     "Unique jobs waiting to execute", "gauge"),
    ("jobs_running", ("running",),
     "Jobs currently executing", "gauge"),
    ("jobs_completed_total", ("completed",),
     "Jobs finished successfully", "counter"),
    ("jobs_failed_total", ("failed",),
     "Jobs that raised", "counter"),
    ("cache_hits_total", ("cache", "hits"),
     "On-disk result cache hits", "counter"),
    ("cache_misses_total", ("cache", "misses"),
     "On-disk result cache misses", "counter"),
    ("cache_puts_total", ("cache", "puts"),
     "Results written to the on-disk cache", "counter"),
    ("sim_cycles_total", ("sim_cycles",),
     "Simulated cycles completed by finished jobs", "counter"),
    ("sim_cycles_per_second", ("sim_cycles_per_sec",),
     "Aggregate fleet throughput in simulated cycles per wall second",
     "gauge"),
    ("wall_seconds", ("wall_s",),
     "Wall seconds spanned by the sweep's events", "gauge"),
    ("peak_rss_kilobytes", ("peak_rss_kb",),
     "Largest peak RSS reported by any worker, in KiB", "gauge"),
)


def prometheus_snapshot(summary: Dict[str, Any],
                        prefix: str = "repro_fleet") -> str:
    """Render a summary in Prometheus text exposition format.

    A *snapshot*, not a live scrape endpoint: write it where your
    node-exporter textfile collector looks, or serve it verbatim — the
    planned ``repro serve`` front-end will do exactly that.
    """
    lines: List[str] = []
    for suffix, path, help_text, prom_type in _PROM_METRICS:
        value: Any = summary
        for part in path:
            value = value.get(part) if isinstance(value, dict) else None
        if value is None:
            continue
        name = f"{prefix}_{suffix}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {prom_type}")
        lines.append(f"{name} {value:g}" if isinstance(value, float)
                     else f"{name} {value}")
    rate = summary.get("cache", {}).get("hit_rate")
    if rate is not None:
        name = f"{prefix}_cache_hit_ratio"
        lines.append(f"# HELP {name} Cache hits over cache lookups")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {rate:g}")
    return "\n".join(lines) + "\n"


def load_eta_hints(path: str = DEFAULT_ETA_HINTS) -> Optional[Dict[str, float]]:
    """Per-driver expected serial seconds from ``BENCH_experiments.json``.

    Returns ``None`` when the record is missing or unreadable — ETAs
    are a nicety, never a requirement.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        per_driver = doc["drivers"]["per_driver"]
        return {name: float(timing["serial_s"])
                for name, timing in per_driver.items()}
    except (OSError, ValueError, KeyError, TypeError):
        return None


def load_rate_hint(path: str = DEFAULT_ETA_HINTS) -> Optional[float]:
    """Reference simulated-cycles-per-second from the BENCH record.

    The engine's measured single-worker throughput, used by ``repro
    serve`` as the rate prior for per-job ETAs before the first
    heartbeat arrives.  Returns ``None`` when the record is missing or
    unreadable — like the section hints, a nicety only.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        rate = float(doc["engine"]["worker_reference"]["sim_cycles_per_sec"])
        return rate if rate > 0 else None
    except (OSError, ValueError, KeyError, TypeError):
        return None


# ----------------------------------------------------------------------
# Single-run progress (repro run --progress)
# ----------------------------------------------------------------------

class RunProgress:
    """Live progress line for one in-process simulation.

    A thin composition of the pieces above: a :class:`FleetTelemetry`
    heartbeat feeding a :class:`FleetMonitor` feeding a
    :class:`ProgressPrinter`.  Attach before ``machine.run``; call
    :meth:`finish` after.  Observers never perturb the run, so the
    printed numbers are free.
    """

    def __init__(self, machine: "Machine", label: str,
                 every: int = DEFAULT_HEARTBEAT,
                 stream: Optional[IO[str]] = None) -> None:
        self.printer = ProgressPrinter(stream)
        self.monitor = FleetMonitor(on_line=self.printer)
        self.telemetry = FleetTelemetry(self.monitor.handle,
                                        heartbeat_every=every)
        self.label = label
        self.telemetry.job_started(label)
        from repro.sim.shard import sharding_available

        if machine.shards > 1 and sharding_available():
            self.telemetry.watch_shards(machine, label)
        else:
            self.telemetry.watch(machine, label)

    @classmethod
    def attach(cls, machine: "Machine", label: str,
               every: int = DEFAULT_HEARTBEAT,
               stream: Optional[IO[str]] = None) -> "RunProgress":
        return cls(machine, label, every=every, stream=stream)

    def finish(self, stats: "RunStats") -> None:
        self.telemetry.job_finished(self.label, stats.run_cycles)
        self.printer.done()
