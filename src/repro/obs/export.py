"""Exporters: Chrome trace-event JSON and deterministic metrics dumps.

Two machine-readable views of a run:

- :func:`chrome_trace` — the Trace Event Format consumed by Perfetto
  and ``chrome://tracing``.  One track per node shows user, stall and
  handler spans; protocol messages appear as flow arrows from sender
  to receiver.  Timestamps are simulated cycles (the viewers label
  them "us"; read "us" as "cycles").
- :func:`metrics_dict` / :func:`write_json` — a stable JSON metrics
  document.  Because the simulator is deterministic and the dump
  contains no wall-clock state, two runs of the same configuration
  produce byte-identical files; CI diffs them as a determinism gate.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.events import (
    HandlerSpan,
    MessageSent,
    StallSpan,
    UserSpan,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.obs.hist import LatencyRecorder
    from repro.obs.timeseries import IntervalSampler
    from repro.sim.stats import RunStats

#: NodeStats integer fields included in the metrics dump.
_TOTAL_FIELDS = (
    "user_cycles", "stall_cycles", "handler_cycles",
    "loads", "stores", "ifetches",
    "cache_hits", "cache_misses", "victim_hits",
    "evictions", "dirty_evictions",
    "invalidations_hw", "invalidations_sw",
    "busy_replies", "retries", "watchdog_activations",
)


class TraceCollector:
    """Buffers span and message events for later trace export.

    Usage::

        collector = TraceCollector.attach(machine)
        machine.run(workload)
        write_json("trace.json", chrome_trace(collector))
    """

    def __init__(self) -> None:
        self.user_spans: List[UserSpan] = []
        self.stall_spans: List[StallSpan] = []
        self.handler_spans: List[HandlerSpan] = []
        self.messages: List[MessageSent] = []

    @classmethod
    def attach(cls, machine: "Machine") -> "TraceCollector":
        collector = cls()
        bus = machine.observe()
        bus.on_user.append(collector.user_spans.append)
        bus.on_stall.append(collector.stall_spans.append)
        bus.on_handler.append(collector.handler_spans.append)
        bus.on_message.append(collector.messages.append)
        return collector

    def __len__(self) -> int:
        return (len(self.user_spans) + len(self.stall_spans)
                + len(self.handler_spans) + len(self.messages))


def _cpu_lane(node: int) -> int:
    return 2 * node


def _sw_lane(node: int) -> int:
    return 2 * node + 1


def chrome_trace(collector: TraceCollector,
                 n_nodes: Optional[int] = None) -> Dict[str, object]:
    """Build a Trace Event Format document from collected events.

    Each node gets *two* lanes: an even-numbered cpu lane (user and
    stall spans) and an odd-numbered software lane (protocol handler
    occupancy).  Handlers run while user code is stalled or pre-empted,
    and the processor batches short user work into windows that can
    wall-clock-overlap a handler on the same node — separate lanes keep
    every lane's slices non-overlapping, which the trace viewers
    require for correct nesting.

    Messages appear as flow arrows (``cat: "message"``) between cpu
    lanes; transactions as flow chains (``cat: "txn"``) from the
    requester's stall slice through every software handler the miss
    triggered.  An empty collector still yields a valid document
    (metadata only).
    """
    events: List[Dict[str, object]] = []
    nodes = set()
    sw_nodes = set()
    for span in collector.user_spans:
        nodes.add(span.node)
        events.append({
            "ph": "X", "pid": 0, "tid": _cpu_lane(span.node),
            "ts": span.start, "dur": span.end - span.start,
            "name": "user", "cat": "cpu",
        })
    txn_stalls: Dict[int, StallSpan] = {}
    for span in collector.stall_spans:
        nodes.add(span.node)
        args: Dict[str, object] = {}
        if span.block is not None:
            args["block"] = span.block
        if span.txn is not None:
            args["txn"] = span.txn
            txn_stalls[span.txn] = span
        events.append({
            "ph": "X", "pid": 0, "tid": _cpu_lane(span.node),
            "ts": span.start, "dur": span.end - span.start,
            "name": f"stall:{span.kind}", "cat": "stall", "args": args,
        })
    txn_handlers: Dict[int, List[HandlerSpan]] = {}
    for span in collector.handler_spans:
        nodes.add(span.node)
        sw_nodes.add(span.node)
        args = {"pointers": span.pointers,
                "implementation": span.implementation}
        if span.txn is not None:
            args["txn"] = span.txn
            txn_handlers.setdefault(span.txn, []).append(span)
        events.append({
            "ph": "X", "pid": 0, "tid": _sw_lane(span.node),
            "ts": span.start, "dur": span.end - span.start,
            "name": f"handler:{span.kind}", "cat": "software",
            "args": args,
        })
    for index, message in enumerate(collector.messages):
        nodes.add(message.src)
        nodes.add(message.dst)
        name = f"msg:{message.kind}"
        args = {"size_flits": message.size_flits}
        if message.block is not None:
            args["block"] = message.block
        if message.txn is not None:
            args["txn"] = message.txn
        # Flow arrows from send to delivery; the instant event keeps
        # deliveries visible even outside an enclosing slice.
        events.append({
            "ph": "s", "id": index, "pid": 0,
            "tid": _cpu_lane(message.src),
            "ts": message.sent_at, "name": name, "cat": "message",
        })
        events.append({
            "ph": "f", "bp": "e", "id": index, "pid": 0,
            "tid": _cpu_lane(message.dst), "ts": message.delivered_at,
            "name": name, "cat": "message",
        })
        events.append({
            "ph": "i", "s": "t", "pid": 0, "tid": _cpu_lane(message.dst),
            "ts": message.delivered_at, "name": name, "cat": "message",
            "args": args,
        })
    # Transaction flow chains: stall slice -> handler slice(s).  Flow
    # ids live in their own (cat, id) space so they never collide with
    # message arrows.
    for txn in sorted(txn_handlers):
        stall = txn_stalls.get(txn)
        if stall is None:
            continue  # transaction outlived the recorded window
        handlers = txn_handlers[txn]
        name = f"txn:{txn}"
        events.append({
            "ph": "s", "id": txn, "pid": 0,
            "tid": _cpu_lane(stall.node), "ts": stall.start,
            "name": name, "cat": "txn",
        })
        for h in handlers[:-1]:
            events.append({
                "ph": "t", "id": txn, "pid": 0,
                "tid": _sw_lane(h.node), "ts": h.start,
                "name": name, "cat": "txn",
            })
        last = handlers[-1]
        events.append({
            "ph": "f", "bp": "e", "id": txn, "pid": 0,
            "tid": _sw_lane(last.node), "ts": last.start,
            "name": name, "cat": "txn",
        })

    if n_nodes is not None:
        nodes.update(range(n_nodes))
    meta: List[Dict[str, object]] = [{
        "ph": "M", "pid": 0, "name": "process_name",
        "args": {"name": "machine"},
    }]
    for node in sorted(nodes):
        meta.append({
            "ph": "M", "pid": 0, "tid": _cpu_lane(node),
            "name": "thread_name", "args": {"name": f"node {node}"},
        })
        meta.append({
            "ph": "M", "pid": 0, "tid": _cpu_lane(node),
            "name": "thread_sort_index",
            "args": {"sort_index": _cpu_lane(node)},
        })
    for node in sorted(sw_nodes):
        meta.append({
            "ph": "M", "pid": 0, "tid": _sw_lane(node),
            "name": "thread_name", "args": {"name": f"node {node} sw"},
        })
        meta.append({
            "ph": "M", "pid": 0, "tid": _sw_lane(node),
            "name": "thread_sort_index",
            "args": {"sort_index": _sw_lane(node)},
        })
    events.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["ph"]))
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "cycles"},
    }


def metrics_dict(stats: "RunStats",
                 config: Optional[Dict[str, object]] = None,
                 sampler: Optional["IntervalSampler"] = None,
                 recorder: Optional["LatencyRecorder"] = None
                 ) -> Dict[str, object]:
    """Assemble the deterministic metrics document for one run."""
    doc: Dict[str, object] = {
        "schema": "repro-metrics/1",
        "run": {
            "run_cycles": stats.run_cycles,
            "n_nodes": stats.n_nodes,
            "sequential_cycles": stats.sequential_cycles,
            "speedup": round(stats.speedup, 4),
            "utilization": round(stats.processor_utilization, 4),
            "total_traps": stats.total_traps,
        },
        "totals": {field: stats.total(field) for field in _TOTAL_FIELDS},
        "traps_by_kind": dict(sorted(stats.traps_by_kind().items())),
        "messages_by_kind": dict(sorted(stats.messages_by_kind().items())),
        "per_node": [
            {
                "node": ns.node,
                "user_cycles": ns.user_cycles,
                "stall_cycles": ns.stall_cycles,
                "handler_cycles": ns.handler_cycles,
                "accesses": ns.accesses,
                "cache_misses": ns.cache_misses,
                "traps": sum(ns.traps.values()),
                "messages": sum(ns.messages_sent.values()),
            }
            for ns in stats.per_node
        ],
    }
    if config is not None:
        doc["config"] = dict(sorted(config.items()))
    if sampler is not None:
        doc["timeseries"] = {
            "interval": sampler.every,
            "rows": sampler.summary(),
        }
    if recorder is not None:
        doc["histograms"] = recorder.summary()
    return doc


def dumps_json(document: Dict[str, object]) -> str:
    """Serialize ``document`` with a stable key order and trailing
    newline — the one canonical artifact encoding, shared by file
    writers and the HTTP server so identical documents produce
    byte-identical output on every path."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_json(path: str, document: Dict[str, object]) -> None:
    """Write ``document`` in the canonical encoding (:func:`dumps_json`),
    so identical documents produce byte-identical files."""
    with open(path, "w") as fh:
        fh.write(dumps_json(document))
