"""Critical-path cycle attribution for coherence transactions.

The paper's evaluation is cycle *accounting*: runtime split into user
cycles, memory stalls, and protocol software overhead, with handler
occupancy attributed per protocol point (Tables 1-2, Figures 4-6).
This module pushes the same discipline one level deeper — every stall
cycle of every transaction is placed into exactly one named bucket:

================== ==================================================
bucket             meaning
================== ==================================================
cache_lookup       miss detection before the request enters the fabric
network_transit    request/grant flits in endpoint queues and switches
home_occupancy     waiting at the home: memory/directory latency and
                   queueing behind earlier transactions
trap_dispatch      a posted trap waiting for the software context
handler_execution  protocol handler occupancy (incl. dispatch overhead)
inv_fanout         invalidation / owner-fetch messages in flight
ack_gather         acknowledgements (and fetched data) returning home
retry              BUSY replies in flight plus the retry backoff
ifetch_fill        instruction fill from local memory (no transaction)
lock_wait          blocked in the FIFO lock queue
reduce_wait        blocked in the combining-tree reduction
sw_context_wait    user code waiting for the busy software context
================== ==================================================

The decomposition is **exact by construction**: each
:class:`~repro.obs.events.StallSpan` ``[start, end)`` is swept as a set
of elementary segments, every segment is assigned to exactly one bucket
(overlaps resolved by a fixed priority, gaps classified by what the
transaction was waiting on), so the bucket totals sum cycle-for-cycle
to ``RunStats``' total stall count.  No sampling, no residual.

Everything here is a pure function of collected events — deterministic,
no wall-clock — so the JSON artifact (:func:`attribution_dict`) is
byte-stable across runs and fit for committed baselines
(``repro diff``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.events import StallSpan
from repro.obs.hist import HistogramSet
from repro.obs.spans import SpanCollector, TransactionTrace

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "BUCKETS",
    "MISS_BUCKETS",
    "AttributionReport",
    "attribute_stall",
    "attribution_dict",
]

#: Artifact schema tag; bump on incompatible layout changes.
ATTRIBUTION_SCHEMA = "repro-attribution/1"

#: Buckets a data-miss stall can decompose into.
MISS_BUCKETS = (
    "cache_lookup",
    "network_transit",
    "home_occupancy",
    "trap_dispatch",
    "handler_execution",
    "inv_fanout",
    "ack_gather",
    "retry",
)

#: Whole-stall buckets for stalls that open no coherence transaction.
AUX_BUCKETS = (
    "ifetch_fill",
    "lock_wait",
    "reduce_wait",
    "sw_context_wait",
)

BUCKETS = MISS_BUCKETS + AUX_BUCKETS

_STALL_KIND_BUCKET = {
    "ifetch": "ifetch_fill",
    "lock": "lock_wait",
    "reduce": "reduce_wait",
    "sw_wait": "sw_context_wait",
}

#: message kind -> (bucket, overlap priority).  Higher priority wins
#: when activity overlaps: a cycle spent both "in the network" and
#: "inside a handler" is protocol-software time, not transit time.
_MSG_BUCKETS: Dict[str, Tuple[str, int]] = {
    "inv": ("inv_fanout", 4),
    "fetch_rd": ("inv_fanout", 4),
    "fetch_inv": ("inv_fanout", 4),
    "ack": ("ack_gather", 3),
    "fetch_data": ("ack_gather", 3),
    "busy": ("retry", 2),
}
_DEFAULT_MSG_BUCKET = ("network_transit", 1)

_HANDLER_PRIO = 6
_TRAP_WAIT_PRIO = 5


def attribute_stall(stall: StallSpan,
                    trace: Optional[TransactionTrace] = None
                    ) -> Dict[str, int]:
    """Decompose one stall span into bucket -> cycles.

    The returned values sum exactly to ``stall.latency``.  Stalls that
    opened no transaction (ifetch / lock / reduce / sw_wait — or a data
    miss observed without a trace, which only happens if the message
    channel was not recorded) map wholesale to their kind's bucket.
    """
    s, e = stall.start, stall.end
    if e <= s:
        return {}
    if stall.kind not in ("read", "write") or trace is None:
        bucket = _STALL_KIND_BUCKET.get(stall.kind, "cache_lookup")
        return {bucket: e - s}

    # -- labelled activity intervals, clipped to the stall window ------
    intervals: List[Tuple[int, int, int, str]] = []
    #: (clipped end, sent order) -> message kind, for gap classification
    ends: List[Tuple[int, int, str]] = []
    for order, m in enumerate(trace.messages):
        lo, hi = max(m.sent_at, s), min(m.delivered_at, e)
        if lo < hi:
            bucket, prio = _MSG_BUCKETS.get(m.kind, _DEFAULT_MSG_BUCKET)
            intervals.append((lo, hi, prio, bucket))
            ends.append((hi, order, m.kind))
    for h in trace.handlers:
        lo, hi = max(h.start, s), min(h.end, e)
        if lo < hi:
            intervals.append((lo, hi, _HANDLER_PRIO, "handler_execution"))
    # Trap-to-handler dispatch wait: pair traps with handler spans per
    # node in posting order (run_handler emits the trap immediately
    # before queueing its handler, so order matches by construction).
    by_node: Dict[int, List] = {}
    for h in trace.handlers:
        by_node.setdefault(h.node, []).append(h)
    seen: Dict[int, int] = {}
    for t in trace.traps:
        queue = by_node.get(t.node, ())
        index = seen.get(t.node, 0)
        seen[t.node] = index + 1
        if index >= len(queue):
            continue
        h = queue[index]
        lo, hi = max(t.at, s), min(h.start, e)
        if lo < hi:
            intervals.append((lo, hi, _TRAP_WAIT_PRIO, "trap_dispatch"))

    if not intervals:
        return {"cache_lookup": e - s}

    # -- sweep elementary segments -------------------------------------
    points = {s, e}
    first_start = e
    for lo, hi, _prio, _bucket in intervals:
        points.add(lo)
        points.add(hi)
        if lo < first_start:
            first_start = lo
    bounds = sorted(points)
    ends.sort()

    result: Dict[str, int] = {}
    ei = 0
    last_delivered: Optional[str] = None
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        while ei < len(ends) and ends[ei][0] <= lo:
            last_delivered = ends[ei][2]
            ei += 1
        best_prio = 0
        bucket = ""
        for ilo, ihi, prio, ibucket in intervals:
            if ilo <= lo and hi <= ihi and prio > best_prio:
                best_prio = prio
                bucket = ibucket
        if not bucket:
            # A gap: nothing of this transaction is in flight.  Before
            # the first message it is the miss being detected/composed;
            # after a BUSY it is retry backoff; otherwise the home (or
            # its memory) is holding the transaction.
            if lo < first_start:
                bucket = "cache_lookup"
            elif last_delivered == "busy":
                bucket = "retry"
            else:
                bucket = "home_occupancy"
        result[bucket] = result.get(bucket, 0) + (hi - lo)
    return result


class AttributionReport:
    """Aggregated attribution over every stall of one run."""

    def __init__(self) -> None:
        self.totals: Dict[str, int] = {}
        self.by_stall_kind: Dict[str, Dict[str, int]] = {}
        #: per-stall bucket cycles (percentile queries per bucket)
        self.hists = HistogramSet()
        self.total_cycles = 0
        self.n_stalls = 0
        self.n_transactions = 0

    @classmethod
    def build(cls, collector: SpanCollector) -> "AttributionReport":
        report = cls()
        report.n_transactions = len(collector)
        for stall in collector.stalls:
            trace = (collector.trace(stall.txn)
                     if stall.txn is not None else None)
            parts = attribute_stall(stall, trace)
            report.n_stalls += 1
            report.total_cycles += stall.latency
            per_kind = report.by_stall_kind.setdefault(stall.kind, {})
            for bucket in sorted(parts):
                cycles = parts[bucket]
                report.totals[bucket] = (
                    report.totals.get(bucket, 0) + cycles)
                per_kind[bucket] = per_kind.get(bucket, 0) + cycles
                report.hists.record(bucket, cycles)
        return report

    @property
    def attributed_cycles(self) -> int:
        return sum(self.totals.values())

    @property
    def residual(self) -> int:
        """Stall cycles not placed in any bucket — zero by construction."""
        return self.total_cycles - self.attributed_cycles


def attribution_dict(report: AttributionReport,
                     config: Optional[Dict[str, object]] = None
                     ) -> Dict[str, object]:
    """Deterministic JSON-ready artifact (the `repro analyze` output).

    Key order is irrelevant — serialise with ``sort_keys=True`` (see
    :func:`repro.obs.export.write_json`); values contain no wall-clock,
    no paths, no floats beyond fixed-precision rounding.
    """
    total = report.total_cycles
    buckets = {b: report.totals.get(b, 0) for b in BUCKETS}
    shares = {
        b: (round(v / total, 6) if total else 0.0)
        for b, v in buckets.items()
    }
    percentiles = {}
    for key in report.hists.keys():
        percentiles[key] = report.hists[key].summary()
    by_kind = {}
    for kind in sorted(report.by_stall_kind):
        parts = report.by_stall_kind[kind]
        by_kind[kind] = {b: parts[b] for b in sorted(parts)}
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "config": dict(config) if config else {},
        "stall_cycles": total,
        "attributed_cycles": report.attributed_cycles,
        "residual": report.residual,
        "buckets": buckets,
        "shares": shares,
        "by_stall_kind": by_kind,
        "percentiles": percentiles,
        "counts": {
            "stalls": report.n_stalls,
            "transactions": report.n_transactions,
        },
    }
