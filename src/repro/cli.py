"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro info
    python -m repro run --app water --protocol DirnH5SNB --nodes 64
    python -m repro sweep --app tsp --nodes 64
    python -m repro worker --size 8 --nodes 16
    python -m repro cost --nodes 64

Every command is deterministic: running it twice prints identical
numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.cost import (
    cost_performance_points,
    full_map_scaling,
    pareto_frontier,
)
from repro.analysis.experiments import (
    APPLICATIONS,
    FIGURE2_PROTOCOLS,
    FIGURE4_PROTOCOLS,
    relative_performance,
    run_one,
)
from repro.analysis.report import format_table
from repro.core.spec import PAPER_SPECTRUM, spec_of
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.worker import WorkerBenchmark


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software-extended coherent shared memory "
                    "(Chaiken & Agarwal, ISCA 1994) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="list protocols and applications")

    run = sub.add_parser("run", help="run one application")
    run.add_argument("--app", choices=sorted(APPLICATIONS), default="water")
    run.add_argument("--protocol", default="DirnH5SNB")
    run.add_argument("--nodes", type=int, default=64)
    run.add_argument("--software", choices=("flexible", "optimized"),
                     default="flexible")
    run.add_argument("--no-victim-cache", action="store_true")
    run.add_argument("--perfect-ifetch", action="store_true")
    run.add_argument("--invalidation-mode",
                     choices=("parallel", "sequential", "dynamic"),
                     default="parallel")

    sweep = sub.add_parser("sweep",
                           help="run one app across the protocol spectrum")
    sweep.add_argument("--app", choices=sorted(APPLICATIONS),
                       default="water")
    sweep.add_argument("--nodes", type=int, default=64)
    sweep.add_argument("--protocols", nargs="*",
                       default=list(FIGURE4_PROTOCOLS))

    worker = sub.add_parser("worker", help="run the WORKER stress test")
    worker.add_argument("--size", type=int, default=8,
                        help="worker-set size")
    worker.add_argument("--nodes", type=int, default=16)
    worker.add_argument("--iterations", type=int, default=4)
    worker.add_argument("--protocols", nargs="*",
                        default=list(FIGURE2_PROTOCOLS) + ["DirnHNBS-"])

    cost = sub.add_parser("cost", help="directory cost analysis")
    cost.add_argument("--nodes", type=int, default=64)

    return parser


def _cmd_info(_args: argparse.Namespace) -> int:
    print("Protocols (paper Section 2.5 notation):")
    for name in list(PAPER_SPECTRUM) + ["Dir1H1SB,LACK"]:
        spec = spec_of(name)
        kind = ("full map" if spec.full_map
                else "software-only" if spec.is_software_only
                else "broadcast" if spec.sw_broadcast
                else "LimitLESS")
        print(f"  {name:<16} {kind}")
    print("\nApplications (paper Section 6):")
    for name in APPLICATIONS:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    params = MachineParams(
        n_nodes=args.nodes,
        victim_cache_enabled=not args.no_victim_cache,
        perfect_ifetch=args.perfect_ifetch,
    )
    machine = Machine(params, protocol=args.protocol,
                      software=args.software,
                      invalidation_mode=args.invalidation_mode)
    workload = APPLICATIONS[args.app]()
    stats = machine.run(workload)
    print(f"{args.app.upper()} on {args.nodes} nodes, {args.protocol} "
          f"({args.software} software)")
    print(f"  run time        {stats.run_cycles:>12,} cycles")
    print(f"  speedup         {stats.speedup:>12.2f}")
    print(f"  utilization     {stats.processor_utilization:>12.1%}")
    print(f"  software traps  {stats.total_traps:>12,}")
    print(f"  handler cycles  {stats.total('handler_cycles'):>12,}")
    print(f"  invalidations   "
          f"{stats.total('invalidations_hw') + stats.total('invalidations_sw'):>12,}")
    print(f"  retries         {stats.total('retries'):>12,}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    speedups = {}
    for protocol in args.protocols:
        stats = run_one(APPLICATIONS[args.app](), protocol,
                        n_nodes=args.nodes)
        speedups[protocol] = stats.speedup
    rel = relative_performance(speedups) \
        if "DirnHNBS-" in speedups else {p: 0 for p in speedups}
    rows = [
        (p, f"{speedups[p]:.2f}",
         f"{rel[p] * 100:.0f}%" if rel.get(p) else "-")
        for p in args.protocols
    ]
    print(format_table(["Protocol", "Speedup", "vs full map"], rows,
                       title=f"{args.app.upper()} on {args.nodes} nodes"))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    rows = []
    base: Optional[int] = None
    for protocol in args.protocols:
        machine = Machine(MachineParams(n_nodes=args.nodes),
                          protocol=protocol)
        stats = machine.run(WorkerBenchmark(worker_set_size=args.size,
                                            iterations=args.iterations))
        if protocol == "DirnHNBS-":
            base = stats.run_cycles
        rows.append((protocol, stats.run_cycles, stats.total_traps))
    table_rows: List[tuple] = []
    for protocol, cycles, traps in rows:
        ratio = f"{cycles / base:.2f}" if base else "-"
        table_rows.append((protocol, cycles, traps, ratio))
    print(format_table(
        ["Protocol", "Cycles", "Traps", "vs full map"], table_rows,
        title=f"WORKER, worker sets of {args.size}, {args.nodes} nodes"))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    params = MachineParams(n_nodes=args.nodes)
    speedups = {}
    for protocol in FIGURE4_PROTOCOLS:
        stats = run_one(APPLICATIONS["water"](), protocol,
                        n_nodes=args.nodes)
        speedups[protocol] = stats.speedup
    points = cost_performance_points(speedups, params)
    frontier = {p.protocol for p in pareto_frontier(points)}
    rows = [
        (p.protocol, p.bits_per_block, f"{p.overhead:.2%}",
         f"{p.speedup:.1f}", "*" if p.protocol in frontier else "")
        for p in points
    ]
    print(format_table(
        ["Protocol", "Dir bits/block", "Overhead", "Speedup (WATER)",
         "Pareto"],
        rows, title=f"Cost vs performance at {args.nodes} nodes"))
    print()
    scaling = full_map_scaling((16, 64, 256, 1024))
    print(format_table(
        ["Nodes", "Full-map bits/block", "5-pointer bits/block"],
        scaling, title="Directory cost scaling with machine size"))
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "cost": _cmd_cost,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` and dispatch to a subcommand; returns exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
