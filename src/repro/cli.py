"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro info
    python -m repro run --app water --protocol DirnH5SNB --nodes 64
    python -m repro sweep --app tsp --nodes 64
    python -m repro worker --size 8 --nodes 16
    python -m repro cost --nodes 64
    python -m repro experiments --jobs auto
    python -m repro experiments --progress --fleet-log sweep.jsonl
    python -m repro status sweep.jsonl
    python -m repro status sweep.jsonl --follow
    python -m repro serve --port 8642 --jobs auto
    python -m repro run --app water --check-invariants
    python -m repro cache prune --max-age 7d --dry-run

Every command is deterministic: running it twice prints identical
numbers — and for ``experiments``, identical output for any ``--jobs``
value.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.cost import (
    cost_performance_points,
    full_map_scaling,
    pareto_frontier,
)
from repro.analysis.experiments import (
    APPLICATIONS,
    FIGURE2_PROTOCOLS,
    FIGURE4_PROTOCOLS,
    relative_performance,
    run_one,
)
from repro.analysis.report import format_table
from repro.analysis.reportgen import (
    ANALYZE_DEFAULTS,
    SECTIONS,
    analyze_config,
    analyze_doc,
    write_experiments_md,
)
from repro.core.protocol import InvariantChecker
from repro.exec import DEFAULT_CACHE_DIR, JobRunner, ResultCache
from repro.core.spec import PAPER_SPECTRUM, spec_of
from repro.common.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.params import DISPATCH_MODES, MachineParams
from repro.obs import (
    AttributionReport,
    FleetMonitor,
    IntervalSampler,
    LatencyRecorder,
    ProgressPrinter,
    RunProgress,
    SpanCollector,
    TraceCollector,
    attribution_dict,
    chrome_trace,
    format_fleet_summary,
    format_trace,
    load_eta_hints,
    metrics_dict,
    prometheus_snapshot,
    read_fleet_log,
    summarize_fleet_log,
    write_json,
)
from repro.workloads.worker import WorkerBenchmark

#: The committed attribution baseline exercised by `repro diff --baseline`.
DEFAULT_BASELINE = "baselines/worker16-attribution.json"


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {text!r}")
    return value


_DURATION_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400}


def _duration(text: str) -> float:
    """Parse a duration: plain seconds, or a d/h/m/s-suffixed number."""
    raw = text.strip().lower()
    scale = 1
    if raw and raw[-1] in _DURATION_UNITS:
        scale = _DURATION_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a duration like 300, 12h or 7d, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"duration must be non-negative, got {text!r}")
    return value


def _add_shards_arg(parser: argparse.ArgumentParser) -> None:
    """``--shards``: parallel-in-time execution (repro.sim.shard).

    Byte-identical to the serial engine (gated by the sharded
    equivalence tests and the CI ``sharded-equivalence`` job), so like
    ``--dispatch`` it is an execution knob: never part of
    :class:`MachineParams` or experiment cache keys.  Default ``None``
    defers to the ``REPRO_SHARDS`` environment variable, then to 1
    (serial).
    """
    parser.add_argument(
        "--shards", default=None, metavar="N|auto",
        help="split the simulated nodes across N worker processes "
             "advancing in conservative time windows ('auto' = one "
             "per CPU); results are byte-identical to --shards 1",
    )


def _add_dispatch_arg(parser: argparse.ArgumentParser) -> None:
    """``--dispatch``: protocol-engine execution mode.

    Cycle-identical either way (gated by the equivalence fixture and
    the report ``cmp`` in CI); ``interpreted`` is the readable
    fallback when the table compiler is suspected.  Default ``None``
    defers to the ``REPRO_DISPATCH`` environment variable, then to
    compiled.
    """
    parser.add_argument(
        "--dispatch", choices=DISPATCH_MODES, default=None,
        help="protocol dispatch mode: exec-compiled per-table code "
             "(default) or the interpreted reference engine; both "
             "produce byte-identical results",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software-extended coherent shared memory "
                    "(Chaiken & Agarwal, ISCA 1994) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="list protocols and applications")

    run = sub.add_parser("run", help="run one application")
    run.add_argument("--app", choices=sorted(APPLICATIONS), default="water")
    run.add_argument("--protocol", default="DirnH5SNB")
    run.add_argument("--nodes", type=int, default=64)
    run.add_argument("--software", choices=("flexible", "optimized"),
                     default="flexible")
    run.add_argument("--no-victim-cache", action="store_true")
    run.add_argument("--perfect-ifetch", action="store_true")
    run.add_argument("--invalidation-mode",
                     choices=("parallel", "sequential", "dynamic"),
                     default="parallel")
    run.add_argument("--trace-out", metavar="FILE",
                     help="write a Chrome trace-event JSON (Perfetto / "
                          "chrome://tracing) of the run")
    run.add_argument("--metrics-out", metavar="FILE",
                     help="write a deterministic JSON metrics dump")
    run.add_argument("--sample-every", type=_nonneg_int, default=10_000,
                     metavar="CYCLES",
                     help="interval of the metrics time-series sampler "
                          "(0 disables it — required with --shards > 1, "
                          "where no single process sees the clock tick)")
    run.add_argument("--check-invariants", action="store_true",
                     help="run under the continuous protocol invariant "
                          "checker; exit 1 on any violation")
    _add_dispatch_arg(run)
    _add_shards_arg(run)
    run.add_argument("--progress", action="store_true",
                     help="live progress line on stderr (sim-cycle "
                          "heartbeat; never changes results)")

    profile = sub.add_parser(
        "profile",
        help="run one application and print its interval time-series "
             "and latency histograms")
    profile.add_argument("--app", choices=sorted(APPLICATIONS),
                         default="water")
    profile.add_argument("--protocol", default="DirnH5SNB")
    profile.add_argument("--nodes", type=int, default=64)
    profile.add_argument("--software", choices=("flexible", "optimized"),
                         default="flexible")
    profile.add_argument("--no-victim-cache", action="store_true")
    profile.add_argument("--perfect-ifetch", action="store_true")
    profile.add_argument("--invalidation-mode",
                         choices=("parallel", "sequential", "dynamic"),
                         default="parallel")
    profile.add_argument("--sample-every", type=_positive_int, default=10_000,
                         metavar="CYCLES")
    _add_dispatch_arg(profile)

    sweep = sub.add_parser("sweep",
                           help="run one app across the protocol spectrum")
    sweep.add_argument("--app", choices=sorted(APPLICATIONS),
                       default="water")
    sweep.add_argument("--nodes", type=int, default=64)
    sweep.add_argument("--protocols", nargs="*",
                       default=list(FIGURE4_PROTOCOLS))

    worker = sub.add_parser("worker", help="run the WORKER stress test")
    worker.add_argument("--size", type=int, default=8,
                        help="worker-set size")
    worker.add_argument("--nodes", type=int, default=16)
    worker.add_argument("--iterations", type=int, default=4)
    worker.add_argument("--protocols", nargs="*",
                        default=list(FIGURE2_PROTOCOLS) + ["DirnHNBS-"])

    cost = sub.add_parser("cost", help="directory cost analysis")
    cost.add_argument("--nodes", type=int, default=64)

    experiments = sub.add_parser(
        "experiments",
        help="regenerate EXPERIMENTS.md (parallel runner + result cache)")
    experiments.add_argument("--out", "-o", default="EXPERIMENTS.md",
                             metavar="FILE",
                             help="output path (default EXPERIMENTS.md)")
    experiments.add_argument("--jobs", default="1", metavar="N",
                             help="worker processes: a count or 'auto' "
                                  "(default 1 = in-process serial)")
    experiments.add_argument("--quick", action="store_true",
                             help="CI-gate problem sizes (seconds, not "
                                  "minutes; not the reproduction record)")
    experiments.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                             metavar="DIR",
                             help="result cache directory "
                                  f"(default {DEFAULT_CACHE_DIR})")
    experiments.add_argument("--no-cache", action="store_true",
                             help="disable the on-disk result cache")
    experiments.add_argument("--check-invariants", action="store_true",
                             help="run every executed job under the "
                                  "continuous protocol invariant checker")
    experiments.add_argument("--attribution", action="store_true",
                             help="collect a cycle-attribution artifact "
                                  "per job and persist it through the "
                                  "result cache (attributed jobs cache "
                                  "under their own keys)")
    experiments.add_argument("--progress", action="store_true",
                             help="live fleet status line on stderr "
                                  "(jobs, throughput, cache hit rate, "
                                  "ETA; never changes the report)")
    experiments.add_argument("--fleet-log", metavar="FILE", default=None,
                             help="append every telemetry event to FILE "
                                  "as repro-fleetlog/1 JSONL (summarize "
                                  "later with 'repro status FILE')")
    _add_dispatch_arg(experiments)
    _add_shards_arg(experiments)
    experiments.add_argument("--prom-out", metavar="FILE", default=None,
                             help="write a Prometheus text-format "
                                  "snapshot of the final sweep status")

    analyze = sub.add_parser(
        "analyze",
        help="run one workload with transaction tracing and write a "
             "cycle-attribution artifact (deterministic JSON)")
    analyze.add_argument("--app",
                         choices=sorted(APPLICATIONS) + ["worker"],
                         default=ANALYZE_DEFAULTS["app"],
                         help="application, or 'worker' for the WORKER "
                              "stress test (default)")
    analyze.add_argument("--protocol",
                         default=ANALYZE_DEFAULTS["protocol"])
    analyze.add_argument("--nodes", type=int,
                         default=ANALYZE_DEFAULTS["nodes"])
    analyze.add_argument("--size", type=int,
                         default=ANALYZE_DEFAULTS["size"],
                         help="worker-set size (worker only)")
    analyze.add_argument("--iterations", type=int,
                         default=ANALYZE_DEFAULTS["iterations"],
                         help="WORKER iterations (worker only)")
    analyze.add_argument("--software", choices=("flexible", "optimized"),
                         default=ANALYZE_DEFAULTS["software"])
    analyze.add_argument("--no-victim-cache", action="store_true")
    analyze.add_argument("--perfect-ifetch", action="store_true")
    analyze.add_argument("--invalidation-mode",
                         choices=("parallel", "sequential", "dynamic"),
                         default="parallel")
    analyze.add_argument("--out", "-o", default="-", metavar="FILE",
                         help="artifact path ('-' = stdout, the default)")
    analyze.add_argument("--show-txn", type=int, default=None,
                         metavar="TXN",
                         help="also print the span tree of transaction "
                              "TXN (stderr)")
    _add_dispatch_arg(analyze)
    _add_shards_arg(analyze)

    diff = sub.add_parser(
        "diff",
        help="compare two attribution artifacts bucket-by-bucket; "
             "exit 1 when a bucket regressed past its threshold")
    diff.add_argument("artifacts", nargs="+", metavar="FILE",
                      help="attribution JSON files: OLD NEW, or just "
                           "NEW with --baseline")
    diff.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE,
                      default=None, metavar="FILE",
                      help="compare against a committed baseline "
                           f"(default {DEFAULT_BASELINE})")
    diff.add_argument("--threshold", type=float, default=None,
                      metavar="FRAC",
                      help="relative growth threshold per bucket "
                           "(default 0.05)")
    diff.add_argument("--abs-floor", type=int, default=None,
                      metavar="CYCLES",
                      help="ignore bucket growth below this many cycles "
                           "(default 200)")
    diff.add_argument("--bucket-threshold", action="append", default=[],
                      metavar="BUCKET=FRAC",
                      help="per-bucket relative threshold override "
                           "(repeatable)")
    diff.add_argument("--json", dest="json_out", default=None,
                      metavar="FILE",
                      help="also write the diff document to FILE")

    cache = sub.add_parser(
        "cache", help="manage the on-disk result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    prune = cache_sub.add_parser(
        "prune",
        help="delete entries written by older cost-model/package "
             "versions (and, with --max-age, old entries)")
    prune.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       metavar="DIR",
                       help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    prune.add_argument("--max-age", type=_duration, default=None,
                       metavar="AGE",
                       help="also delete entries older than AGE — a "
                            "number of seconds, or with a d/h/m/s "
                            "suffix (e.g. 7d, 12h)")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be deleted without "
                            "deleting anything")

    status = sub.add_parser(
        "status",
        help="summarize a fleet log (repro-fleetlog/1 JSONL) written "
             "by 'repro experiments --fleet-log'")
    status.add_argument("logfile", metavar="LOGFILE",
                        help="the JSONL fleet log to summarize")
    status.add_argument("--json", dest="json_out", action="store_true",
                        help="print the summary as JSON instead of text")
    status.add_argument("--prom", action="store_true",
                        help="print the summary in Prometheus text "
                             "exposition format")
    status.add_argument("--follow", action="store_true",
                        help="poll the log of a live sweep and "
                             "re-render its status line until "
                             "sweep_finished (tolerates the truncated "
                             "final line of an in-progress append)")
    status.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="--follow poll interval (default 1.0)")

    serve = sub.add_parser(
        "serve",
        help="serve experiment specs over HTTP with a live "
             "observability plane (SSE events, Prometheus metrics, "
             "attribution artifacts; byte-identical to the CLI)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (default 8642; 0 = ephemeral)")
    serve.add_argument("--jobs", default="1", metavar="N",
                       help="worker processes: a count or 'auto' "
                            "(default 1)")
    serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       metavar="DIR",
                       help="result cache directory "
                            f"(default {DEFAULT_CACHE_DIR}; shared "
                            "with the CLI, so server and CLI replay "
                            "each other's results)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
    serve.add_argument("--fleet-log", metavar="FILE", default=None,
                       help="append every telemetry event to FILE as "
                            "repro-fleetlog/1 JSONL")
    serve.add_argument("--heartbeat-every", type=_positive_int,
                       default=None, metavar="CYCLES",
                       help="simulated cycles between job_progress "
                            "heartbeats")
    _add_dispatch_arg(serve)
    _add_shards_arg(serve)

    check = sub.add_parser(
        "check",
        help="static verification: protocol model checker, "
             "determinism linter, and dataflow analyses")
    check.add_argument("--all", action="store_true",
                       help="run every analysis (default when no "
                            "analysis flag is given)")
    check.add_argument("--model", action="store_true",
                       help="model-check the protocol transition "
                            "tables")
    check.add_argument("--lint", action="store_true",
                       help="lint src/repro for nondeterminism "
                            "hazards")
    check.add_argument("--flow", action="store_true",
                       help="dataflow analyses: translation "
                            "validation of compiled dispatch, "
                            "shard-safety inference, taint-based "
                            "determinism lint")
    check.add_argument("--quick", action="store_true",
                       help="model-check only the two-node "
                            "configurations (seconds instead of "
                            "a minute; skips sequential-invalidation "
                            "and three-node coverage)")
    check.add_argument("--max-states", type=int, default=None,
                       metavar="N",
                       help="per-configuration state ceiling "
                            "(exceeding it is a finding)")
    check.add_argument("--json", dest="json_out", default=None,
                       metavar="FILE",
                       help="write the machine-readable report to "
                            "FILE ('-' for stdout)")

    return parser


def _cmd_info(_args: argparse.Namespace) -> int:
    print("Protocols (paper Section 2.5 notation):")
    for name in list(PAPER_SPECTRUM) + ["Dir1H1SB,LACK"]:
        spec = spec_of(name)
        kind = ("full map" if spec.full_map
                else "software-only" if spec.is_software_only
                else "broadcast" if spec.sw_broadcast
                else "LimitLESS")
        print(f"  {name:<16} {kind}")
    print("\nApplications (paper Section 6):")
    for name in APPLICATIONS:
        print(f"  {name}")
    return 0


def _machine_from(args: argparse.Namespace) -> Machine:
    """Build the machine described by run/profile command options."""
    params = MachineParams(
        n_nodes=args.nodes,
        victim_cache_enabled=not args.no_victim_cache,
        perfect_ifetch=args.perfect_ifetch,
    )
    return Machine(params, protocol=args.protocol,
                   software=args.software,
                   invalidation_mode=args.invalidation_mode,
                   dispatch=args.dispatch,
                   shards=getattr(args, "shards", None))


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        machine = _machine_from(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    collector = sampler = recorder = checker = progress = None
    if args.trace_out:
        collector = TraceCollector.attach(machine)
    if args.metrics_out:
        # The time-series sampler rides the global clock (on_advance),
        # which no single process sees under --shards; every other
        # observer below works from replayable per-event channels.
        if args.sample_every:
            sampler = IntervalSampler.attach(machine,
                                             every=args.sample_every)
        recorder = LatencyRecorder.attach(machine)
    if args.check_invariants:
        if machine.shards > 1:
            # The checker cross-examines live directory and cache state
            # as each event fires; replaying the merged event stream
            # against the (never-mutated) parent machine would check
            # nothing.  Refuse rather than silently pass.
            print("error: --check-invariants inspects live machine "
                  "state and needs --shards 1", file=sys.stderr)
            return 2
        checker = InvariantChecker.attach(machine)
    if args.progress:
        progress = RunProgress.attach(
            machine, f"{args.app}:{args.protocol}:{args.nodes}")

    workload = APPLICATIONS[args.app]()
    try:
        stats = machine.run(workload)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if progress is not None:
        progress.finish(stats)
    print(f"{args.app.upper()} on {args.nodes} nodes, {args.protocol} "
          f"({args.software} software)")
    print(f"  run time        {stats.run_cycles:>12,} cycles")
    print(f"  speedup         {stats.speedup:>12.2f}")
    print(f"  utilization     {stats.processor_utilization:>12.1%}")
    print(f"  software traps  {stats.total_traps:>12,}")
    print(f"  handler cycles  {stats.total('handler_cycles'):>12,}")
    print(f"  invalidations   "
          f"{stats.total('invalidations_hw') + stats.total('invalidations_sw'):>12,}")
    print(f"  retries         {stats.total('retries'):>12,}")

    if collector is not None:
        write_json(args.trace_out,
                   chrome_trace(collector, n_nodes=args.nodes))
        print(f"  trace           {args.trace_out}")
    if recorder is not None:
        if sampler is not None:
            sampler.finish(stats.run_cycles)
        config = {
            "app": args.app,
            "protocol": args.protocol,
            "nodes": args.nodes,
            "software": args.software,
            "invalidation_mode": args.invalidation_mode,
        }
        write_json(args.metrics_out,
                   metrics_dict(stats, config=config,
                                sampler=sampler, recorder=recorder))
        print(f"  metrics         {args.metrics_out}")
    if checker is not None:
        checker.finish()
        print(f"  invariants      {checker.transitions_checked:>12,} "
              f"transitions, {checker.messages_checked:,} messages, "
              f"{len(checker.violations)} violation"
              f"{'' if len(checker.violations) == 1 else 's'}")
        if checker.violations:
            for violation in checker.violations[:20]:
                print(f"    {violation}", file=sys.stderr)
            return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    machine = _machine_from(args)
    sampler = IntervalSampler.attach(machine, every=args.sample_every)
    recorder = LatencyRecorder.attach(machine)
    stats = machine.run(APPLICATIONS[args.app]())
    sampler.finish(stats.run_cycles)

    interval_rows = [
        (f"{row.start:,}", f"{row.end:,}",
         f"{row.utilization:.1%}", f"{row.miss_rate:.2%}",
         row.total("traps"), row.total("messages"),
         row.total("retries"), max(row.rx_backlog, default=0))
        for row in sampler.rows
    ]
    print(format_table(
        ["From", "To", "Util", "Miss rate", "Traps", "Msgs",
         "Retries", "Max RX queue"],
        interval_rows,
        title=f"{args.app.upper()} on {args.nodes} nodes, "
              f"{args.protocol}: interval time-series "
              f"(every {args.sample_every:,} cycles)"))

    def hist_rows(hist_set):
        return [
            (key, hist.count, f"{hist.mean:.0f}",
             hist.percentile(50), hist.percentile(90),
             hist.percentile(99), hist.max)
            for key, hist in hist_set.items()
        ]

    print()
    headers = ["Kind", "Count", "Mean", "p50", "p90", "p99", "Max"]
    if len(recorder.handlers):
        print(format_table(headers, hist_rows(recorder.handlers),
                           title="Handler latency (cycles)"))
        print()
    print(format_table(headers, hist_rows(recorder.stalls),
                       title="End-to-end stall latency (cycles)"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    speedups = {}
    for protocol in args.protocols:
        stats = run_one(APPLICATIONS[args.app](), protocol,
                        n_nodes=args.nodes)
        speedups[protocol] = stats.speedup
    rel = relative_performance(speedups) \
        if "DirnHNBS-" in speedups else {p: 0 for p in speedups}
    rows = [
        (p, f"{speedups[p]:.2f}",
         f"{rel[p] * 100:.0f}%" if rel.get(p) else "-")
        for p in args.protocols
    ]
    print(format_table(["Protocol", "Speedup", "vs full map"], rows,
                       title=f"{args.app.upper()} on {args.nodes} nodes"))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    rows = []
    base: Optional[int] = None
    for protocol in args.protocols:
        machine = Machine(MachineParams(n_nodes=args.nodes),
                          protocol=protocol)
        stats = machine.run(WorkerBenchmark(worker_set_size=args.size,
                                            iterations=args.iterations))
        if protocol == "DirnHNBS-":
            base = stats.run_cycles
        rows.append((protocol, stats.run_cycles, stats.total_traps))
    table_rows: List[tuple] = []
    for protocol, cycles, traps in rows:
        ratio = f"{cycles / base:.2f}" if base else "-"
        table_rows.append((protocol, cycles, traps, ratio))
    print(format_table(
        ["Protocol", "Cycles", "Traps", "vs full map"], table_rows,
        title=f"WORKER, worker sets of {args.size}, {args.nodes} nodes"))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    params = MachineParams(n_nodes=args.nodes)
    speedups = {}
    for protocol in FIGURE4_PROTOCOLS:
        stats = run_one(APPLICATIONS["water"](), protocol,
                        n_nodes=args.nodes)
        speedups[protocol] = stats.speedup
    points = cost_performance_points(speedups, params)
    frontier = {p.protocol for p in pareto_frontier(points)}
    rows = [
        (p.protocol, p.bits_per_block, f"{p.overhead:.2%}",
         f"{p.speedup:.1f}", "*" if p.protocol in frontier else "")
        for p in points
    ]
    print(format_table(
        ["Protocol", "Dir bits/block", "Overhead", "Speedup (WATER)",
         "Pareto"],
        rows, title=f"Cost vs performance at {args.nodes} nodes"))
    print()
    scaling = full_map_scaling((16, 64, 256, 1024))
    print(format_table(
        ["Nodes", "Full-map bits/block", "5-pointer bits/block"],
        scaling, title="Directory cost scaling with machine size"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    try:
        machine = _machine_from(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    collector = SpanCollector.attach(machine)
    if args.app == "worker":
        workload = WorkerBenchmark(worker_set_size=args.size,
                                   iterations=args.iterations)
    else:
        workload = APPLICATIONS[args.app]()
    try:
        stats = machine.run(workload)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = AttributionReport.build(collector)
    config = analyze_config(
        args.app, args.protocol, args.nodes, args.software,
        args.invalidation_mode,
        worker_set_size=args.size, iterations=args.iterations)
    doc = analyze_doc(attribution_dict(report), config,
                      stats.run_cycles, stats.speedup)

    if args.show_txn is not None:
        trace = collector.trace(args.show_txn)
        if trace is None:
            print(f"no transaction {args.show_txn} "
                  f"(ids run 1..{len(collector)})", file=sys.stderr)
        else:
            print(format_trace(trace), file=sys.stderr)

    if args.out == "-":
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        write_json(args.out, doc)
        total = report.total_cycles
        print(f"{args.app} on {args.nodes} nodes, {args.protocol}: "
              f"{total:,} stall cycles over {report.n_transactions:,} "
              f"transactions")
        buckets = doc["buckets"]
        for name in sorted(buckets, key=lambda b: -buckets[b]):
            cycles = buckets[name]
            if cycles:
                share = cycles / total if total else 0.0
                print(f"  {name:<18} {cycles:>12,}  {share:>6.1%}")
        print(f"wrote {args.out}")
    return 0


def _parse_bucket_thresholds(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ValueError(
                f"--bucket-threshold expects BUCKET=FRAC, got {pair!r}")
        out[name] = float(value)
    return out


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.regression import (
        DEFAULT_ABS_FLOOR,
        DEFAULT_REL_THRESHOLD,
        diff_attributions,
        format_diff,
    )

    if args.baseline is not None:
        if len(args.artifacts) != 1:
            print("error: with --baseline give exactly one artifact "
                  "(the new run)", file=sys.stderr)
            return 2
        old_path, new_path = args.baseline, args.artifacts[0]
    else:
        if len(args.artifacts) != 2:
            print("error: give OLD and NEW artifact paths "
                  "(or one path with --baseline)", file=sys.stderr)
            return 2
        old_path, new_path = args.artifacts
    try:
        with open(old_path, "r", encoding="utf-8") as fh:
            old = json.load(fh)
        with open(new_path, "r", encoding="utf-8") as fh:
            new = json.load(fh)
        doc = diff_attributions(
            old, new,
            rel_threshold=(args.threshold if args.threshold is not None
                           else DEFAULT_REL_THRESHOLD),
            abs_floor=(args.abs_floor if args.abs_floor is not None
                       else DEFAULT_ABS_FLOOR),
            bucket_thresholds=_parse_bucket_thresholds(
                args.bucket_threshold),
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"old: {old_path}")
    print(f"new: {new_path}")
    print(format_diff(doc))
    if args.json_out:
        write_json(args.json_out, doc)
        print(f"wrote {args.json_out}")
    return 0 if doc["ok"] else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    # Fleet telemetry is a pure side channel: the monitor, the progress
    # line, and the JSONL log observe the sweep; the rendered report
    # and every cache key are byte-identical with or without them
    # (CI-gated).
    monitor = printer = None
    if args.progress or args.fleet_log or args.prom_out:
        if args.progress:
            printer = ProgressPrinter()
        monitor = FleetMonitor(
            log_path=args.fleet_log,
            on_line=printer,
            sections=[key for key, _ in SECTIONS],
            eta_hints=load_eta_hints(),
        )
    try:
        runner = JobRunner(
            jobs=args.jobs,
            cache=None if args.no_cache else ResultCache(args.cache_dir),
            check_invariants=args.check_invariants,
            attribution=args.attribution,
            telemetry=monitor,
            dispatch=args.dispatch,
            shards=args.shards,
        )
    except (ValueError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    preset = "quick" if args.quick else "full"
    print(f"regenerating {args.out} ({preset} preset, "
          f"{runner.n_workers} worker"
          f"{'' if runner.n_workers == 1 else 's'})", flush=True)

    label_to_key = {label: key for key, label in SECTIONS}

    def on_progress(line: str) -> None:
        if monitor is not None and line in label_to_key:
            monitor.section(label_to_key[line])
        if printer is not None:
            printer.done()
        print(line, flush=True)

    if monitor is not None:
        monitor.start(jobs=runner.n_workers)
    write_experiments_md(
        args.out, runner=runner, preset=preset, progress=on_progress,
    )
    if monitor is not None:
        monitor.finish(jobs_executed=runner.jobs_executed)
    if printer is not None:
        printer.done()
    if args.prom_out and monitor is not None:
        with open(args.prom_out, "w", encoding="utf-8") as fh:
            fh.write(prometheus_snapshot(monitor.summary()))
        print(f"wrote {args.prom_out}")
    cache = runner.cache
    if cache is None:
        cache_note = "cache off"
    else:
        lookups = cache.hits + cache.misses
        rate = f" ({cache.hits / lookups:.0%} hit rate)" if lookups else ""
        cache_note = (f"cache {cache.hits} hit"
                      f"{'' if cache.hits == 1 else 's'} / "
                      f"{cache.misses} miss"
                      f"{'' if cache.misses == 1 else 'es'} / "
                      f"{cache.stores} store"
                      f"{'' if cache.stores == 1 else 's'}{rate}")
    print(f"wrote {args.out}: {runner.jobs_executed} jobs run, "
          f"{runner.jobs_deduplicated + runner.memo_hits} deduplicated, "
          f"{cache_note}")
    return 0


def _follow_fleet_log(path: str, interval: float,
                      stream=None, max_polls: Optional[int] = None) -> int:
    """Poll ``path`` and re-render the live status line (status --follow).

    Each poll re-reads the log with ``tolerate_partial=True`` (the
    writer may be mid-append) and replays it through a fresh monitor,
    so the rendered line is exactly what the sweep's own ``--progress``
    line would show.  Returns when the log records ``sweep_finished``
    (printing the final summary) — or after ``max_polls`` polls, for
    tests and bounded watches.
    """
    from repro.obs.fleet import replay_fleet_log

    printer = ProgressPrinter(stream)
    polls = 0
    while True:
        try:
            events = read_fleet_log(path, tolerate_partial=True)
        except (OSError, ValueError) as exc:
            printer.done()
            print(f"error: {exc}", file=sys.stderr)
            return 2
        monitor = replay_fleet_log(events)
        printer(monitor.render_progress())
        if monitor.finished is not None:
            printer.done()
            print(format_fleet_summary(monitor.summary()))
            return 0
        polls += 1
        if max_polls is not None and polls >= max_polls:
            printer.done()
            return 0
        import time

        time.sleep(interval)


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    if args.follow:
        return _follow_fleet_log(args.logfile, args.interval)
    try:
        events = read_fleet_log(args.logfile)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = summarize_fleet_log(events)
    if args.prom:
        print(prometheus_snapshot(summary), end="")
    elif args.json_out:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(f"{args.logfile}: {summary['events']} events "
              f"({summary['schema']})")
        print(format_fleet_summary(summary))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # The server is the CLI runner with an HTTP front: same cache, same
    # fleet monitor, same drivers.  Telemetry stays a side channel —
    # every byte served is identical to the CLI artifact for the same
    # spec (CI cmp-gates this) — so the observability plane here is
    # free to be as live as it likes.
    import asyncio
    import signal

    from repro.exec import FarmExecutor
    from repro.obs import load_rate_hint
    from repro.serve import FarmServer

    # A service gets SIGTERMed far more often than Ctrl-C'd.  Route it
    # through the KeyboardInterrupt path so the farm pool (and its
    # worker processes) shut down instead of being orphaned.
    try:
        signal.signal(signal.SIGTERM, signal.default_int_handler)
    except ValueError:  # not the main thread (embedded use) — skip
        pass

    monitor = FleetMonitor(
        log_path=args.fleet_log,
        sections=[key for key, _ in SECTIONS],
        eta_hints=load_eta_hints(),
    )
    try:
        farm = FarmExecutor(
            jobs=args.jobs,
            cache=None if args.no_cache else ResultCache(args.cache_dir),
            telemetry=monitor,
            heartbeat_every=args.heartbeat_every,
            dispatch=args.dispatch,
            shards=args.shards,
        )
    except (ValueError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = FarmServer(farm, monitor, host=args.host, port=args.port,
                        rate_hint=load_rate_hint())
    monitor.start(jobs=farm.n_workers)

    async def _run() -> None:
        await server.start()
        print(f"repro serve: listening on "
              f"http://{server.host}:{server.port} "
              f"({farm.n_workers} worker"
              f"{'' if farm.n_workers == 1 else 's'}, "
              f"cache {'off' if args.no_cache else args.cache_dir})",
              flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    finally:
        farm.close()
        monitor.finish(jobs_executed=farm.jobs_executed)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    assert args.cache_command == "prune"
    cache = ResultCache(args.cache_dir)
    removed = cache.prune(max_age=args.max_age, dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    print(f"{verb} {removed} stale cache entr"
          f"{'y' if removed == 1 else 'ies'} under {cache.root}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core.protocol.compile import ensure_builtin_tables_compiled
    from repro.verify.flow import run_flow
    from repro.verify.lint import run_lint
    from repro.verify.modelcheck import (
        MAX_STATES,
        default_configs,
        run_model_check,
    )
    from repro.verify.report import EXIT_ERROR, Report, write_json

    explicit = args.model or args.lint or args.flow
    run_model = args.model or args.all or not explicit
    run_linter = args.lint or args.all or not explicit
    run_flow_passes = args.flow or args.all or not explicit
    report = Report()
    try:
        if run_model:
            configs = default_configs()
            if args.quick:
                configs = [c for c in configs if c.n_nodes <= 2]
            report.extend(run_model_check(
                configs,
                max_states=(args.max_states if args.max_states
                            else MAX_STATES),
                coverage=not args.quick))
        if run_linter:
            # Populate the generated-source registry so the linter
            # always sees the compiled dispatch modules, even in a
            # process that never constructed a machine.
            ensure_builtin_tables_compiled()
            report.extend(run_lint())
        if run_flow_passes:
            report.extend(run_flow())
    except Exception as exc:
        print(f"repro check: internal error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    write_json(report, args.json_out)
    if args.json_out != "-":
        print(report.render_text(), end="")
    return report.exit_code


_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "profile": _cmd_profile,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "cost": _cmd_cost,
    "analyze": _cmd_analyze,
    "diff": _cmd_diff,
    "experiments": _cmd_experiments,
    "status": _cmd_status,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    "check": _cmd_check,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` and dispatch to a subcommand; returns exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
