"""repro — Software-Extended Coherent Shared Memory: Performance and Cost.

A from-scratch reproduction of Chaiken & Agarwal (ISCA 1994): the MIT
Alewife LimitLESS software-extended directory coherence system, evaluated
on a deterministic event-driven machine simulator (the NWO analogue).

Public API::

    from repro import Machine, MachineParams, ProtocolSpec
    from repro.workloads import WorkerBenchmark

    machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB")
    stats = machine.run(WorkerBenchmark(worker_set_size=8))
    print(stats.run_cycles, stats.speedup)
"""

from repro.common.errors import (
    AllocationError,
    ConfigurationError,
    DeadlockError,
    ProtocolSpecError,
    ProtocolStateError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.core.spec import (
    ALEWIFE_SUPPORTED,
    PAPER_SPECTRUM,
    AckMode,
    ProtocolSpec,
    spec_of,
)
from repro.machine.machine import CodeRef, Machine
from repro.machine.params import MachineParams
from repro.obs import (
    EventBus,
    IntervalSampler,
    LatencyRecorder,
    TraceCollector,
)
from repro.sim.stats import HandlerSample, NodeStats, RunStats

__version__ = "1.0.0"

__all__ = [
    "ALEWIFE_SUPPORTED",
    "AckMode",
    "AllocationError",
    "CodeRef",
    "ConfigurationError",
    "DeadlockError",
    "EventBus",
    "HandlerSample",
    "IntervalSampler",
    "LatencyRecorder",
    "Machine",
    "MachineParams",
    "NodeStats",
    "TraceCollector",
    "PAPER_SPECTRUM",
    "ProtocolSpec",
    "ProtocolSpecError",
    "ProtocolStateError",
    "ReproError",
    "RunStats",
    "SimulationError",
    "WorkloadError",
    "spec_of",
    "__version__",
]
