"""Cross-run attribution diffing (the ``repro diff`` engine).

A plain total-cycle comparison says *that* two runs differ; an
attribution diff says *where* — the extra cycles land in a named
bucket (handler execution, invalidation fan-out, retry backoff, ...),
so a perf regression in the engine hot path is caught as an attributed
delta rather than unexplained drift.

Both inputs are ``repro-attribution/1`` artifacts (written by
``repro analyze`` or persisted by the experiment runner); the output is
itself deterministic JSON, so CI can gate on it byte-for-byte.

Flagging rule, per bucket: a *growth* is a regression when it exceeds
both an absolute floor (ignore noise-sized drift in tiny buckets) and
a relative threshold (ignore proportionally small drift in huge ones).
A bucket that appears from nothing is flagged as soon as it clears the
absolute floor.  Shrinking buckets are reported as improvements and
never fail the diff.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "DIFF_SCHEMA",
    "DEFAULT_REL_THRESHOLD",
    "DEFAULT_ABS_FLOOR",
    "diff_attributions",
    "format_diff",
]

#: Artifact schema tag of the diff document.
DIFF_SCHEMA = "repro-attribution-diff/1"

#: A bucket must grow by more than this fraction of its old size ...
DEFAULT_REL_THRESHOLD = 0.05

#: ... and by more than this many cycles, to be flagged.
DEFAULT_ABS_FLOOR = 200


def _require_attribution(doc: Dict[str, object], label: str) -> None:
    schema = doc.get("schema")
    if schema != "repro-attribution/1":
        raise ValueError(
            f"{label}: not an attribution artifact "
            f"(schema={schema!r}, expected 'repro-attribution/1')"
        )


def diff_attributions(
    old: Dict[str, object],
    new: Dict[str, object],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_floor: int = DEFAULT_ABS_FLOOR,
    bucket_thresholds: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """Compare two attribution artifacts bucket by bucket.

    Returns a deterministic document with per-bucket old/new/delta
    rows, the list of flagged (regressed) buckets, and ``ok`` — false
    when any bucket regressed past its threshold.
    ``bucket_thresholds`` overrides the relative threshold per bucket.
    """
    _require_attribution(old, "old")
    _require_attribution(new, "new")
    old_buckets: Dict[str, int] = dict(old.get("buckets", {}))
    new_buckets: Dict[str, int] = dict(new.get("buckets", {}))
    overrides = bucket_thresholds or {}

    rows: Dict[str, Dict[str, object]] = {}
    regressions: List[str] = []
    improvements: List[str] = []
    names = sorted(set(old_buckets) | set(new_buckets))
    for name in names:
        o = int(old_buckets.get(name, 0))
        n = int(new_buckets.get(name, 0))
        delta = n - o
        rel = (delta / o) if o else (1.0 if n else 0.0)
        threshold = float(overrides.get(name, rel_threshold))
        flagged = delta > abs_floor and (o == 0 or delta / o > threshold)
        rows[name] = {
            "old": o,
            "new": n,
            "delta": delta,
            "rel": round(rel, 6),
            "threshold": round(threshold, 6),
            "flagged": flagged,
        }
        if flagged:
            regressions.append(name)
        elif delta < 0:
            improvements.append(name)

    old_total = int(old.get("stall_cycles", 0))
    new_total = int(new.get("stall_cycles", 0))
    return {
        "schema": DIFF_SCHEMA,
        "thresholds": {
            "relative": round(float(rel_threshold), 6),
            "absolute_floor": int(abs_floor),
            "per_bucket": {
                k: round(float(overrides[k]), 6)
                for k in sorted(overrides)
            },
        },
        "stall_cycles": {
            "old": old_total,
            "new": new_total,
            "delta": new_total - old_total,
        },
        "buckets": rows,
        "regressions": regressions,
        "improvements": improvements,
        "ok": not regressions,
    }


def format_diff(doc: Dict[str, object]) -> str:
    """Fixed-width human-readable rendering of a diff document."""
    rows: Dict[str, Dict[str, object]] = doc["buckets"]  # type: ignore
    lines = [
        f"{'bucket':<18} {'old':>10} {'new':>10} {'delta':>9} "
        f"{'rel':>8}  status"
    ]
    for name in sorted(rows):
        row = rows[name]
        if row["old"] == 0 and row["new"] == 0:
            continue
        if row["flagged"]:
            status = "REGRESSED"
        elif int(row["delta"]) < 0:  # type: ignore[arg-type]
            status = "improved"
        else:
            status = "ok"
        lines.append(
            f"{name:<18} {row['old']:>10} {row['new']:>10} "
            f"{row['delta']:>+9} {row['rel']:>+8.2%}  {status}"
        )
    totals = doc["stall_cycles"]  # type: ignore[assignment]
    lines.append(
        f"{'total stall':<18} {totals['old']:>10} {totals['new']:>10} "
        f"{totals['delta']:>+9}"
    )
    verdict = "OK" if doc["ok"] else (
        "REGRESSIONS: " + ", ".join(doc["regressions"]))  # type: ignore
    lines.append(verdict)
    return "\n".join(lines)
