"""Analytic performance model of the software-extension overhead.

The simulator measures; this model *predicts* — a closed-form estimate
of the software handler load a protocol pays for a given worker-set
population, in the spirit of the paper's claim that its experiments
yield "a detailed understanding of the interaction of the hardware and
software components".

Given a worker-set histogram, the model counts, per block of worker-set
size ``w`` under a ``k``-pointer protocol:

- read-overflow traps while the set first fills: the hardware absorbs
  the first ``k`` readers, then traps once per ``k`` additional readers
  (each trap empties the pointers, leaving room for ``k - 1`` more);
- one software-directed write per writing round, transmitting ``w``
  invalidations (plus per-ack traps for the ``,ACK`` variants).

The totals convert to cycles through the same cost model the simulated
handlers use, so the model isolates *protocol structure* from timing
noise.  Tests check the prediction against simulation on the synthetic
generator.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.core.software.costmodel import CostModel
from repro.core.software.extdir import SMALL_SET_THRESHOLD
from repro.core.spec import AckMode, ProtocolSpec, spec_of


@dataclasses.dataclass(frozen=True)
class OverheadPrediction:
    """Predicted software load for one protocol over one sharing mix."""

    protocol: str
    read_traps: int
    write_traps: int
    ack_traps: int
    handler_cycles: int

    @property
    def total_traps(self) -> int:
        return self.read_traps + self.write_traps + self.ack_traps


def read_overflow_traps(worker_set: int, pointers: int) -> int:
    """Traps while ``worker_set`` readers first fill a ``pointers``-wide
    directory (the writer/home is covered by the local bit)."""
    if pointers <= 0:
        return worker_set  # every request is software
    if worker_set <= pointers:
        return 0
    # First trap at reader pointers+1; each trap empties the array and
    # records the trapping reader, leaving pointers-1 free slots.
    remaining = worker_set - pointers
    per_refill = max(pointers, 1)
    return -(-remaining // per_refill)


def predict_overhead(
    protocol: "ProtocolSpec | str",
    histogram: Mapping[int, int],
    write_rounds: int = 1,
    read_rounds: int = 1,
    implementation: str = "flexible",
) -> OverheadPrediction:
    """Predict software traps and handler cycles for a sharing mix.

    ``histogram`` maps worker-set size -> block count.  Each read round
    re-fills every block's worker set (reads after a write all miss);
    each write round sends one software write per block whose directory
    has been extended.
    """
    spec = spec_of(protocol)
    cost = CostModel(implementation, spec.smallset_opt)
    read_traps = write_traps = ack_traps = 0
    cycles = 0

    if spec.full_map:
        return OverheadPrediction(spec.name, 0, 0, 0, 0)

    for size, count in histogram.items():
        if count <= 0:
            continue
        if spec.is_software_only:
            per_round_reads = size * count
            read_traps += per_round_reads * read_rounds
            cycles += (cost.sw_request("read", 1).latency
                       * per_round_reads * read_rounds)
            write_traps += count * write_rounds
            cycles += (cost.sw_request("write", size).latency
                       * count * write_rounds)
            ack_traps += size * count * write_rounds
            cycles += cost.ack().latency * size * count * write_rounds
            continue

        k = spec.hw_pointers
        small = size <= SMALL_SET_THRESHOLD
        overflows = read_overflow_traps(size, k)
        if spec.sw_extension:
            read_traps += overflows * count * read_rounds
            cycles += (cost.read_overflow(k, small).latency
                       * overflows * count * read_rounds)
        if size > k:
            # The write finds an extended (or overflowed) directory.
            # (For the broadcast protocols the real target count is
            # n - 1; the histogram does not know n, so the worker set
            # is used — an underestimate for Dir1...B.)
            write_traps += count * write_rounds
            targets = size
            cycles += (cost.write_extended(targets, small).latency
                       * count * write_rounds)
            if spec.ack_mode is AckMode.SOFTWARE:
                ack_traps += targets * count * write_rounds
                cycles += (cost.ack().latency
                           * targets * count * write_rounds)
            elif spec.ack_mode is AckMode.LAST_SOFTWARE:
                ack_traps += count * write_rounds
                cycles += cost.last_ack().latency * count * write_rounds
    return OverheadPrediction(spec.name, read_traps, write_traps,
                              ack_traps, cycles)


def predicted_ratio(
    protocol: "ProtocolSpec | str",
    histogram: Mapping[int, int],
    base_cycles_per_round: int,
    rounds: int = 1,
) -> float:
    """Crude run-time ratio vs full map: 1 + handler time over the
    busiest home's share of the base run time.  Assumes handler load
    spreads evenly over homes, so it is a *lower bound* on the measured
    ratio when the load concentrates."""
    prediction = predict_overhead(protocol, histogram,
                                  write_rounds=rounds, read_rounds=rounds)
    base = base_cycles_per_round * rounds
    if base <= 0:
        return 1.0
    return 1.0 + prediction.handler_cycles / base
