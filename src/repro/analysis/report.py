"""Plain-text table and figure formatting for experiment results.

Every benchmark regenerates its paper table/figure as an ASCII rendering;
these helpers keep the output format consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(labels: Sequence[str], values: Sequence[float],
                     title: Optional[str] = None, width: int = 50,
                     unit: str = "") -> str:
    """Render values as a horizontal ASCII bar chart."""
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_w = max((len(lbl) for lbl in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def format_histogram(histogram: Mapping[int, int],
                     title: Optional[str] = None, width: int = 50) -> str:
    """Render a worker-set histogram (log-scaled bars, like Figure 6)."""
    import math

    lines: List[str] = []
    if title:
        lines.append(title)
    if not histogram:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(histogram.values())
    log_peak = math.log10(peak) if peak > 1 else 1.0
    for size in sorted(histogram):
        count = histogram[size]
        scaled = math.log10(count) / log_peak if count > 0 else 0.0
        bar = "#" * max(1, int(round(width * scaled)))
        lines.append(f"{size:4d} | {bar} {count}")
    return "\n".join(lines)


def format_series_plot(series: "Mapping[str, Sequence[Tuple[float, float]]]",
                       title: Optional[str] = None, width: int = 64,
                       height: int = 18) -> str:
    """Render several (x, y) series as one ASCII line plot.

    Each series gets a letter marker; a legend maps letters to names.
    Used by the Figure 2 benchmark to draw the worker-set curves the
    paper plots.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title or "(no data)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} = {name}")
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:8.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_lo:8.2f} +" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<8g}" + " " * max(width - 16, 0)
                 + f"{x_hi:>8g}")
    lines.extend(legend)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
