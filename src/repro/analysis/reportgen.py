"""EXPERIMENTS.md generation: paper-vs-measured for every table/figure.

This module renders the repository's experiment record.  It used to live
inside ``tools/generate_experiments.py``; it moved into the package so
the ``repro experiments`` CLI subcommand, the tools wrapper, and the
benchmark harness all share one implementation.

Two properties matter for the parallel runner:

- **No wall-clock text in the output.**  The rendered document contains
  only simulation-derived numbers, so a serial run, an 8-worker run,
  and a cache-warm replay produce byte-identical files (the CI gate
  diffs them).
- **One runner for the whole sweep.**  Every driver receives the same
  :class:`~repro.exec.pool.JobRunner`, so configurations shared between
  sections (Table 1 and Table 2's WORKER runs, for instance) simulate
  once.

``preset="quick"`` shrinks every problem to CI-gate sizes (seconds, not
minutes); the quick document is a determinism probe, not a reproduction
artifact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.analysis.experiments import (
    FIGURE2_PROTOCOLS,
    FIGURE4_PROTOCOLS,
    fig2_worker_ratios,
    fig3_tsp_detail,
    fig4_application_speedups,
    fig5_tsp_256,
    fig6_evolve_worker_sets,
    relative_performance,
    table1_handler_latencies,
    table2_breakdowns,
    table3_applications,
)
from repro.analysis.workersets import decay_slope, histogram_summary
from repro.core.software.costmodel import TABLE2_ACTIVITIES
from repro.exec.pool import JobRunner

PAPER_TABLE1 = {8: (436, 162, 726, 375), 12: (397, 141, 714, 393),
                16: (386, 138, 797, 420)}

PAPER_TABLE3 = {
    "tsp": ("Mul-T", "10 city tour", 1.1),
    "aq": ("Semi-C", "see text", 0.9),
    "smgrid": ("Mul-T", "129 x 129", 3.0),
    "evolve": ("Mul-T", "12 dimensions", 1.3),
    "mp3d": ("C", "10,000 particles", 0.6),
    "water": ("C", "64 molecules", 2.6),
}

#: Driver argument sets per preset.  ``full`` is the shipped
#: reproduction; ``quick`` is the CI parallel-determinism gate.
PRESETS: Dict[str, Dict[str, Dict[str, object]]] = {
    "full": {
        "table1": {},
        "table2": {},
        "table3": {},
        "fig2": {"sizes": (1, 2, 4, 8, 12, 16)},
        "fig3": {},
        "fig4": {},
        "fig5": {},
        "fig6": {},
    },
    "quick": {
        "table1": {"readers": (8,), "iterations": 1},
        "table2": {"iterations": 1},
        "table3": {"n_nodes": 16},
        "fig2": {"sizes": (1, 2, 4), "iterations": 1},
        "fig3": {"n_nodes": 16},
        "fig4": {"apps": ("tsp", "water"), "n_nodes": 16},
        "fig5": {"n_nodes": 64},
        "fig6": {"n_nodes": 16},
    },
}

#: (driver key, progress label) in render order.  The labels are what
#: ``progress`` receives; the keys match ``PRESETS``/``PLANNERS`` and
#: the per-driver timings in ``BENCH_experiments.json``, so the fleet
#: monitor can map a progress callback back to a driver for ETAs.
SECTIONS = (
    ("table1", "Table 1..."),
    ("table2", "Table 2..."),
    ("table3", "Table 3..."),
    ("fig2", "Figure 2..."),
    ("fig3", "Figure 3..."),
    ("fig4", "Figure 4..."),
    ("fig5", "Figure 5..."),
    ("fig6", "Figure 6..."),
)

_SECTION_LABELS = dict(SECTIONS)

#: `repro analyze` spec defaults, shared by the CLI parser and the
#: `repro serve` /analyze endpoint so both front-ends describe the same
#: experiment the same way (and therefore produce byte-identical
#: artifacts for the default spec).
ANALYZE_DEFAULTS: Dict[str, object] = {
    "app": "worker",
    "protocol": "DirnH5SNB",
    "nodes": 16,
    "size": 6,
    "iterations": 2,
    "software": "flexible",
    "victim_cache": True,
    "perfect_ifetch": False,
    "invalidation_mode": "parallel",
}


def analyze_config(app: str, protocol: str, nodes: int, software: str,
                   invalidation_mode: str,
                   worker_set_size: Optional[int] = None,
                   iterations: Optional[int] = None) -> Dict[str, object]:
    """The ``config`` section of a `repro analyze` artifact.

    One constructor for every front-end: the CLI and the HTTP server
    both describe the analyzed experiment through this function, so the
    same spec yields the same config dict — a prerequisite for the
    byte-identity gate on served artifacts.
    """
    config: Dict[str, object] = {
        "app": app,
        "protocol": protocol,
        "nodes": nodes,
        "software": software,
        "invalidation_mode": invalidation_mode,
    }
    if app == "worker":
        config["worker_set_size"] = worker_set_size
        config["iterations"] = iterations
    return config


def analyze_doc(artifact: Dict[str, object], config: Dict[str, object],
                run_cycles: int, speedup: float) -> Dict[str, object]:
    """Assemble the `repro analyze` output document.

    ``artifact`` is a ``repro-attribution/1`` dict — built directly from
    an :class:`~repro.obs.attribution.AttributionReport` (the CLI path)
    or carried on a job result as ``stats.attribution`` (the server
    path).  Every non-``config`` field of the artifact is a pure
    function of the deterministic run, so replacing ``config`` and
    appending the ``run`` section here yields byte-identical documents
    from either path — which is exactly the invariant CI's serve smoke
    job ``cmp``s.
    """
    doc = dict(artifact)
    doc["config"] = dict(config)
    doc["run"] = {
        "run_cycles": run_cycles,
        "speedup": round(speedup, 4),
    }
    return doc


Progress = Callable[[str], None]


def _silent(_message: str) -> None:
    """Default progress sink: discard."""


def render_experiments_md(
    runner: Optional[JobRunner] = None,
    preset: str = "full",
    progress: Progress = _silent,
) -> str:
    """Render the EXPERIMENTS.md document and return its text.

    ``runner`` is shared by every driver (``None`` = serial in-process);
    ``progress`` receives one human-readable line per section — keep it
    out of the document so output stays byte-identical across worker
    counts.
    """
    if preset not in PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}")
    sizes_of = PRESETS[preset]
    if runner is None:
        runner = JobRunner(jobs=1)

    lines: List[str] = []
    w = lines.append

    w("# EXPERIMENTS — paper vs. measured")
    w("")
    if preset == "quick":
        w("**Quick preset** (CI determinism gate): problem sizes are "
          "shrunk to run in")
        w("seconds, so the numbers below are *not* the reproduction "
          "record — regenerate")
        w("with the full preset for that.  Determinism still holds: "
          "identical output for")
        w("any `--jobs` value.")
        w("")
    w("Regenerated by `python tools/generate_experiments.py`; every "
      "number below is")
    w("deterministic (identical on every run and for any `--jobs` "
      "value).  'Paper'")
    w("values are from Chaiken & Agarwal (ISCA 1994); 'measured' values "
      "come from this")
    w("library's scaled problems, so *shapes and ratios* are the "
      "comparison targets,")
    w("not absolute magnitudes (see DESIGN.md for the substitution "
      "rationale).")
    w("")

    # ------------------------------------------------------------- T1
    progress(_SECTION_LABELS["table1"])
    rows = table1_handler_latencies(runner=runner, **sizes_of["table1"])
    w("## Table 1 — software handler latencies (cycles)")
    w("")
    w("| readers | C read (paper) | asm read (paper) | C write (paper) "
      "| asm write (paper) |")
    w("|---|---|---|---|---|")
    for row in rows:
        p = PAPER_TABLE1[row.readers]
        w(f"| {row.readers} | {row.c_read:.0f} ({p[0]}) "
          f"| {row.asm_read:.0f} ({p[1]}) | {row.c_write:.0f} ({p[2]}) "
          f"| {row.asm_write:.0f} ({p[3]}) |")
    w("")
    w("Matches: the ~2x gap between the flexible (C) and optimized "
      "(assembly) software;")
    w("write latency growing with readers.  Deviation: the paper's "
      "measured read")
    w("latencies decline slightly with readers (436→386); our read "
      "handler always")
    w("empties exactly five pointers, so the model holds them constant "
      "at the 8-reader")
    w("median.")
    w("")

    # ------------------------------------------------------------- T2
    progress(_SECTION_LABELS["table2"])
    breakdowns = table2_breakdowns(runner=runner, **sizes_of["table2"])
    w("## Table 2 — median handler cycle breakdown")
    w("")
    w("Reproduced **exactly by construction**: the cost model's "
      "per-activity cycles are")
    w("fitted so the 8-reader medians equal the paper's Table 2 "
      "(C read 480, asm read")
    w("193, C write 737, asm write 384).  Measured medians:")
    w("")
    w("| activity | C read | asm read | C write | asm write |")
    w("|---|---|---|---|---|")
    cols = [("read", "flexible"), ("read", "optimized"),
            ("write", "flexible"), ("write", "optimized")]
    for activity in TABLE2_ACTIVITIES:
        cells = []
        for key in cols:
            value = breakdowns.get(key, {}).get(activity)
            cells.append("N/A" if value is None else str(value))
        w(f"| {activity} | " + " | ".join(cells) + " |")
    totals = [str(sum(breakdowns.get(key, {}).values())) for key in cols]
    w("| **total** | " + " | ".join(totals) + " |")
    w("")

    # ------------------------------------------------------------- T3
    progress(_SECTION_LABELS["table3"])
    rows3 = table3_applications(runner=runner, **sizes_of["table3"])
    w("## Table 3 — application characteristics")
    w("")
    w("| app | language | size (paper size) | sequential "
      "(paper, seconds) |")
    w("|---|---|---|---|")
    for row in rows3:
        paper = PAPER_TABLE3[row.name]
        w(f"| {row.name.upper()} | {row.language} | {row.size} "
          f"({paper[1]}) | {row.sequential_seconds * 1e3:.1f} ms "
          f"({paper[2]} s) |")
    w("")
    w("Problem sizes are scaled ~100-1000x down for a pure-Python "
      "simulator; languages")
    w("match the paper's table.")
    w("")

    # ------------------------------------------------------------- F2
    progress(_SECTION_LABELS["fig2"])
    fig2_kwargs = dict(sizes_of["fig2"])
    sizes = tuple(fig2_kwargs.pop("sizes"))
    curves = fig2_worker_ratios(sizes=sizes, runner=runner, **fig2_kwargs)
    w("## Figure 2 — WORKER run time relative to full map (16 nodes)")
    w("")
    w("| protocol | " + " | ".join(f"ws={s}" for s in sizes) + " |")
    w("|---" * (len(sizes) + 1) + "|")
    for protocol in FIGURE2_PROTOCOLS:
        ratios = dict(curves[protocol])
        w(f"| {protocol} | "
          + " | ".join(f"{ratios[s]:.2f}" for s in sizes) + " |")
    w("")
    w("Shape claims that hold: more pointers help; `DirnH5SNB` equals "
      "full map while")
    w("worker sets fit in its pointers (sizes 1–4) and degrades beyond; "
      "the software-")
    w("only directory is the worst curve everywhere; the one-pointer "
      "variants order")
    w("ACK ≥ LACK ≥ hardware; `DirnH1SNB` tracks `DirnH2SNB`.  "
      "Deviation: WORKER is a")
    w("stress test and our scaled runs exaggerate the absolute ratios "
      "more than the")
    w("paper's (which are roughly 1.5–4x; ours reach ~6–11x for the "
      "software-only")
    w("directory).")
    w("")

    # ------------------------------------------------------------- F3
    progress(_SECTION_LABELS["fig3"])
    f3 = fig3_tsp_detail(runner=runner, **sizes_of["fig3"])
    w("## Figure 3 — TSP detailed 64-node analysis")
    w("")
    configs = list(f3)
    w("| protocol | " + " | ".join(configs) + " |")
    w("|---" * (len(configs) + 1) + "|")
    for protocol in FIGURE4_PROTOCOLS:
        w(f"| {protocol} | "
          + " | ".join(f"{f3[c][protocol]:.1f}" for c in configs) + " |")
    w("")
    base_ratio = f3["base"]["DirnHNBS-"] / f3["base"]["DirnH5SNB"]
    vic = f3["victim cache"]
    w(f"Measured: thrashing makes `DirnH5SNB` {base_ratio:.1f}x worse "
      f"than full map")
    w("(paper: 'more than 3 times'); perfect ifetch and victim caching "
      "both restore it")
    w(f"to ~{vic['DirnH5SNB'] / vic['DirnHNBS-']:.0%} of full map "
      f"(paper: 'about as well as full-map'); the software-only")
    w(f"directory with victim caching reaches "
      f"{vic['DirnH0SNB,ACK'] / vic['DirnHNBS-']:.0%} of full map "
      f"(paper: 'almost 70%').")
    w("")

    # ------------------------------------------------------------- F4
    progress(_SECTION_LABELS["fig4"])
    f4 = fig4_application_speedups(runner=runner, **sizes_of["fig4"])
    w("## Figure 4 — application speedups on 64 nodes")
    w("")
    w("| app | " + " | ".join(FIGURE4_PROTOCOLS) + " |")
    w("|---" * (len(FIGURE4_PROTOCOLS) + 1) + "|")
    for app, column in f4.items():
        w(f"| {app.upper()} | "
          + " | ".join(f"{column[p]:.1f}" for p in FIGURE4_PROTOCOLS)
          + " |")
    w("")
    w("Relative to full map (the paper's 71%–100% headline for "
      "`DirnH5SNB`):")
    w("")
    w("| app | " + " | ".join(FIGURE4_PROTOCOLS) + " |")
    w("|---" * (len(FIGURE4_PROTOCOLS) + 1) + "|")
    h5_band = []
    for app, column in f4.items():
        rel = relative_performance(column)
        h5_band.append(rel["DirnH5SNB"])
        w(f"| {app.upper()} | "
          + " | ".join(f"{rel[p] * 100:.0f}%" for p in FIGURE4_PROTOCOLS)
          + " |")
    w("")
    w(f"Measured `DirnH5SNB` band: {min(h5_band):.0%}–{max(h5_band):.0%} "
      f"(paper: 71%–100%).  EVOLVE and")
    w("MP3D are the hardest applications (paper: EVOLVE worst at 71%); "
      "AQ is protocol-")
    w("insensitive above zero pointers (paper: identical); MP3D's "
      "software-only run")
    if "mp3d" in f4:
        mp3d_h0 = relative_performance(f4["mp3d"])["DirnH0SNB,ACK"]
        w(f"collapses (measured {mp3d_h0:.0%}, paper 11%); WATER's "
          f"software-only run stays usable")
    else:
        w("collapses (paper 11%; not run in this preset); WATER's "
          "software-only run stays usable")
    if "water" in f4:
        water_h0 = relative_performance(f4["water"])["DirnH0SNB,ACK"]
        w(f"(paper: 'almost 70%', measured {water_h0:.0%}).")
    else:
        w("(paper: 'almost 70%'; not run in this preset).")
    w("")

    # ------------------------------------------------------------- F5
    progress(_SECTION_LABELS["fig5"])
    f5 = fig5_tsp_256(runner=runner, **sizes_of["fig5"])
    w("## Figure 5 — TSP on 256 nodes")
    w("")
    w("| protocol | speedup |")
    w("|---|---|")
    for protocol, speedup in f5.items():
        w(f"| {protocol} | {speedup:.1f} |")
    w("")
    rel5 = relative_performance(f5)
    w(f"`DirnH5SNB` reaches {rel5['DirnH5SNB']:.0%} of full map at 256 "
      f"nodes (paper: 94%, i.e. 134 vs")
    w("142), and the full-map speedup grows from 64 to 256 nodes, the "
      "paper's point that")
    w("the speedups 'remain remarkable'.  The residual gap is the "
      "start-up transient of")
    w("distributing data to 256 nodes — the same effect the paper "
      "blames for its own 6%.")
    w("")

    # ------------------------------------------------------------- F6
    progress(_SECTION_LABELS["fig6"])
    hist = fig6_evolve_worker_sets(runner=runner, **sizes_of["fig6"])
    summary = histogram_summary(hist)
    slope = decay_slope(hist)
    w("## Figure 6 — EVOLVE worker-set histogram (64 nodes)")
    w("")
    w("| size | count |")
    w("|---|---|")
    for size in sorted(hist):
        w(f"| {size} | {hist[size]} |")
    w("")
    w(f"{summary['blocks']} worker sets; size-1 sets dominate "
      f"({hist.get(1, 0)}), the histogram decays")
    w(f"log-linearly (slope {slope:.3f} per size) out to a cluster of "
      f"{hist.get(64, 0)} sets of size 64 —")
    w("the paper's shape (≈10,000 one-node sets down to 25 sets of "
      "size 64) at ~1/20")
    w("scale.")
    w("")

    w("## Ablations and enhancements (benchmarks/)")
    w("")
    w("- `test_ablation_local_bit` — the one-bit local pointer changes "
      "performance by")
    w("  only a few percent (paper: ~2%) while preventing local-node "
      "overflows.")
    w("- `test_ablation_victim_cache` — one victim buffer recovers most "
      "of the")
    w("  thrashing loss; returns diminish by ~6 buffers (Alewife's "
      "choice).")
    w("- `test_ablation_software_impl` — the hand-tuned handlers halve "
      "handler")
    w("  occupancy end-to-end (Section 4.2's factor of two).")
    w("- `test_ablation_smallset_opt` — the small-set memory "
      "optimization speeds up")
    w("  worker sets ≤ 4 (Section 5).")
    w("- `test_ablation_dir1sw` — Dir1SW never traps on reads but "
      "broadcasts on")
    w("  writes (Section 2.5's comparison).")
    w("- `test_ablation_inv_mode` — parallel invalidation beats "
      "sequential for")
    w("  widely-shared data (Section 7's dynamic selection).")
    w("- `test_enhancement_readonly` — profiling + per-block broadcast "
      "annotation of")
    w("  read-only data removes EVOLVE's read-overflow traps and closes "
      "most of its")
    w("  gap to full map (Section 7's profile/detect/optimize).")
    w("")

    return "\n".join(lines) + "\n"


def write_experiments_md(
    out_path: str = "EXPERIMENTS.md",
    runner: Optional[JobRunner] = None,
    preset: str = "full",
    progress: Progress = _silent,
) -> str:
    """Render and write the document; returns the text written."""
    text = render_experiments_md(runner=runner, preset=preset,
                                 progress=progress)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
