"""Machine-state verification: the single-writer invariant, checked
directly against caches and directories.

NWO's purpose was as much *verification* as measurement — a
deterministic environment in which protocol bugs are reproducible.  This
module provides the state-level checker (the message-level counterpart
is :mod:`repro.sim.trace`):

- at most one writable copy of any block machine-wide;
- never a writable copy alongside readable copies;
- the home directory agrees with the caches about owners and (for
  never-extended entries) about every sharer.

Use :func:`coherence_violations` at quiescence (end of run), or install
:func:`install_barrier_checker` to verify at *every* barrier — barriers
are quiescent points for user traffic, so protocol corruption surfaces
at the first barrier after it happens rather than at the end.

For finer granularity than barriers, the *continuous* checker in
:mod:`repro.core.protocol.invariants` validates every fired directory
transition and every fabric message through the observability probes
(``repro run --check-invariants``); its end-of-run
:meth:`~repro.core.protocol.invariants.InvariantChecker.finish` calls
:func:`coherence_violations` as the final sweep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.common.types import CacheState, DirState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine


def coherence_violations(machine: "Machine") -> List[str]:
    """Check the single-writer / multiple-reader invariant.

    Returns a list of violation descriptions (empty = coherent).  Call
    at quiescence: in-flight transactions legitimately disagree with a
    snapshot.
    """
    problems: List[str] = []
    spec = machine.spec

    holders: Dict[int, List[tuple]] = {}
    for node in machine.nodes:
        cache = node.cache_ctrl.cache
        for block in cache.resident_blocks():
            state = cache.probe(block)
            if state is not CacheState.INVALID:
                holders.setdefault(block, []).append((node.id, state))

    for block, entries in holders.items():
        if machine.is_code_block(block):
            continue
        writers = [nid for nid, st in entries
                   if st is CacheState.READ_WRITE]
        readers = [nid for nid, st in entries
                   if st is CacheState.READ_ONLY]
        if len(writers) > 1:
            problems.append(f"block {block}: multiple writers {writers}")
        if writers and readers:
            problems.append(
                f"block {block}: writer {writers} alongside readers "
                f"{readers}"
            )
        home = machine.params.home_of_block(block)
        home_ctrl = machine.nodes[home].home
        entry = home_ctrl.entries.get(block)
        if spec.is_software_only:
            if writers:
                if entry is None \
                        or entry.state is not DirState.READ_WRITE \
                        or entry.owner != writers[0]:
                    problems.append(
                        f"block {block}: H0 directory does not record "
                        f"writer {writers[0]}"
                    )
            continue
        if writers:
            if entry is None or entry.state is not DirState.READ_WRITE:
                problems.append(
                    f"block {block}: directory misses writer "
                    f"{writers[0]} (entry={entry})"
                )
            elif entry.owner != writers[0]:
                problems.append(
                    f"block {block}: directory owner {entry.owner} != "
                    f"cache writer {writers[0]}"
                )
        elif readers and entry is not None:
            if entry.state is DirState.READ_WRITE:
                problems.append(
                    f"block {block}: directory claims exclusive but only "
                    f"readers {readers} hold it"
                )
            elif not spec.full_map and not entry.extended:
                tracked = entry.sharer_set()
                missing = [r for r in readers if r not in tracked]
                if missing:
                    problems.append(
                        f"block {block}: readers {missing} untracked by "
                        f"a non-extended directory"
                    )
    return problems


class BarrierCoherenceChecker:
    """Verifies coherence at every completed barrier.

    Barriers are quiescent points for user traffic (every participant's
    memory requests have completed), so the invariant must hold there.
    Violations raise immediately with the barrier count, which — in a
    deterministic simulator — pinpoints the failure for replay.
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.barriers_checked = 0

    def __call__(self) -> None:
        problems = coherence_violations(self.machine)
        self.barriers_checked += 1
        if problems:
            raise AssertionError(
                f"coherence violated at barrier "
                f"{self.machine.barrier.barriers_completed}: {problems[:4]}"
            )


def install_barrier_checker(machine: "Machine") -> BarrierCoherenceChecker:
    """Attach a :class:`BarrierCoherenceChecker` to ``machine``."""
    checker = BarrierCoherenceChecker(machine)
    machine.barrier.on_complete = checker
    return checker
