"""Experiment drivers, worker-set analysis, and report formatting."""

from repro.analysis.experiments import (
    APPLICATIONS,
    CLOCK_HZ,
    FIGURE2_PROTOCOLS,
    FIGURE4_PROTOCOLS,
    fig2_worker_ratios,
    fig3_tsp_detail,
    fig4_application_speedups,
    fig5_tsp_256,
    fig6_evolve_worker_sets,
    protocol_sweep,
    relative_performance,
    run_one,
    table1_handler_latencies,
    table2_breakdowns,
    table3_applications,
)
from repro.analysis.cost import (
    CostPerformancePoint,
    cost_performance_points,
    directory_bits_per_block,
    directory_overhead,
    full_map_scaling,
    pareto_frontier,
)
from repro.analysis.model import (
    OverheadPrediction,
    predict_overhead,
    predicted_ratio,
    read_overflow_traps,
)
from repro.analysis.profiling import (
    AccessProfiler,
    apply_read_only_protocol,
    profile_and_optimize,
    read_only_blocks,
)
from repro.analysis.report import (
    format_bar_chart,
    format_histogram,
    format_series_plot,
    format_table,
)
from repro.analysis.verify import (
    BarrierCoherenceChecker,
    coherence_violations,
    install_barrier_checker,
)
from repro.analysis.workersets import (
    decay_slope,
    hardware_coverage,
    histogram_summary,
)

__all__ = [
    "APPLICATIONS",
    "AccessProfiler",
    "CostPerformancePoint",
    "OverheadPrediction",
    "predict_overhead",
    "predicted_ratio",
    "read_overflow_traps",
    "BarrierCoherenceChecker",
    "coherence_violations",
    "install_barrier_checker",
    "apply_read_only_protocol",
    "cost_performance_points",
    "directory_bits_per_block",
    "directory_overhead",
    "full_map_scaling",
    "pareto_frontier",
    "profile_and_optimize",
    "read_only_blocks",
    "CLOCK_HZ",
    "FIGURE2_PROTOCOLS",
    "FIGURE4_PROTOCOLS",
    "decay_slope",
    "fig2_worker_ratios",
    "fig3_tsp_detail",
    "fig4_application_speedups",
    "fig5_tsp_256",
    "fig6_evolve_worker_sets",
    "format_bar_chart",
    "format_series_plot",
    "format_histogram",
    "format_table",
    "hardware_coverage",
    "histogram_summary",
    "protocol_sweep",
    "relative_performance",
    "run_one",
    "table1_handler_latencies",
    "table2_breakdowns",
    "table3_applications",
]
